"""Time-to-repair studies (Table 2, Figure 7, Section 6).

Table 2: mean/median/stddev/C² of repair time per root cause — means
range from ~3 h (human) to ~10 h (environment), medians are far below
means (10x for software), and C² is extreme except for environment.
Figure 7(a): the lognormal is the best of the four standard fits and
the exponential is very poor.  Figure 7(b,c): mean and median repair
per system — hardware type matters, size does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.errors import DegenerateSampleError
from repro.records.record import RootCause
from repro.records.trace import FailureTrace
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.fitting import FitResult, fit_all

__all__ = [
    "RepairByCauseRow",
    "repair_statistics_by_cause",
    "repair_fit_study",
    "repair_by_system",
]


@dataclass(frozen=True)
class RepairByCauseRow:
    """One column of Table 2 (statistics of repair time, minutes).

    ``cause`` is None for the all-causes aggregate column.
    """

    cause: Optional[RootCause]
    n: int
    mean: float
    median: float
    std: float
    squared_cv: float

    @property
    def label(self) -> str:
        """Display label ("All" for the aggregate)."""
        return self.cause.value if self.cause is not None else "All"


def _row(cause: Optional[RootCause], minutes: np.ndarray) -> RepairByCauseRow:
    summary = EmpiricalDistribution.from_data(minutes)
    return RepairByCauseRow(
        cause=cause,
        n=summary.count,
        mean=summary.mean,
        median=summary.median,
        std=summary.std,
        squared_cv=summary.squared_cv,
    )


def repair_statistics_by_cause(trace: FailureTrace) -> List[RepairByCauseRow]:
    """Table 2: repair-time statistics per root cause plus aggregate.

    Rows follow the paper's column order (Unknown, Human, Environment,
    Network, Software, Hardware, All); causes with no records are
    omitted.
    """
    order = (
        RootCause.UNKNOWN,
        RootCause.HUMAN,
        RootCause.ENVIRONMENT,
        RootCause.NETWORK,
        RootCause.SOFTWARE,
        RootCause.HARDWARE,
    )
    rows: List[RepairByCauseRow] = []
    for cause in order:
        minutes = trace.filter_cause(cause).repair_minutes()
        if len(minutes) >= 2:
            rows.append(_row(cause, minutes))
    all_minutes = trace.repair_minutes()
    if len(all_minutes) < 2:
        raise DegenerateSampleError(
            "trace has too few records for repair statistics"
        )
    rows.append(_row(None, all_minutes))
    return rows


def repair_fit_study(trace: FailureTrace) -> Tuple[FitResult, ...]:
    """Figure 7(a): the four standard fits to all repair times, ranked.

    Repair durations are floored at a tenth of a minute before fitting
    (records with zero recorded downtime cannot enter a lognormal
    likelihood).
    """
    minutes = trace.repair_minutes()
    if len(minutes) < 8:
        raise DegenerateSampleError(f"only {len(minutes)} repairs; need >= 8")
    return tuple(fit_all(minutes, zero_policy="clamp", epsilon=0.1))


def repair_by_system(
    trace: FailureTrace, minimum_records: int = 5
) -> Dict[int, RepairByCauseRow]:
    """Figure 7(b,c): per-system repair statistics (minutes).

    Systems with fewer than ``minimum_records`` repairs are omitted
    (their mean/median would be noise).
    """
    result: Dict[int, RepairByCauseRow] = {}
    for system_id, sub in sorted(trace.by_system().items()):
        minutes = sub.repair_minutes()
        if len(minutes) >= minimum_records:
            result[system_id] = _row(None, minutes)
    return result
