"""Scrub, quarantine, and repair for the columnar store.

The self-healing loop: :func:`scrub_store` walks every manifest shard,
classifies damage with :func:`~repro.store.reader.diagnose_shard`
(missing files, torn/bit-rot checksum mismatches, stat drift, sort
violations), moves damaged shards' files into ``quarantine/`` behind
an atomic JSONL ledger, and — with ``fix_stats`` — recomputes drifted
manifest statistics from checksum-verified data.  :func:`repair_store`
re-materializes quarantined shards from a reference (the source trace,
another store, or a CSV/JSONL file) and refuses to reinstate anything
it cannot prove byte-identical: each rebuilt column's ``.npy`` bytes
must hash to the manifest's recorded sha256 before it touches
``shards/``.

The manifest deliberately *keeps* quarantined shards: it is the
logical truth of what the store contains, and its per-column checksums
are exactly the oracle repair needs.  Readers opened with
``on_damage="skip"`` read around the quarantine in the meantime
(:class:`~repro.store.reader.DegradedReadReport`).

Crash ordering: files move into ``quarantine/`` *before* the ledger is
rewritten, and the ledger write is atomic (fault site
``store.scrub.ledger``).  A crash between the two leaves files
quarantined but unledgered — the next scrub re-discovers the shard as
missing and re-ledgers it, and repair sweeps quarantined copies by
shard-name glob, so no state is ever stranded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.io.csv_format import read_lanl_csv
from repro.io.ingest import detect_format
from repro.io.jsonl_format import read_jsonl
from repro.records.trace import FailureTrace
from repro.resilience.atomic import atomic_write_bytes, fs_fault_hook
from repro.store.manifest import (
    MANIFEST_NAME,
    QUARANTINE_DIR,
    SHARDS_DIR,
    STAGING_DIR,
    ShardInfo,
    StoreError,
    load_ledger,
    publish_manifest,
    shard_stats_from_batch,
    write_ledger,
)
from repro.store.reader import ColumnarStore, diagnose_shard
from repro.store.schema import (
    COLUMN_NAMES,
    NO_RECORD_ID,
    ColumnBatch,
    batch_from_records,
)
from repro.store.writer import _npy_bytes, column_file_name

__all__ = ["ScrubReport", "RepairReport", "scrub_store", "repair_store"]


@dataclass
class ScrubReport:
    """What one scrub pass found and did."""

    checked: int = 0
    healthy: int = 0
    quarantined: List[str] = field(default_factory=list)
    repaired_stats: List[str] = field(default_factory=list)
    stat_drift: List[str] = field(default_factory=list)
    orphans: List[str] = field(default_factory=list)
    damage: Dict[str, int] = field(default_factory=dict)
    staging_cleaned: bool = False

    @property
    def ok(self) -> bool:
        """True when the store needs no further healing."""
        return not self.quarantined and not self.stat_drift

    def to_dict(self) -> dict:
        return {
            "checked": self.checked,
            "healthy": self.healthy,
            "quarantined": sorted(self.quarantined),
            "repaired_stats": sorted(self.repaired_stats),
            "stat_drift": sorted(self.stat_drift),
            "orphans": sorted(self.orphans),
            "damage": dict(sorted(self.damage.items())),
            "staging_cleaned": self.staging_cleaned,
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"scrubbed {self.checked} shard(s): {self.healthy} healthy, "
            f"{len(self.quarantined)} quarantined"
        ]
        if self.repaired_stats:
            lines.append(
                f"stats recomputed for {len(self.repaired_stats)} shard(s): "
                + ", ".join(sorted(self.repaired_stats))
            )
        if self.stat_drift:
            lines.append(
                f"stat drift on {len(self.stat_drift)} shard(s) "
                "(re-run with --fix-stats): "
                + ", ".join(sorted(self.stat_drift))
            )
        for name in sorted(self.quarantined):
            lines.append(f"quarantined shard {name}")
        if self.orphans:
            lines.append(
                f"quarantined {len(self.orphans)} orphan file(s): "
                + ", ".join(sorted(self.orphans))
            )
        if self.damage:
            lines.append(
                "damage classes: "
                + ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.damage.items())
                )
            )
        if self.staging_cleaned:
            lines.append("removed stale staging/ directory")
        if self.ok:
            lines.append("OK: store is healthy")
        else:
            lines.append(
                "DAMAGED: run `repro store repair --from <trace|store>` "
                "to re-materialize quarantined shards"
            )
        return "\n".join(lines)


@dataclass
class RepairReport:
    """What one repair pass re-materialized (or could not)."""

    repaired: List[str] = field(default_factory=list)
    stats_fixed: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)
    orphans_removed: List[str] = field(default_factory=list)
    remaining: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed and not self.remaining

    def to_dict(self) -> dict:
        return {
            "repaired": sorted(self.repaired),
            "stats_fixed": sorted(self.stats_fixed),
            "failed": dict(sorted(self.failed.items())),
            "orphans_removed": sorted(self.orphans_removed),
            "remaining": sorted(self.remaining),
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"repaired {len(self.repaired)} shard(s)"
            + (": " + ", ".join(sorted(self.repaired)) if self.repaired else "")
        ]
        if self.stats_fixed:
            lines.append(
                f"stats recomputed for {len(self.stats_fixed)} shard(s): "
                + ", ".join(sorted(self.stats_fixed))
            )
        if self.orphans_removed:
            lines.append(
                f"removed {len(self.orphans_removed)} orphan file(s) "
                "from quarantine"
            )
        for name, reason in sorted(self.failed.items()):
            lines.append(f"FAILED shard {name}: {reason}")
        if self.ok:
            lines.append("OK: store fully repaired")
        else:
            lines.append(
                f"INCOMPLETE: {len(self.remaining)} shard(s) still "
                "quarantined"
            )
        return "\n".join(lines)


def _quarantine_files(root: Path, prefix: str) -> List[str]:
    """Names of quarantined ``.npy`` files belonging to one shard."""
    quarantine = root / QUARANTINE_DIR
    if not quarantine.is_dir():
        return []
    return sorted(p.name for p in quarantine.glob(f"{prefix}-*.npy"))


def _move_to_quarantine(root: Path, shard_name: str) -> List[str]:
    """Move a shard's surviving column files into ``quarantine/``.

    ``os.replace`` per file: idempotent under re-runs (an earlier
    crashed scrub may have moved some files already) and never copies,
    so a half-finished move cannot duplicate data.
    """
    shards_dir = root / SHARDS_DIR
    quarantine = root / QUARANTINE_DIR
    quarantine.mkdir(parents=True, exist_ok=True)
    moved: List[str] = []
    for column in COLUMN_NAMES:
        name = column_file_name(shard_name, column)
        source = shards_dir / name
        if source.exists():
            os.replace(source, quarantine / name)
            moved.append(name)
    return moved


def _recomputed_stats(root: Path, shard: ShardInfo) -> Dict[str, Tuple[float, float]]:
    """Recompute a shard's manifest stats from its on-disk columns."""
    shards_dir = root / SHARDS_DIR
    batch = ColumnBatch(
        {
            column: np.load(shards_dir / column_file_name(shard.name, column))
            for column in COLUMN_NAMES
        }
    )
    return shard_stats_from_batch(batch)


def scrub_store(root, *, fix_stats: bool = False) -> ScrubReport:
    """Walk the store, quarantine damage, optionally repair stats.

    Safe to re-run at any time: a healthy store passes through
    untouched, already-quarantined shards are left (and any of their
    files still lingering in ``shards/`` after a crashed earlier scrub
    are swept into quarantine), and stat-drift-only shards are
    rewritten into the manifest only under ``fix_stats`` — their data
    is checksum-verified first, which is what makes the recomputation
    safe.
    """
    store = ColumnarStore(root)
    root = store.root
    manifest = store.manifest
    ledger = load_ledger(root)
    report = ScrubReport()
    new_shards: List[ShardInfo] = []
    stats_changed = False

    with obs.span("store.scrub", shards=len(manifest.shards)):
        for shard in manifest.shards:
            report.checked += 1
            new_shards.append(shard)
            if shard.name in ledger:
                # Crash recovery: finish any half-done move, refresh
                # the entry's file list, stay quarantined.
                _move_to_quarantine(root, shard.name)
                entry = dict(ledger[shard.name])
                entry["files"] = _quarantine_files(root, shard.name)
                ledger[shard.name] = entry
                report.quarantined.append(shard.name)
                for kind in entry.get("damage", []):
                    report.damage[kind] = report.damage.get(kind, 0) + 1
                continue
            findings = diagnose_shard(root, shard, deep=True)
            if not findings:
                report.healthy += 1
                continue
            classes = sorted({kind for kind, _ in findings})
            if classes == ["stat-drift"]:
                if fix_stats:
                    fixed = dataclasses.replace(
                        shard, stats=_recomputed_stats(root, shard)
                    )
                    new_shards[-1] = fixed
                    stats_changed = True
                    report.repaired_stats.append(shard.name)
                    report.healthy += 1
                else:
                    report.stat_drift.append(shard.name)
                    report.damage["stat-drift"] = (
                        report.damage.get("stat-drift", 0) + 1
                    )
                continue
            _move_to_quarantine(root, shard.name)
            missing = [
                column_file_name(shard.name, column)
                for column in COLUMN_NAMES
                if not (root / QUARANTINE_DIR / column_file_name(shard.name, column)).exists()
            ]
            ledger[shard.name] = {
                "shard": shard.name,
                "rows": shard.rows,
                "damage": classes,
                "problems": [message for _, message in findings],
                "files": _quarantine_files(root, shard.name),
                "missing": missing,
            }
            report.quarantined.append(shard.name)
            for kind in classes:
                report.damage[kind] = report.damage.get(kind, 0) + 1

        # Orphan column files in shards/ that no manifest shard claims.
        expected = {
            column_file_name(shard.name, column)
            for shard in manifest.shards
            for column in COLUMN_NAMES
        }
        quarantine = root / QUARANTINE_DIR
        for path in sorted((root / SHARDS_DIR).glob("*.npy")):
            if path.name in expected:
                continue
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
            ledger[path.name] = {
                "shard": path.name,
                "rows": 0,
                "damage": ["orphan"],
                "problems": [f"orphan file {path.name} not in manifest"],
                "files": [path.name],
                "missing": [],
            }
            report.orphans.append(path.name)
            report.damage["orphan"] = report.damage.get("orphan", 0) + 1

        staging = root / STAGING_DIR
        if staging.is_dir():
            shutil.rmtree(staging)
            report.staging_cleaned = True

        write_ledger(root, ledger)
        if stats_changed:
            publish_manifest(
                root,
                dataclasses.replace(manifest, shards=tuple(new_shards)),
                site="store.manifest",
            )

    registry = obs.metrics()
    registry.counter("store.shards_quarantined").add(len(report.quarantined))
    registry.counter("store.shards_stats_repaired").add(
        len(report.repaired_stats)
    )
    return report


def _resolve_reference(source) -> FailureTrace:
    """Turn a repair reference — trace, store dir, CSV/JSONL — into a trace."""
    if isinstance(source, FailureTrace):
        return source
    if isinstance(source, ColumnarStore):
        return source.to_trace()
    path = Path(source)
    if path.is_dir():
        if not (path / MANIFEST_NAME).exists():
            raise StoreError(
                f"{path} is not a columnar store (no {MANIFEST_NAME})"
            )
        return ColumnarStore(path).to_trace()
    reader = read_jsonl if detect_format(path) == "jsonl" else read_lanl_csv
    return reader(path)


def repair_store(root, source) -> RepairReport:
    """Re-materialize damaged shards from a reference, provably.

    The reference is re-sorted exactly the way the store writer sorts
    (per-system ``lexsort((node_id, start_time))``), sliced at the
    manifest's shard boundaries, and serialized with the writer's own
    ``.npy`` encoder; a shard is reinstated only when **every**
    column's bytes hash to the manifest's recorded sha256.  A shard
    whose manifest carries no checksum, or whose reference bytes
    disagree, stays quarantined and is reported as failed — repair
    never guesses.
    """
    store = ColumnarStore(root)
    root = store.root
    manifest = store.manifest
    ledger = load_ledger(root)
    report = RepairReport()
    shard_names = {shard.name for shard in manifest.shards}

    # Orphan / stale ledger entries: their files answer to no manifest
    # shard, so there is nothing to reinstate — just drop them.
    for key in sorted(set(ledger) - shard_names):
        entry = ledger.pop(key)
        for name in entry.get("files", []):
            try:
                (root / QUARANTINE_DIR / name).unlink()
            except FileNotFoundError:
                pass
        report.orphans_removed.append(key)

    # Targets: everything ledgered plus anything damaged but not yet
    # scrubbed (repair works standalone), with stat-drift-only shards
    # healed in place.
    targets: Dict[str, List[str]] = {}
    drifted: List[str] = []
    for shard in manifest.shards:
        if shard.name in ledger:
            targets[shard.name] = list(ledger[shard.name].get("damage", []))
            continue
        findings = diagnose_shard(root, shard, deep=True)
        if not findings:
            continue
        classes = sorted({kind for kind, _ in findings})
        if classes == ["stat-drift"]:
            drifted.append(shard.name)
        else:
            targets[shard.name] = classes

    new_shards: List[ShardInfo] = list(manifest.shards)
    index_of = {shard.name: i for i, shard in enumerate(manifest.shards)}
    stats_changed = False

    with obs.span("store.repair", targets=len(targets)):
        if targets:
            trace = _resolve_reference(source)
            batch = batch_from_records(trace.records)
            if manifest.record_ids == "implicit":
                batch = ColumnBatch(
                    {
                        name: (
                            np.full(len(batch), NO_RECORD_ID, dtype=np.int64)
                            if name == "record_id"
                            else batch[name]
                        )
                        for name in batch.names
                    }
                )
            needed_systems = {
                int(manifest.shards[index_of[name]].stats["system_id"][0])
                for name in targets
            }
            groups: Dict[int, ColumnBatch] = {}
            system_ids = batch["system_id"]
            for system_id in sorted(needed_systems):
                mask = system_ids == system_id
                group = batch.take(mask)
                order = np.lexsort((group["node_id"], group["start_time"]))
                groups[system_id] = ColumnBatch(
                    {name: group[name][order] for name in group.names}
                )

            offsets: Dict[int, int] = {}
            for shard in manifest.shards:
                system_id = int(shard.stats["system_id"][0])
                offset = offsets.get(system_id, 0)
                offsets[system_id] = offset + shard.rows
                if shard.name not in targets:
                    continue
                group = groups.get(system_id)
                if group is None or len(group) < offset + shard.rows:
                    have = 0 if group is None else len(group)
                    report.failed[shard.name] = (
                        f"reference has only {have} row(s) for system "
                        f"{system_id}, shard needs rows "
                        f"[{offset}, {offset + shard.rows})"
                    )
                    continue
                payloads: Dict[str, bytes] = {}
                mismatch: Optional[str] = None
                for column in COLUMN_NAMES:
                    expected = shard.checksums.get(column)
                    if expected is None:
                        mismatch = (
                            f"manifest has no checksum for {column}; "
                            "cannot prove byte identity"
                        )
                        break
                    payload = _npy_bytes(
                        np.ascontiguousarray(
                            group[column][offset:offset + shard.rows]
                        )
                    )
                    if hashlib.sha256(payload).hexdigest() != expected:
                        mismatch = (
                            f"reference bytes for {column} do not match "
                            "the manifest sha256 (wrong reference?)"
                        )
                        break
                    payloads[column] = payload
                if mismatch is not None:
                    report.failed[shard.name] = mismatch
                    continue
                for column, payload in payloads.items():
                    path = root / SHARDS_DIR / column_file_name(
                        shard.name, column
                    )
                    fs_fault_hook("store.column", path)
                    atomic_write_bytes(path, payload)
                for name in _quarantine_files(root, shard.name):
                    (root / QUARANTINE_DIR / name).unlink()
                ledger.pop(shard.name, None)
                report.repaired.append(shard.name)
                # The reinstated bytes are proven; make sure the
                # manifest stats agree with them too.
                recomputed = _recomputed_stats(root, shard)
                if recomputed != dict(shard.stats):
                    new_shards[index_of[shard.name]] = dataclasses.replace(
                        shard, stats=recomputed
                    )
                    stats_changed = True
                    report.stats_fixed.append(shard.name)

        for name in drifted:
            shard = manifest.shards[index_of[name]]
            new_shards[index_of[name]] = dataclasses.replace(
                shard, stats=_recomputed_stats(root, shard)
            )
            stats_changed = True
            report.stats_fixed.append(name)

        write_ledger(root, ledger)
        if stats_changed:
            publish_manifest(
                root,
                dataclasses.replace(manifest, shards=tuple(new_shards)),
                site="store.manifest",
            )

    report.remaining = sorted(ledger)
    registry = obs.metrics()
    registry.counter("store.shards_repaired").add(len(report.repaired))
    return report
