"""Crash-safety drills against the store's write path.

The store's contract under filesystem faults: a faulted write never
publishes a manifest over incomplete shards (no manifest => not a
store), a faulted *re*write never damages the previously published
store, and a retry after the fault completes byte-identically.
"""

from __future__ import annotations

import pytest

from repro.faults.fsfaults import FsFaults, fsfaults_env
from repro.store import ColumnarStore, StoreError, verify_store
from repro.synth import TraceGenerator

SYSTEMS = [2, 13]
SEED = 5


def _store_bytes(root):
    """Every file of a store as {relative path: bytes}."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestColumnFaults:
    def test_enospc_on_column_leaves_no_store(self, tmp_path):
        root = tmp_path / "st"
        spec = FsFaults(
            operator="enospc", state_dir=str(tmp_path / "state"),
            sites=("store.column",),
        )
        with fsfaults_env(spec):
            with pytest.raises(OSError):
                TraceGenerator(seed=SEED).generate_store(root, SYSTEMS)
        assert spec.injections() == 1
        # no manifest was published: the directory must not open
        with pytest.raises(StoreError):
            ColumnarStore(root)
        problems = verify_store(root)
        assert problems and "not a columnar store" in problems[0]

    def test_retry_after_fault_is_byte_identical(self, tmp_path):
        clean_root = tmp_path / "clean"
        TraceGenerator(seed=SEED).generate_store(clean_root, SYSTEMS)
        faulted_root = tmp_path / "faulted"
        spec = FsFaults(
            operator="enospc", state_dir=str(tmp_path / "state"),
            sites=("store.column",), skip=3,
        )
        with fsfaults_env(spec):
            with pytest.raises(OSError):
                TraceGenerator(seed=SEED).generate_store(
                    faulted_root, SYSTEMS
                )
            # budget exhausted: the retry inside the same armed env
            TraceGenerator(seed=SEED).generate_store(faulted_root, SYSTEMS)
        assert spec.injections() == 1
        assert _store_bytes(faulted_root) == _store_bytes(clean_root)
        assert verify_store(faulted_root, deep=True) == []

    def test_torn_column_write_never_publishes(self, tmp_path):
        root = tmp_path / "st"
        spec = FsFaults(
            operator="torn-write", state_dir=str(tmp_path / "state"),
            sites=("atomic.bytes",), path_contains=".npy", seed=3,
        )
        with fsfaults_env(spec):
            with pytest.raises(Exception):
                TraceGenerator(seed=SEED).generate_store(root, SYSTEMS)
        assert spec.injections() == 1
        # the torn column was staged, never renamed: no *.npy of the
        # affected shard is half-written, and no manifest exists
        with pytest.raises(StoreError):
            ColumnarStore(root)
        leftovers = list(root.rglob("*.tmp"))
        assert leftovers == []


class TestManifestFaults:
    def test_enospc_on_manifest_keeps_previous_store(self, tmp_path):
        root = tmp_path / "st"
        TraceGenerator(seed=SEED).generate_store(root, SYSTEMS)
        before = _store_bytes(root)
        spec = FsFaults(
            operator="enospc", state_dir=str(tmp_path / "state"),
            sites=("store.manifest",),
        )
        with fsfaults_env(spec):
            with pytest.raises(OSError):
                TraceGenerator(seed=SEED).generate_store(root, SYSTEMS)
        assert spec.injections() == 1
        # the published manifest is the old one; the store still opens
        # and verifies (column rewrites were atomic + byte-identical)
        assert _store_bytes(root) == before
        assert verify_store(root, deep=True) == []

    def test_fsync_fail_on_manifest_recovers_on_retry(self, tmp_path):
        root = tmp_path / "st"
        spec = FsFaults(
            operator="fsync-fail", state_dir=str(tmp_path / "state"),
            sites=("atomic.fsync",), path_contains="manifest.json",
        )
        with fsfaults_env(spec):
            with pytest.raises(OSError):
                TraceGenerator(seed=SEED).generate_store(root, SYSTEMS)
            TraceGenerator(seed=SEED).generate_store(root, SYSTEMS)
        assert spec.injections() == 1
        assert verify_store(root, deep=True) == []


class TestManualCorruption:
    def test_truncated_shard_after_publish_is_caught(self, tmp_path):
        # A torn write that somehow lands *after* publish (lying disk
        # firmware) is exactly what `store verify` exists to catch.
        root = tmp_path / "st"
        TraceGenerator(seed=SEED).generate_store(root, SYSTEMS)
        victim = next((root / "shards").glob("*-end_time.npy"))
        data = victim.read_bytes()
        victim.write_bytes(data[:-16])
        problems = verify_store(root, deep=False)
        assert problems, "post-publish truncation must fail verification"
