"""Figure 6: time-between-failures CDFs, node/system x early/late.

Paper shape claims asserted per panel (system 20, node 22, split at
2000-01-01):

* (a) node view 1996-99: high variability (C^2 ~ 3.9), lognormal best;
* (b) node view 2000-05: Weibull/gamma best, shape ~0.7, decreasing
  hazard, exponential poor (C^2 ~ 1.9 vs 1);
* (c) system view 1996-99: > 30% zero interarrivals — correlated
  simultaneous failures; no standard distribution fits well;
* (d) system view 2000-05: Weibull shape ~0.78, decreasing hazard.
"""

import datetime as dt

from repro.analysis.interarrival import (
    node_interarrivals,
    split_eras,
    system_interarrivals,
)
from repro.records.timeutils import from_datetime
from repro.report import render_figure6
from repro.stats.hazard import HazardDirection

ERA = from_datetime(dt.datetime(2000, 1, 1))


def test_figure6(benchmark, system20):
    def run_all_panels():
        early, late = split_eras(system20, ERA)
        return {
            "a": node_interarrivals(early, 20, 22),
            "b": node_interarrivals(late, 20, 22),
            "c": system_interarrivals(early, 20),
            "d": system_interarrivals(late, 20),
        }

    panels = benchmark(run_all_panels)
    print("\n" + render_figure6(system20))

    # Panel (a): early node view — turbulent, lognormal-leaning.
    a = panels["a"]
    assert a.summary.squared_cv > 2.0
    assert a.best.name in ("lognormal", "weibull")

    # Panel (b): late node view — Weibull ~0.7, decreasing hazard.
    b = panels["b"]
    assert b.best.name in ("weibull", "gamma")
    assert 0.55 <= b.weibull_shape <= 0.85
    assert b.hazard is HazardDirection.DECREASING
    assert b.exponential_rank >= 2        # exponential a poor fit
    assert b.summary.squared_cv > 1.3     # well above exponential's 1

    # Panel (c): early system view — heavy simultaneity.
    c = panels["c"]
    assert c.zero_fraction > 0.30
    # No standard fit is good: the best KS is still large.
    assert c.best.ks > 0.08

    # Panel (d): late system view — Weibull shape ~0.78.
    d = panels["d"]
    assert d.best.name in ("weibull", "gamma")
    assert 0.65 <= d.weibull_shape <= 0.90
    assert d.hazard is HazardDirection.DECREASING
    assert d.zero_fraction < 0.05

    print(
        f"\npaper vs measured: (a) C2 3.9 vs {a.summary.squared_cv:.1f}, "
        f"best {a.best.name}; (b) shape 0.7 vs {b.weibull_shape:.2f}, "
        f"C2 1.9 vs {b.summary.squared_cv:.1f}; "
        f"(c) zeros >30% vs {100 * c.zero_fraction:.0f}%; "
        f"(d) shape 0.78 vs {d.weibull_shape:.2f}"
    )
