"""Observability threaded through generation, ingest and reporting.

The acceptance drill for the observability layer: a workers=4
supervised generation of all 22 systems under tracing must (a) stay
repr-identical to the uninstrumented serial run, (b) emit a merged
trace whose ``shard.attempt`` spans line up one-for-one with the
RunReport attempt history, and (c) validate against the trace schema.
"""

from __future__ import annotations

import warnings

import pytest

from repro import obs
from repro.obs.profile import build_span_tree, span_events
from repro.obs.schema import validate_events
from repro.resilience import RetryPolicy
from repro.synth import SupervisionConfig, TraceGenerator

from tests.synth.test_equivalence import assert_traces_identical

FAST = SupervisionConfig(
    policy=RetryPolicy(base_delay=0.01, max_delay=0.05, max_attempts=3)
)


def _traced_generate(tmp_path, seed, systems=None, workers=1,
                     supervision=None, run_id="test"):
    tracer = obs.Tracer(run_id=run_id)
    registry = obs.MetricsRegistry()
    generator = TraceGenerator(seed=seed)
    with obs.observing(tracer, registry, spool=tmp_path / "spool"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            trace = generator.generate(
                systems, workers=workers, supervision=supervision
            )
    return trace, tracer, registry, generator


class TestAcceptanceMergedTrace:
    def test_supervised_parallel_trace_matches_report_and_records(
        self, tmp_path, full_trace
    ):
        trace, tracer, registry, generator = _traced_generate(
            tmp_path, seed=1, workers=4, supervision=FAST,
            run_id="generate:seed=1",
        )
        # (a) Instrumentation must not alter a single record.
        assert_traces_identical(full_trace, trace)

        # (c) The merged event stream validates against the schema.
        events = tracer.to_events(registry)
        assert validate_events(events) == []

        # (b) shard.attempt spans == RunReport attempt history, one for
        # one, in sorted-shard order.
        report = generator.last_run_report
        assert report is not None and report.ok
        attempt_spans = [
            event for event in span_events(events)
            if event["name"] == "shard.attempt"
        ]
        expected = [
            {
                "shard": key,
                "stage": entry.stage,
                "attempt": entry.attempt,
                "outcome": entry.outcome,
            }
            for key in sorted(report.shards)
            for entry in report.shards[key].attempts
        ]
        assert len(expected) == 22
        got = [
            {
                "shard": event["attrs"]["shard"],
                "stage": event["attrs"]["stage"],
                "attempt": event["attrs"]["attempt"],
                "outcome": event["attrs"]["outcome"],
            }
            for event in attempt_spans
        ]
        assert got == expected

        # Attempt wall times recorded by the supervisor surface both in
        # the report and on the emitted spans.
        for event in attempt_spans:
            assert event["wall_s"] > 0

        # Worker streams were spooled and grafted under their attempts:
        # every successful attempt span owns a synth.system subtree.
        roots = build_span_tree(events)
        by_id = {
            node.event["id"]: node
            for root in roots
            for node in root.walk()
        }
        for event in attempt_spans:
            children = [c.name for c in by_id[event["id"]].children]
            assert children.count("synth.system") == 1, event["attrs"]

    def test_parallel_trace_is_deterministic_modulo_timing(self, tmp_path):
        def skeleton(events):
            return [
                (
                    event["id"], event["parent"], event["name"],
                    event["depth"], event["status"],
                    tuple(sorted(event["attrs"].items())),
                    tuple(sorted(event["counters"].items())),
                )
                for event in span_events(events)
            ]

        _, first, _, _ = _traced_generate(
            tmp_path / "a", seed=5, systems=[2, 13], workers=2,
            supervision=FAST,
        )
        _, second, _, _ = _traced_generate(
            tmp_path / "b", seed=5, systems=[2, 13], workers=2,
            supervision=FAST,
        )
        assert skeleton(first.to_events()) == skeleton(second.to_events())


class TestSerialTracing:
    def test_bare_serial_run_traces_and_stays_identical(
        self, tmp_path, small_trace
    ):
        trace, tracer, registry, generator = _traced_generate(
            tmp_path, seed=5, systems=[2, 13]
        )
        assert_traces_identical(small_trace, trace)
        events = tracer.to_events(registry)
        assert validate_events(events) == []
        names = {event["name"] for event in span_events(events)}
        # The bare serial path has no worker wrapper (synth.system is
        # the worker-process span), but the stage spans and per-shard
        # attempt spans are all there.
        assert {
            "generate", "generate.sort", "shard.attempt",
            "synth.arrivals", "synth.marks",
        } <= names
        # Stage spans nest under their shard's attempt span.
        roots = build_span_tree(events)
        attempts = [
            node for root in roots for node in root.walk()
            if node.name == "shard.attempt"
        ]
        assert len(attempts) == 2
        for node in attempts:
            child_names = [child.name for child in node.children]
            assert child_names[0] == "synth.arrivals"
            assert "synth.marks" in child_names

    def test_generate_metrics_record_totals(self, tmp_path):
        trace, _, registry, _ = _traced_generate(
            tmp_path, seed=5, systems=[2, 13]
        )
        counters = registry.to_dict()["counter"]
        assert counters["generate.records"] == len(trace)
        assert counters["generate.systems"] == 2

    def test_disabled_run_records_nothing(self, small_trace):
        # No tracer installed: generation still works and the module
        # globals stay untouched (the no-op fast path).
        trace = TraceGenerator(seed=5).generate([2, 13])
        assert_traces_identical(small_trace, trace)
        assert not obs.enabled()


class TestIngestAndReportTracing:
    def test_ingest_rows_surface_as_metrics_and_span(self, tmp_path):
        from repro.io import IngestPolicy, ingest_trace

        header = (
            "record_id,system_id,node_id,start_time,end_time,"
            "workload,root_cause,low_level_cause\n"
        )
        rows = (
            "0,20,1,150000000.0,150003600.0,compute,hardware,memory\n"
            "1,20,2,160000000.0,160000060.0,compute,software,\n"
            "not,a,valid,row,at,all,x,y\n"
        )
        path = tmp_path / "trace.csv"
        path.write_text(header + rows)

        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        with obs.observing(tracer, registry):
            result = ingest_trace(
                path, IngestPolicy(mode="lenient", max_error_rate=0.5)
            )
        assert result.report.rows_kept == 2
        counters = registry.to_dict()["counter"]
        assert counters["ingest.rows_read"] == 3
        assert counters["ingest.rows_kept"] == 2
        assert counters["ingest.rows_quarantined"] == 1
        ingest_span = next(
            event for event in tracer.events if event["name"] == "ingest"
        )
        assert ingest_span["counters"]["rows_kept"] == 2
        assert ingest_span["attrs"]["mode"] == "lenient"

    def test_report_sections_traced(self, small_trace):
        from repro.report.paper import run_paper_report

        tracer = obs.Tracer()
        with obs.observing(tracer):
            run_paper_report(small_trace)
        section_spans = [
            event for event in tracer.events
            if event["name"] == "report.section"
        ]
        assert len(section_spans) > 5
        outer = next(
            event for event in tracer.events if event["name"] == "report"
        )
        assert outer["attrs"]["sections"] == len(section_spans)


class TestOverheadGuard:
    def test_disabled_overhead_within_budget(self):
        from repro.benchmark import measure_obs_overhead

        result = measure_obs_overhead(systems=(2,))
        assert result["ok"], result
        assert result["overhead_fraction"] <= result["threshold"] == 0.02
        assert result["spans_per_generate"] > 0
        assert result["noop_span_cost_ns"] < 50_000  # sanity: sub-50us

    def test_null_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b") is obs.NULL_SPAN
