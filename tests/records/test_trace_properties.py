"""Property-based tests for FailureTrace invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.records.record import FailureRecord, RootCause, Workload
from repro.records.trace import FailureTrace

CAUSES = list(RootCause)
WORKLOADS = list(Workload)


@st.composite
def records(draw):
    start = draw(st.floats(min_value=0.0, max_value=3.0e8))
    duration = draw(st.floats(min_value=0.0, max_value=1e6))
    return FailureRecord(
        start_time=start,
        end_time=start + duration,
        system_id=draw(st.integers(min_value=1, max_value=22)),
        node_id=draw(st.integers(min_value=0, max_value=48)),
        root_cause=draw(st.sampled_from(CAUSES)),
        workload=draw(st.sampled_from(WORKLOADS)),
    )


record_lists = st.lists(records(), min_size=0, max_size=60)


@settings(max_examples=60, deadline=None)
@given(record_lists)
def test_trace_is_sorted(items):
    trace = FailureTrace(items)
    starts = [record.start_time for record in trace]
    assert starts == sorted(starts)
    assert len(trace) == len(items)


@settings(max_examples=60, deadline=None)
@given(record_lists)
def test_cause_filters_partition_the_trace(items):
    trace = FailureTrace(items)
    total = sum(len(trace.filter_cause(cause)) for cause in RootCause)
    assert total == len(trace)


@settings(max_examples=60, deadline=None)
@given(record_lists, st.floats(min_value=1.0, max_value=3.0e8))
def test_between_partitions_at_any_boundary(items, boundary):
    trace = FailureTrace(items, data_start=0.0, data_end=4.0e8)
    early = trace.between(0.0, boundary)
    late = trace.between(boundary, 4.0e8)
    assert len(early) + len(late) == len(
        trace.between(0.0, 4.0e8)
    )


@settings(max_examples=60, deadline=None)
@given(record_lists)
def test_by_system_partitions(items):
    trace = FailureTrace(items)
    groups = trace.by_system()
    assert sum(len(group) for group in groups.values()) == len(trace)
    for system_id, group in groups.items():
        assert all(record.system_id == system_id for record in group)


@settings(max_examples=60, deadline=None)
@given(record_lists)
def test_interarrivals_nonnegative_and_sized(items):
    trace = FailureTrace(items)
    gaps = trace.interarrival_times()
    assert len(gaps) == max(0, len(trace) - 1)
    assert np.all(gaps >= 0)


@settings(max_examples=60, deadline=None)
@given(record_lists)
def test_downtime_equals_sum_of_repairs(items):
    trace = FailureTrace(items)
    by_cause = trace.downtime_by_cause()
    total = float(np.sum(trace.repair_times()))
    assert abs(sum(by_cause.values()) - total) <= 1e-9 * (1.0 + total)


@settings(max_examples=40, deadline=None)
@given(record_lists)
def test_merge_is_size_additive(items):
    half = len(items) // 2
    a = FailureTrace(items[:half])
    b = FailureTrace(items[half:])
    assert len(a.merge(b)) == len(items)


@settings(max_examples=40, deadline=None)
@given(record_lists)
def test_csv_roundtrip_preserves_everything(items):
    # hypothesis forbids function-scoped fixtures; use a private tempdir.
    import tempfile
    from pathlib import Path

    from repro.io import read_lanl_csv, write_lanl_csv

    trace = FailureTrace(items)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.csv"
        write_lanl_csv(trace, path)
        loaded = read_lanl_csv(path)
    assert len(loaded) == len(trace)
    for before, after in zip(trace, loaded):
        assert after.start_time == before.start_time
        assert after.end_time == before.end_time
        assert after.root_cause is before.root_cause
        assert after.workload is before.workload
