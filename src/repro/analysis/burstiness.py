"""Correlation and burstiness analysis — the paper's named gap.

Section 5.3: "While we did not perform a rigorous analysis of
correlations between nodes, this high number of simultaneous failures
indicates the existence of a tight correlation."  This module performs
that analysis:

* **burst extraction** — group failures into bursts (events within a
  coalescing window), yielding the burst-size distribution;
* **co-failure matrix** — for each node pair, how often they fail in
  the same burst, against the independence expectation;
* **index of dispersion** — variance-to-mean ratio of failure counts
  in fixed windows; 1 for a Poisson process, > 1 for clustered
  failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.errors import DegenerateSampleError
from repro.records.trace import FailureTrace

__all__ = ["Burst", "extract_bursts", "burst_size_distribution", "index_of_dispersion", "co_failure_ratio"]


@dataclass(frozen=True)
class Burst:
    """A group of failures coalesced in time.

    Attributes
    ----------
    start:
        Time of the first failure in the burst.
    node_ids:
        Nodes involved (with multiplicity collapsed).
    size:
        Number of failure records in the burst.
    """

    start: float
    node_ids: Tuple[int, ...]
    size: int

    @property
    def is_multi_node(self) -> bool:
        """Whether more than one distinct node failed."""
        return len(self.node_ids) > 1


def extract_bursts(trace: FailureTrace, window: float = 0.0) -> List[Burst]:
    """Coalesce a trace's failures into bursts.

    A failure joins the current burst if it starts within ``window``
    seconds of the *previous* failure (0 groups only exactly
    simultaneous events, matching the paper's zero-interarrival
    observation).
    """
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    records = trace.records
    if not records:
        return []
    bursts: List[Burst] = []
    current_start = records[0].start_time
    current_nodes = [records[0].node_id]
    previous_time = records[0].start_time
    for record in records[1:]:
        if record.start_time - previous_time <= window:
            current_nodes.append(record.node_id)
        else:
            bursts.append(
                Burst(
                    start=current_start,
                    node_ids=tuple(sorted(set(current_nodes))),
                    size=len(current_nodes),
                )
            )
            current_start = record.start_time
            current_nodes = [record.node_id]
        previous_time = record.start_time
    bursts.append(
        Burst(
            start=current_start,
            node_ids=tuple(sorted(set(current_nodes))),
            size=len(current_nodes),
        )
    )
    return bursts


def burst_size_distribution(
    trace: FailureTrace, window: float = 0.0
) -> Dict[int, int]:
    """Histogram of burst sizes: size -> number of bursts."""
    histogram: Dict[int, int] = {}
    for burst in extract_bursts(trace, window):
        histogram[burst.size] = histogram.get(burst.size, 0) + 1
    return histogram


def index_of_dispersion(
    trace: FailureTrace, window_seconds: float = 86400.0
) -> float:
    """Variance-to-mean ratio of failure counts per fixed window.

    Exactly 1 (in expectation) for a homogeneous Poisson process;
    values well above 1 signal clustering — driven in this data by
    bursts, the diurnal/weekly cycle and lifecycle nonstationarity.
    """
    if window_seconds <= 0:
        raise ValueError(f"window must be positive, got {window_seconds}")
    starts = trace.start_times()
    if starts.size < 10:
        raise DegenerateSampleError(
            f"index of dispersion needs at least 10 records, got {starts.size}"
        )
    span_start = trace.data_start
    n_windows = int((trace.data_end - span_start) // window_seconds)
    if n_windows < 2:
        raise DegenerateSampleError(
            "observation window shorter than two count windows"
        )
    bins = ((starts - span_start) // window_seconds).astype(int)
    bins = bins[(bins >= 0) & (bins < n_windows)]
    counts = np.bincount(bins, minlength=n_windows).astype(float)
    mean = counts.mean()
    if mean == 0:
        raise DegenerateSampleError(
            "variance-to-mean ratio is undefined: no failures inside "
            "the observation window (zero-mean counts)"
        )
    return float(counts.var() / mean)


def co_failure_ratio(
    trace: FailureTrace,
    node_a: int,
    node_b: int,
    window: float = 0.0,
) -> float:
    """Observed / expected rate of nodes a and b sharing a burst.

    Expectation is computed under independence from each node's
    marginal burst participation: ``E = n_a * n_b / n_bursts``.  A
    ratio >> 1 means the pair fails together far more often than
    chance — the paper's "tight correlation", quantified.

    Returns 0.0 when the pair never co-fails; raises if either node
    never participates in any burst.
    """
    bursts = extract_bursts(trace, window)
    n = len(bursts)
    if n == 0:
        raise DegenerateSampleError("trace has no failures")
    in_a = sum(1 for burst in bursts if node_a in burst.node_ids)
    in_b = sum(1 for burst in bursts if node_b in burst.node_ids)
    if in_a == 0 or in_b == 0:
        raise DegenerateSampleError(
            f"node {node_a if in_a == 0 else node_b} never fails"
        )
    together = sum(
        1
        for burst in bursts
        if node_a in burst.node_ids and node_b in burst.node_ids
    )
    expected = in_a * in_b / n
    return together / expected
