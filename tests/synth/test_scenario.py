"""Tests for the custom-cluster scenario builder."""

import pytest

from repro.analysis import failure_rates
from repro.analysis.lifecycle import classify_lifecycle, monthly_failures
from repro.records.timeutils import SECONDS_PER_YEAR
from repro.synth.lifecycle import LifecycleShape
from repro.synth.scenario import ClusterScenario, ScenarioSystem


def two_system_scenario():
    return (
        ClusterScenario(name="dc", years=4.0)
        .add_system("compute", nodes=256, procs_per_node=2,
                    failures_per_proc_year=0.4)
        .add_system("storage", nodes=32, procs_per_node=8,
                    failures_per_proc_year=0.1, repair_scale=3.0,
                    lifecycle="ramp-peak")
    )


class TestBuilder:
    def test_inventory_shape(self):
        inventory = two_system_scenario().build_inventory()
        assert set(inventory.keys()) == {1, 2}
        assert inventory[1].node_count == 256
        assert inventory[2].processor_count == 256

    def test_system_id_lookup(self):
        scenario = two_system_scenario()
        assert scenario.system_id_of("compute") == 1
        assert scenario.system_id_of("storage") == 2
        with pytest.raises(KeyError):
            scenario.system_id_of("missing")

    def test_duplicate_name_rejected(self):
        scenario = ClusterScenario(name="x", years=1.0)
        scenario.add_system("a", nodes=1, procs_per_node=1, failures_per_proc_year=1.0)
        with pytest.raises(ValueError):
            scenario.add_system("a", nodes=1, procs_per_node=1, failures_per_proc_year=1.0)

    def test_at_most_eight_systems(self):
        scenario = ClusterScenario(name="x", years=1.0)
        for index in range(8):
            scenario.add_system(f"s{index}", nodes=1, procs_per_node=1,
                                failures_per_proc_year=1.0)
        with pytest.raises(ValueError):
            scenario.add_system("overflow", nodes=1, procs_per_node=1,
                                failures_per_proc_year=1.0)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError):
            ClusterScenario(name="x", years=1.0).build_inventory()

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterScenario(name="x", years=0.0)
        with pytest.raises(ValueError):
            ScenarioSystem(name="bad", nodes=0, procs_per_node=1,
                           failures_per_proc_year=1.0)
        with pytest.raises(ValueError):
            ScenarioSystem(name="bad", nodes=1, procs_per_node=1,
                           failures_per_proc_year=1.0, lifecycle="bathtub")


class TestGeneration:
    def test_rates_respected(self):
        trace = two_system_scenario().generate(seed=3)
        rates = {r.system_id: r for r in failure_rates(trace)}
        # compute: 0.4 * 512 procs = ~205/year (plus infant excess).
        assert rates[1].per_year == pytest.approx(205, rel=0.35)
        # storage: 0.1 * 256 = ~26/year.
        assert rates[2].per_year == pytest.approx(26, rel=0.5)

    def test_window_length(self):
        trace = two_system_scenario().generate(seed=3)
        assert trace.data_end - trace.data_start == pytest.approx(4.0 * SECONDS_PER_YEAR)

    def test_lifecycle_shapes_respected(self):
        trace = two_system_scenario().generate(seed=3)
        compute = monthly_failures(trace, 1)
        storage = monthly_failures(trace, 2)
        assert classify_lifecycle(compute) is LifecycleShape.INFANT_DECAY
        assert classify_lifecycle(storage) is LifecycleShape.RAMP_PEAK

    def test_repair_scale_respected(self):
        trace = two_system_scenario().generate(seed=3)
        from repro.analysis.repair import repair_by_system

        per_system = repair_by_system(trace)
        assert per_system[2].median > 1.8 * per_system[1].median

    def test_deterministic(self):
        a = two_system_scenario().generate(seed=3)
        b = two_system_scenario().generate(seed=3)
        assert len(a) == len(b)
        assert a.start_times().tolist() == b.start_times().tolist()

    def test_does_not_mutate_base_config(self):
        from repro.synth import GeneratorConfig

        base = GeneratorConfig()
        original_rates = dict(base.rate_per_proc_year)
        two_system_scenario().build_config(base)
        assert base.rate_per_proc_year == original_rates
        assert base.burst_systems != ()
