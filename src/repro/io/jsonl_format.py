"""JSON-lines reader/writer for failure traces.

One JSON object per line, using the same field names as the CSV schema.
JSONL is convenient for streaming pipelines and for appending records
incrementally; the CSV format remains the interchange format with the
real CFDR data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

from repro.io.schema import SchemaError
from repro.records.record import FailureRecord, LowLevelCause, RootCause, Workload
from repro.records.system import SystemConfig
from repro.records.trace import FailureTrace

__all__ = ["read_jsonl", "write_jsonl"]

PathLike = Union[str, Path]


def _record_to_dict(record: FailureRecord) -> dict:
    payload = {
        "system_id": record.system_id,
        "node_id": record.node_id,
        "start_time": record.start_time,
        "end_time": record.end_time,
        "workload": record.workload.value,
        "root_cause": record.root_cause.value,
    }
    if record.low_level_cause is not None:
        payload["low_level_cause"] = record.low_level_cause.value
    if record.record_id is not None:
        payload["record_id"] = record.record_id
    return payload


def _record_from_dict(payload: Mapping, line: int) -> FailureRecord:
    try:
        low_text = payload.get("low_level_cause")
        return FailureRecord(
            start_time=float(payload["start_time"]),
            end_time=float(payload["end_time"]),
            system_id=int(payload["system_id"]),
            node_id=int(payload["node_id"]),
            workload=Workload(payload.get("workload", "compute")),
            root_cause=RootCause(payload.get("root_cause", "unknown")),
            low_level_cause=LowLevelCause(low_text) if low_text else None,
            record_id=payload.get("record_id"),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise SchemaError(f"line {line}: malformed record: {exc}") from exc


def write_jsonl(trace: Union[FailureTrace, Iterable[FailureRecord]], path: PathLike) -> int:
    """Write a trace as JSON lines; returns the number of lines written."""
    path = Path(path)
    records = trace.records if isinstance(trace, FailureTrace) else tuple(trace)
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(_record_to_dict(record), sort_keys=True))
            handle.write("\n")
    return len(records)


def read_jsonl(
    path: PathLike,
    systems: Optional[Mapping[int, SystemConfig]] = None,
    data_start: Optional[float] = None,
    data_end: Optional[float] = None,
) -> FailureTrace:
    """Load a failure trace from a JSON-lines file."""
    path = Path(path)
    records = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"line {line_number}: invalid JSON: {exc}") from exc
            records.append(_record_from_dict(payload, line_number))
    kwargs = {}
    if data_start is not None:
        kwargs["data_start"] = data_start
    if data_end is not None:
        kwargs["data_end"] = data_end
    if systems is not None:
        kwargs["systems"] = systems
    return FailureTrace(records, **kwargs)
