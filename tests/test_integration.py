"""End-to-end integration tests.

Each test exercises a full user workflow across several subpackages —
the paths a README reader actually takes.
"""

import datetime as dt

import numpy as np
import pytest

from repro.records.timeutils import SECONDS_PER_DAY, from_datetime


class TestGenerateWriteReadAnalyze:
    def test_full_cycle(self, tmp_path):
        """generate -> CSV -> read -> analyze -> compare to original."""
        from repro.analysis import compare_traces, summarize
        from repro.io import read_lanl_csv, write_lanl_csv
        from repro.synth import TraceGenerator

        original = TraceGenerator(seed=3).generate([20, 13])
        path = tmp_path / "trace.csv"
        write_lanl_csv(original, path)
        loaded = read_lanl_csv(path)

        # The loaded trace is statistically identical to the original.
        rows = compare_traces(original, loaded)
        assert all(row.relative_difference < 1e-12 for row in rows)

        # And the whole-paper summary runs on it.
        summary = summarize(loaded)
        assert summary.n_records == len(original)
        assert summary.repair_best_fit == "lognormal"

    def test_gzip_roundtrip(self, tmp_path):
        from repro.io import read_lanl_csv, write_lanl_csv
        from repro.synth import TraceGenerator

        trace = TraceGenerator(seed=5).generate([2])
        path = tmp_path / "trace.csv.gz"
        write_lanl_csv(trace, path)
        assert path.stat().st_size > 0
        # Gzip magic bytes.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        loaded = read_lanl_csv(path)
        assert len(loaded) == len(trace)
        assert loaded[0].start_time == trace[0].start_time


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        """The code block in README.md works as written."""
        import repro

        trace = repro.generate_lanl_trace(seed=1)
        assert len(trace) > 10_000

        fits = repro.fit_all(trace.repair_minutes())
        assert fits[0].name == "lognormal"

        from repro.analysis import system_interarrivals

        study = system_interarrivals(trace.filter_systems([20]), 20)
        assert study.best.name in ("weibull", "gamma")
        assert str(study.hazard) in ("decreasing", "non-monotone")


class TestFitComparisonHelpers:
    def test_describe_fits_table(self):
        from repro.stats import Weibull, describe_fits, fit_all

        generator = np.random.Generator(np.random.PCG64(0))
        data = Weibull(shape=0.7, scale=100.0).sample(generator, 3000)
        fits = fit_all(data)
        text = describe_fits(fits)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 candidates
        assert "weight" in lines[0]
        # Weights in each row parse and sum to ~1.
        weights = [float(line.split()[-1]) for line in lines[1:]]
        assert sum(weights) == pytest.approx(1.0, abs=0.01)

    def test_describe_fits_empty_rejected(self):
        from repro.stats.fitting import FitError, describe_fits

        with pytest.raises(FitError):
            describe_fits([])


class TestDiurnalWorkload:
    def test_rate_matches_base_generator(self):
        from repro.sched import DiurnalJobGenerator, JobGenerator

        window = (0.0, 120 * SECONDS_PER_DAY)
        flat = JobGenerator(seed=4).generate(*window)
        diurnal = DiurnalJobGenerator(seed=4).generate(*window)
        assert len(diurnal) == pytest.approx(len(flat), rel=0.15)

    def test_arrivals_concentrate_in_working_hours(self):
        from repro.records.timeutils import day_of_week, hour_of_day
        from repro.sched import DiurnalJobGenerator

        jobs = DiurnalJobGenerator(
            seed=4, mean_interarrival=900.0
        ).generate(0.0, 200 * SECONDS_PER_DAY)
        hours = np.array([hour_of_day(job.arrival) for job in jobs])
        days = np.array([day_of_week(job.arrival) for job in jobs])
        day_count = np.sum((hours >= 10) & (hours < 18))
        night_count = np.sum((hours >= 22) | (hours < 6))
        assert day_count > 1.3 * night_count
        weekday = np.sum(days < 5) / 5.0
        weekend = np.sum(days >= 5) / 2.0
        assert weekday > 1.4 * weekend

    def test_scheduling_with_diurnal_workload(self, system20_trace):
        from repro.sched import (
            ClusterTimeline,
            DiurnalJobGenerator,
            RandomPolicy,
            SchedulerSimulation,
        )

        timeline = ClusterTimeline(system20_trace, 20)
        t0 = from_datetime(dt.datetime(2002, 1, 1))
        t1 = from_datetime(dt.datetime(2002, 4, 1))
        jobs = DiurnalJobGenerator(seed=9).generate(t0, t1 - 20 * SECONDS_PER_DAY)
        result = SchedulerSimulation(timeline, RandomPolicy(seed=1), (t0, t1)).run(jobs)
        assert result.jobs_completed == len(jobs)


class TestScenarioToPaperPipeline:
    def test_custom_scenario_through_full_analysis(self):
        """A scenario-built trace flows through every major analysis."""
        from repro.analysis import (
            availability_report,
            hazard_study,
            periodicity_study,
            repair_statistics_by_cause,
        )
        from repro.synth import ClusterScenario

        trace = (
            ClusterScenario(name="it", years=3.0)
            .add_system("pool", nodes=200, procs_per_node=2,
                        failures_per_proc_year=0.6)
            .generate(seed=2)
        )
        assert len(trace) > 300
        assert periodicity_study(trace).peak_trough_ratio > 1.4
        assert repair_statistics_by_cause(trace)[-1].n == len(trace)
        assert availability_report(trace)[1].failures == len(trace)
        study = hazard_study(trace)
        assert study.weibull.shape < 1.0
