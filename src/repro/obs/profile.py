"""Profiling views over a flat trace event stream.

Reconstructs the span tree from the flat JSONL events emitted by
:class:`repro.obs.tracer.Tracer` and renders the two summaries the
``repro profile`` subcommand prints:

* :func:`format_span_tree` — the indented call tree with wall/CPU time
  and the share of the run each span accounts for;
* :func:`hotspots` / :func:`format_hotspots` — per-span-name
  aggregation ranked by *self* wall time (time not attributed to child
  spans), i.e. where the run actually went.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "SpanNode",
    "span_events",
    "metric_events",
    "build_span_tree",
    "format_span_tree",
    "hotspots",
    "format_hotspots",
]


@dataclass
class SpanNode:
    """One span with its children resolved."""

    event: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.event["name"])

    @property
    def wall(self) -> float:
        return float(self.event["wall_s"])

    @property
    def cpu(self) -> float:
        return float(self.event["cpu_s"])

    @property
    def self_wall(self) -> float:
        """Wall time not covered by child spans (floored at zero).

        Children timed in another process can overlap the parent (a
        supervisor attempt span and the worker's own spans measure the
        same work), which would drive the naive subtraction negative;
        flooring keeps hotspot ranking sane.
        """
        return max(0.0, self.wall - sum(child.wall for child in self.children))

    def walk(self) -> List["SpanNode"]:
        """This node and all descendants, depth-first."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes


def span_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Just the span lines of a trace event stream."""
    return [event for event in events if event.get("type") == "span"]


def metric_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Just the metric lines of a trace event stream."""
    return [event for event in events if event.get("type") == "metric"]


def build_span_tree(events: List[Dict[str, Any]]) -> List[SpanNode]:
    """Reconstruct the span forest from flat events.

    Events arrive in close order (children precede their parent within
    a stream), so linking is two-pass: index every node, then attach
    children in event order — which keeps the tree deterministic for a
    deterministic event stream.  Spans whose parent is missing from the
    stream (a truncated file) surface as extra roots rather than being
    dropped.
    """
    spans = span_events(events)
    nodes = {str(event["id"]): SpanNode(event) for event in spans}
    roots: List[SpanNode] = []
    for event in spans:
        node = nodes[str(event["id"])]
        parent_id = event.get("parent")
        parent = nodes.get(str(parent_id)) if parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def _format_node(
    node: SpanNode,
    lines: List[str],
    indent: int,
    total_wall: float,
    max_depth: Optional[int],
) -> None:
    if max_depth is not None and indent > max_depth:
        return
    share = 100.0 * node.wall / total_wall if total_wall > 0 else 0.0
    detail_parts = []
    attrs = node.event.get("attrs") or {}
    if attrs:
        rendered = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        detail_parts.append(rendered)
    counters = node.event.get("counters") or {}
    if counters:
        rendered = " ".join(f"{key}={counters[key]}" for key in sorted(counters))
        detail_parts.append(f"[{rendered}]")
    if node.event.get("status") != "ok":
        detail_parts.append(f"ERROR: {node.event.get('error', '')}")
    detail = ("  " + " ".join(detail_parts)) if detail_parts else ""
    lines.append(
        f"{'  ' * indent}{node.name:<{max(1, 36 - 2 * indent)}} "
        f"{node.wall * 1e3:>9.2f} ms  {node.cpu * 1e3:>9.2f} ms cpu "
        f"{share:>5.1f}%{detail}"
    )
    for child in node.children:
        _format_node(child, lines, indent + 1, total_wall, max_depth)


def format_span_tree(
    events: List[Dict[str, Any]], max_depth: Optional[int] = None
) -> str:
    """The indented span tree with wall/CPU timings and run share."""
    roots = build_span_tree(events)
    if not roots:
        return "trace: no spans recorded"
    total_wall = sum(root.wall for root in roots)
    lines = [
        f"{'span':<36} {'wall':>12}  {'cpu':>12}     {'share':>6}",
    ]
    for root in roots:
        _format_node(root, lines, 0, total_wall, max_depth)
    return "\n".join(lines)


def hotspots(events: List[Dict[str, Any]], top: int = 10) -> List[Dict[str, Any]]:
    """Aggregate spans by name, ranked by total *self* wall time.

    Returns dicts with ``name``, ``calls``, ``wall_s`` (inclusive),
    ``self_s`` (exclusive), ``cpu_s`` and ``share`` (self time as a
    fraction of the forest's total wall time).
    """
    roots = build_span_tree(events)
    total_wall = sum(root.wall for root in roots)
    aggregated: Dict[str, Dict[str, Any]] = {}
    for root in roots:
        for node in root.walk():
            entry = aggregated.setdefault(
                node.name,
                {"name": node.name, "calls": 0, "wall_s": 0.0,
                 "self_s": 0.0, "cpu_s": 0.0},
            )
            entry["calls"] += 1
            entry["wall_s"] += node.wall
            entry["self_s"] += node.self_wall
            entry["cpu_s"] += node.cpu
    ranked = sorted(
        aggregated.values(), key=lambda entry: (-entry["self_s"], entry["name"])
    )
    for entry in ranked:
        entry["share"] = entry["self_s"] / total_wall if total_wall > 0 else 0.0
    return ranked[:top] if top else ranked


def format_hotspots(events: List[Dict[str, Any]], top: int = 10) -> str:
    """Human-readable hotspot table."""
    entries = hotspots(events, top=top)
    if not entries:
        return "hotspots: no spans recorded"
    lines = [
        f"{'span':<28} {'calls':>6} {'self':>10} {'total':>10} "
        f"{'cpu':>10} {'share':>6}"
    ]
    for entry in entries:
        lines.append(
            f"{entry['name']:<28} {entry['calls']:>6} "
            f"{entry['self_s'] * 1e3:>8.2f}ms {entry['wall_s'] * 1e3:>8.2f}ms "
            f"{entry['cpu_s'] * 1e3:>8.2f}ms {100 * entry['share']:>5.1f}%"
        )
    return "\n".join(lines)
