"""Tests for the cause and repair sampling models."""

import numpy as np
import pytest

from repro.records.record import LOW_LEVEL_PARENT, RootCause
from repro.records.system import HardwareType
from repro.records.timeutils import SECONDS_PER_MONTH
from repro.synth.config import GeneratorConfig
from repro.synth.repair import RepairModel, _calibrate_body
from repro.synth.rootcause import CauseModel


def generator(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestCauseModel:
    def test_detail_always_matches_parent(self):
        model = CauseModel(GeneratorConfig(), HardwareType.F)
        gen = generator()
        for _ in range(2000):
            cause, detail = model.sample(gen, age_seconds=1e8)
            if detail is not None:
                assert LOW_LEVEL_PARENT[detail] is cause
            if cause is RootCause.UNKNOWN:
                assert detail is None

    def test_mixture_frequencies(self):
        config = GeneratorConfig()
        model = CauseModel(config, HardwareType.E)
        gen = generator(1)
        draws = [model.sample(gen, age_seconds=1e8)[0] for _ in range(20_000)]
        hardware_fraction = np.mean([c is RootCause.HARDWARE for c in draws])
        expected = config.cause_mix[HardwareType.E][RootCause.HARDWARE]
        assert hardware_fraction == pytest.approx(expected, abs=0.02)

    def test_unknown_era_decay(self):
        model = CauseModel(GeneratorConfig(), HardwareType.G)
        # > 90% unknowns at age 0; < 10% extra after ~2 years.
        assert model.unknown_probability(0.0) == pytest.approx(0.90)
        assert model.unknown_probability(24 * SECONDS_PER_MONTH) < 0.10

    def test_unknown_era_only_for_d_and_g(self):
        for hardware_type in (HardwareType.E, HardwareType.F, HardwareType.H):
            model = CauseModel(GeneratorConfig(), hardware_type)
            assert model.unknown_probability(0.0) == 0.0

    def test_unknown_era_floods_early_samples(self):
        model = CauseModel(GeneratorConfig(), HardwareType.G)
        gen = generator(2)
        early = [model.sample(gen, age_seconds=0.0)[0] for _ in range(5000)]
        unknown_fraction = np.mean([c is RootCause.UNKNOWN for c in early])
        assert unknown_fraction > 0.85


class TestRepairCalibration:
    def test_body_calibration_fixed_point(self):
        mu, sigma = _calibrate_body(342.0, 64.0, 0.01, 2.0, 1.0)
        # Median preserved exactly.
        assert np.exp(mu) == pytest.approx(64.0)
        # Mixture mean equals the target.
        body_mean = np.exp(mu + sigma**2 / 2)
        tail_factor = np.exp(2.0 + sigma * 1.0 + 0.5)
        mixture_mean = 0.99 * body_mean + 0.01 * body_mean * tail_factor
        assert mixture_mean == pytest.approx(342.0, rel=1e-6)

    def test_calibration_rejects_mean_below_median(self):
        with pytest.raises(ValueError):
            _calibrate_body(10.0, 50.0, 0.01, 2.0, 1.0)

    def test_mixture_mean_analytic_matches_target(self):
        config = GeneratorConfig()
        model = RepairModel(config)
        for cause, (mean, _median) in config.repair_mean_median_min.items():
            assert model.mixture_mean_minutes(cause) == pytest.approx(mean, rel=1e-6)

    def test_sampled_median_matches_table2(self):
        config = GeneratorConfig()
        model = RepairModel(config)
        gen = generator(3)
        minutes = [
            model.sample_minutes(gen, RootCause.HARDWARE, HardwareType.E)
            for _ in range(40_000)
        ]
        assert np.median(minutes) == pytest.approx(64.0, rel=0.05)

    def test_sampled_mean_near_table2(self):
        config = GeneratorConfig()
        model = RepairModel(config)
        gen = generator(4)
        minutes = [
            model.sample_minutes(gen, RootCause.ENVIRONMENT, HardwareType.E)
            for _ in range(40_000)
        ]
        # Environment has no heavy tail, so the sample mean is stable.
        assert np.mean(minutes) == pytest.approx(572.0, rel=0.05)

    def test_type_factor_scales(self):
        model = RepairModel(GeneratorConfig())
        gen_a = generator(5)
        gen_b = generator(5)
        e = [model.sample_minutes(gen_a, RootCause.HUMAN, HardwareType.E) for _ in range(5000)]
        f = [model.sample_minutes(gen_b, RootCause.HUMAN, HardwareType.F) for _ in range(5000)]
        # Same RNG stream: F is exactly the E draw times the factor.
        assert np.median(f) == pytest.approx(np.median(e) * 0.35, rel=0.02)

    def test_floor_applies(self):
        config = GeneratorConfig(repair_floor_min=30.0)
        model = RepairModel(config)
        gen = generator(6)
        minutes = [
            model.sample_minutes(gen, RootCause.SOFTWARE, HardwareType.F)
            for _ in range(2000)
        ]
        assert min(minutes) >= 30.0

    def test_seconds_is_sixty_times_minutes(self):
        model = RepairModel(GeneratorConfig())
        a = model.sample_minutes(generator(7), RootCause.HUMAN, HardwareType.E)
        b = model.sample_seconds(generator(7), RootCause.HUMAN, HardwareType.E)
        assert b == pytest.approx(60.0 * a)

    def test_heavy_tail_raises_c2(self):
        heavy = RepairModel(GeneratorConfig())
        light = RepairModel(GeneratorConfig(repair_tail_prob=0.0))
        gen_h = generator(8)
        gen_l = generator(8)
        heavy_sample = [
            heavy.sample_minutes(gen_h, RootCause.SOFTWARE, HardwareType.E)
            for _ in range(50_000)
        ]
        light_sample = [
            light.sample_minutes(gen_l, RootCause.SOFTWARE, HardwareType.E)
            for _ in range(50_000)
        ]

        def squared_cv(values):
            return np.var(values) / np.mean(values) ** 2

        assert squared_cv(heavy_sample) > 1.5 * squared_cv(light_sample)
