"""Tests for the non-raising fit entry points (FitOutcome)."""

import numpy as np
import pytest

from repro.stats import FitOutcome, fit_all_discrete_safe, fit_all_safe
from repro.stats.fitting import FitError, fit_all


@pytest.fixture(scope="module")
def good_sample():
    rng = np.random.default_rng(7)
    return rng.weibull(0.7, size=400) * 3600.0 + 1.0


class TestFitAllSafe:
    def test_ok_outcome_matches_raising_variant(self, good_sample):
        outcome = fit_all_safe(good_sample)
        assert outcome.ok
        assert outcome.status == "ok"
        assert outcome.error is None
        raising = fit_all(good_sample)
        assert [fit.distribution.name for fit in outcome.fits] == [
            fit.distribution.name for fit in raising
        ]
        assert outcome.best is not None
        assert outcome.best.distribution.name == raising[0].distribution.name

    def test_degenerate_sample_fails_without_raising(self):
        outcome = fit_all_safe([5.0])
        assert not outcome.ok
        assert outcome.status == "degenerate"
        assert outcome.degenerate
        assert outcome.fits == ()
        assert outcome.best is None
        assert outcome.error

    def test_non_degenerate_failure_stays_failed(self):
        # Negative values are a data-integrity problem, not thin data.
        outcome = fit_all_safe([1.0, -2.0, 3.0])
        assert outcome.status == "failed"
        assert not outcome.degenerate

    def test_degenerate_error_type(self):
        from repro.stats import DegenerateFitError, DegenerateSampleError
        from repro.stats.fitting import fit_lognormal

        with pytest.raises(DegenerateFitError):
            fit_all([5.0])  # too few observations
        with pytest.raises(DegenerateSampleError):
            fit_lognormal([5.0, 5.0, 5.0])  # zero spread
        assert issubclass(DegenerateFitError, FitError)
        assert issubclass(DegenerateFitError, DegenerateSampleError)

    def test_failure_message_matches_fit_error(self):
        with pytest.raises(FitError) as err:
            fit_all([1.0, -2.0, 3.0])
        outcome = fit_all_safe([1.0, -2.0, 3.0])
        assert outcome.error == str(err.value)

    def test_describe_covers_both_branches(self, good_sample):
        assert "fit failed" in fit_all_safe([1.0]).describe()
        assert "fit failed" not in fit_all_safe(good_sample).describe()

    def test_zero_policy_forwarded(self):
        sample = np.concatenate([np.zeros(5), np.full(50, 7.0), np.full(50, 3.0)])
        assert not fit_all_safe(sample, zero_policy="error").ok
        assert fit_all_safe(sample, zero_policy="drop").ok


class TestFitAllDiscreteSafe:
    def test_ok_on_counts(self):
        rng = np.random.default_rng(3)
        outcome = fit_all_discrete_safe(rng.poisson(4.0, size=300))
        assert outcome.ok
        assert outcome.best is not None

    def test_failed_on_empty(self):
        outcome = fit_all_discrete_safe([])
        assert not outcome.ok
        assert outcome.error


class TestFitOutcomeInvariants:
    def test_frozen(self, good_sample):
        outcome = fit_all_safe(good_sample)
        with pytest.raises(AttributeError):
            outcome.status = "failed"
