"""Chaos round-trip: corrupt a trace, re-ingest it, run the paper.

:func:`chaos_roundtrip` is the end-to-end resilience check used by the
``python -m repro chaos`` command and the CI smoke job: serialize a
trace, damage a fraction of its rows with the seeded injector, ingest
the damaged file under a lenient or repairing policy, and verify the
full paper report still completes (degrading per section, never
crashing).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.faults.injector import CorruptionInjector, CorruptionResult
from repro.faults.operators import CorruptionOperator
from repro.io.csv_format import write_lanl_csv
from repro.io.ingest import ingest_trace
from repro.io.policy import IngestPolicy, IngestReport
from repro.records.trace import FailureTrace
from repro.report.paper import PaperReport, run_paper_report

__all__ = ["ChaosReport", "chaos_roundtrip"]


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one corrupt -> ingest -> analyze round trip.

    Attributes
    ----------
    corruption:
        What the injector did.
    ingest:
        Row accounting of the lenient/repair ingest of the damaged file.
    paper:
        The per-section paper report run on the surviving rows, or
        ``None`` when ``run_report=False``.
    survived:
        True when ingest stayed within its error budget and the paper
        report (if run) completed — the pipeline absorbed the damage.
    """

    corruption: CorruptionResult
    ingest: IngestReport
    paper: Optional[PaperReport]
    survived: bool

    def describe(self) -> str:
        """Multi-paragraph human-readable chaos summary."""
        parts = [
            "chaos: " + self.corruption.describe(),
            self.ingest.describe(),
        ]
        if self.paper is not None:
            ok = sum(1 for section in self.paper.sections if section.ok)
            parts.append(
                f"paper report: {ok}/{len(self.paper.sections)} sections ok\n"
                + self.paper.diagnostics()
            )
        parts.append("SURVIVED" if self.survived else "DID NOT SURVIVE")
        return "\n\n".join(parts)


def chaos_roundtrip(
    trace: FailureTrace,
    seed: int = 0,
    rate: float = 0.05,
    mode: str = "lenient",
    operators: Optional[Sequence[CorruptionOperator]] = None,
    max_error_rate: Optional[float] = None,
    workdir: Optional[Path] = None,
    run_report: bool = True,
) -> ChaosReport:
    """Round-trip ``trace`` through corruption, ingest and analysis.

    Parameters
    ----------
    trace:
        The clean trace to damage.
    seed / rate / operators:
        Forwarded to :class:`CorruptionInjector`.
    mode:
        Ingest mode for the damaged file: ``"lenient"`` or ``"repair"``
        (``"strict"`` would defeat the exercise but is accepted).
    max_error_rate:
        Error budget for the ingest; defaults to well above ``rate`` so
        the injected corruption alone does not trip it.
    workdir:
        Where to write the intermediate files; a temporary directory is
        used (and cleaned up) when omitted.
    run_report:
        Also run :func:`~repro.report.paper.run_paper_report` on the
        survivors.
    """
    if max_error_rate is None:
        max_error_rate = min(1.0, max(0.1, 4.0 * rate))
    policy = IngestPolicy(mode=mode, max_error_rate=max_error_rate)
    injector = CorruptionInjector(seed=seed, rate=rate, operators=operators)

    def run(directory: Path) -> ChaosReport:
        clean_path = directory / "clean.csv"
        dirty_path = directory / "dirty.csv"
        write_lanl_csv(trace, clean_path)
        corruption = injector.corrupt_file(clean_path, dirty_path)
        try:
            result = ingest_trace(
                dirty_path,
                policy=policy,
                data_start=trace.data_start,
                data_end=trace.data_end,
                systems=trace.systems,
            )
        except Exception as exc:  # budget blown or unexpected crash
            report = IngestReport(source=str(dirty_path), mode=mode)
            report.error_counts["ingest-failed"] = 1
            report.error_samples["ingest-failed"] = [f"{type(exc).__name__}: {exc}"]
            return ChaosReport(
                corruption=corruption, ingest=report, paper=None, survived=False
            )
        paper = run_paper_report(result.trace) if run_report else None
        return ChaosReport(
            corruption=corruption,
            ingest=result.report,
            paper=paper,
            survived=True,
        )

    if workdir is not None:
        workdir = Path(workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        return run(workdir)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return run(Path(tmp))
