"""Calibration constants for the synthetic trace generator.

Every constant here is tied to a specific statement or figure of the
paper; the comments cite which.  The defaults target the paper's
*shapes* — rankings, ratios, fit parameters — rather than exact counts,
which depended on LANL specifics no model can recover.

All rates are failures per processor per (average) year unless noted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.records.record import LowLevelCause, RootCause
from repro.records.system import HardwareType

__all__ = ["GeneratorConfig", "ENGINES", "DEFAULT_ENGINE"]

#: The synthesis engines; both must produce bit-identical traces.
ENGINES = ("vectorized", "scalar")
DEFAULT_ENGINE = "vectorized"

# ---------------------------------------------------------------------------
# Failure rates (Figure 2(b): failures/year/processor, roughly constant
# within a hardware type; system 2 ~ 17/year, system 7 ~ 1159/year).
# ---------------------------------------------------------------------------
DEFAULT_RATE_PER_PROC_YEAR: Dict[HardwareType, float] = {
    HardwareType.A: 0.40,
    HardwareType.B: 0.55,   # system 2: 0.55 * 32 procs = 17.6 failures/year
    HardwareType.C: 2.20,   # small single node => large normalized rate
    HardwareType.D: 0.75,
    HardwareType.E: 0.28,   # system 7: 0.28 * 4096 = 1147 failures/year
    HardwareType.F: 0.25,
    HardwareType.G: 0.10,
    HardwareType.H: 0.12,
}

#: Per-system rate multipliers on top of the hardware-type base rate.
#: Footnote 3: systems 5-6 were the first type-E systems and saw higher
#: rates.  System 7 — the tallest bar of Figure 2(a) at ~1159
#: failures/year — ran measurably hotter than its twin, system 8.
DEFAULT_EARLY_SYSTEM_BOOST: Dict[int, float] = {5: 1.5, 6: 1.7, 7: 1.25}

# ---------------------------------------------------------------------------
# Interarrival process (Figure 6: Weibull with decreasing hazard).
# ---------------------------------------------------------------------------
#: Weibull shape of the per-node renewal process in *operational time*.
#: Lifecycle, diurnal and monthly-jitter modulation add variability on
#: top, so the shape fitted to the resulting wall-clock interarrivals is
#: lower: base 0.85 yields fitted shapes ~0.67 at node level and ~0.80
#: system-wide — the paper's 0.7 / 0.78.
DEFAULT_TBF_SHAPE = 0.85

# ---------------------------------------------------------------------------
# Monthly rate turbulence.  Real monthly failure counts (Figure 4) are
# far noisier than a smooth lifecycle curve, and the 1996-99 node-level
# interarrivals have C^2 ~ 3.9 with a lognormal best fit (Figure 6(a))
# — a doubly-stochastic signature.  Each (system, month) gets a shared
# lognormal rate multiplier with unit mean; the early production era of
# the ramp systems is the most turbulent.
# ---------------------------------------------------------------------------
DEFAULT_JITTER_SIGMA_EARLY_RAMP = 1.30
DEFAULT_JITTER_SIGMA_EARLY_DECAY = 0.35
DEFAULT_JITTER_SIGMA_LATE = 0.18
DEFAULT_JITTER_ERA_MONTHS = 40.0

# ---------------------------------------------------------------------------
# Diurnal / weekly modulation (Figure 5: failure rate ~2x higher during
# peak hours than at night, weekdays ~2x weekends).
# ---------------------------------------------------------------------------
#: Relative amplitude of the daily sinusoid; peak/trough = (1+a)/(1-a).
DEFAULT_DIURNAL_AMPLITUDE = 1.0 / 3.0
#: Hour of day (0-24) at which the daily rate peaks.
DEFAULT_DIURNAL_PEAK_HOUR = 14.0
#: Weekend multiplier before normalization; weekday/weekend ~ 1/0.55.
DEFAULT_WEEKEND_FACTOR = 0.55

# ---------------------------------------------------------------------------
# Node heterogeneity (Figure 3: per-node failure counts overdispersed
# vs Poisson; graphics nodes 21-23 of system 20 = 6% of nodes but 20%
# of failures; front-end nodes of E/F systems markedly worse).
# ---------------------------------------------------------------------------
#: Sigma of the lognormal per-node rate multiplier (mean fixed at 1).
DEFAULT_NODE_SIGMA = 0.35
#: Rate multiplier for graphics (visualization) nodes.
DEFAULT_GRAPHICS_MULTIPLIER = 3.8
#: Rate multiplier for front-end nodes.
DEFAULT_FRONTEND_MULTIPLIER = 2.5

# ---------------------------------------------------------------------------
# Root-cause mixtures (Figure 1(a): hardware 30-60%, software 5-24%,
# unknown 20-30% except type E < 5%; type D hardware ~ software).
# ---------------------------------------------------------------------------
_HW, _SW, _NET, _ENV, _HUM, _UNK = (
    RootCause.HARDWARE,
    RootCause.SOFTWARE,
    RootCause.NETWORK,
    RootCause.ENVIRONMENT,
    RootCause.HUMAN,
    RootCause.UNKNOWN,
)

DEFAULT_CAUSE_MIX: Dict[HardwareType, Dict[RootCause, float]] = {
    HardwareType.A: {_HW: 0.45, _SW: 0.20, _NET: 0.05, _ENV: 0.05, _HUM: 0.03, _UNK: 0.22},
    HardwareType.B: {_HW: 0.45, _SW: 0.20, _NET: 0.05, _ENV: 0.05, _HUM: 0.03, _UNK: 0.22},
    HardwareType.C: {_HW: 0.45, _SW: 0.20, _NET: 0.05, _ENV: 0.05, _HUM: 0.03, _UNK: 0.22},
    # Type D: hardware and software almost equally frequent (Section 4),
    # with enough of a margin that hardware stays the modal cause at
    # realistic sample sizes (~1k failures => ~2% noise on the gap).
    # The base unknown share is lower than the observed 20-30% because
    # the unknown-era effect (early diagnoses lost) tops it up.
    HardwareType.D: {_HW: 0.37, _SW: 0.325, _NET: 0.06, _ENV: 0.02, _HUM: 0.02, _UNK: 0.21},
    # Type E: < 5% unknown, dominated by the CPU design flaw.
    HardwareType.E: {_HW: 0.64, _SW: 0.18, _NET: 0.06, _ENV: 0.05, _HUM: 0.03, _UNK: 0.04},
    HardwareType.F: {_HW: 0.55, _SW: 0.15, _NET: 0.04, _ENV: 0.03, _HUM: 0.02, _UNK: 0.21},
    HardwareType.G: {_HW: 0.48, _SW: 0.20, _NET: 0.05, _ENV: 0.02, _HUM: 0.03, _UNK: 0.22},
    HardwareType.H: {_HW: 0.40, _SW: 0.24, _NET: 0.08, _ENV: 0.04, _HUM: 0.02, _UNK: 0.22},
}

# Low-level hardware causes (Section 4: memory > 10% of ALL failures on
# every system, > 25% on F and H; > 50% CPU on type E; memory the most
# common low-level cause everywhere except E).
_MEM, _CPU, _IC, _DISK = (
    LowLevelCause.MEMORY,
    LowLevelCause.CPU,
    LowLevelCause.NODE_INTERCONNECT,
    LowLevelCause.DISK,
)
_PS, _FAN, _NB, _OHW = (
    LowLevelCause.POWER_SUPPLY,
    LowLevelCause.FAN,
    LowLevelCause.NODE_BOARD,
    LowLevelCause.OTHER_HARDWARE,
)

DEFAULT_HARDWARE_DETAIL: Dict[HardwareType, Dict[LowLevelCause, float]] = {
    HardwareType.A: {_MEM: 0.35, _CPU: 0.15, _DISK: 0.12, _NB: 0.10, _PS: 0.08, _FAN: 0.05, _IC: 0.05, _OHW: 0.10},
    HardwareType.B: {_MEM: 0.35, _CPU: 0.15, _DISK: 0.12, _NB: 0.10, _PS: 0.08, _FAN: 0.05, _IC: 0.05, _OHW: 0.10},
    HardwareType.C: {_MEM: 0.35, _CPU: 0.15, _DISK: 0.12, _NB: 0.10, _PS: 0.08, _FAN: 0.05, _IC: 0.05, _OHW: 0.10},
    HardwareType.D: {_MEM: 0.40, _CPU: 0.10, _DISK: 0.15, _NB: 0.10, _PS: 0.08, _FAN: 0.05, _IC: 0.05, _OHW: 0.07},
    # Type E CPU design flaw: cpu ~ 0.82 * 0.64 = 52% of all failures.
    HardwareType.E: {_CPU: 0.82, _MEM: 0.16, _OHW: 0.02},
    # Type F: memory 0.50 * 0.55 = 27.5% of all failures.
    HardwareType.F: {_MEM: 0.50, _CPU: 0.10, _DISK: 0.10, _NB: 0.08, _PS: 0.07, _FAN: 0.05, _IC: 0.05, _OHW: 0.05},
    HardwareType.G: {_MEM: 0.30, _IC: 0.20, _CPU: 0.12, _DISK: 0.10, _NB: 0.08, _PS: 0.08, _FAN: 0.05, _OHW: 0.07},
    # Type H: memory 0.65 * 0.40 = 26% of all failures.
    HardwareType.H: {_MEM: 0.65, _CPU: 0.10, _IC: 0.10, _DISK: 0.05, _NB: 0.04, _PS: 0.03, _OHW: 0.03},
}

# Low-level software causes (Section 4: parallel FS dominant on F,
# scheduler on H, OS on E, unspecified on D and G).
_PFS, _SCH, _OS, _USR, _USW = (
    LowLevelCause.PARALLEL_FILESYSTEM,
    LowLevelCause.SCHEDULER_SOFTWARE,
    LowLevelCause.OPERATING_SYSTEM,
    LowLevelCause.USER_CODE,
    LowLevelCause.UNSPECIFIED_SOFTWARE,
)

DEFAULT_SOFTWARE_DETAIL: Dict[HardwareType, Dict[LowLevelCause, float]] = {
    HardwareType.A: {_OS: 0.40, _SCH: 0.20, _USR: 0.20, _USW: 0.20},
    HardwareType.B: {_OS: 0.40, _SCH: 0.20, _USR: 0.20, _USW: 0.20},
    HardwareType.C: {_OS: 0.40, _SCH: 0.20, _USR: 0.20, _USW: 0.20},
    HardwareType.D: {_USW: 0.35, _OS: 0.20, _PFS: 0.15, _SCH: 0.15, _USR: 0.15},
    HardwareType.E: {_OS: 0.45, _PFS: 0.20, _SCH: 0.15, _USR: 0.10, _USW: 0.10},
    HardwareType.F: {_PFS: 0.45, _OS: 0.20, _SCH: 0.15, _USR: 0.10, _USW: 0.10},
    HardwareType.G: {_USW: 0.40, _OS: 0.25, _PFS: 0.15, _SCH: 0.10, _USR: 0.10},
    HardwareType.H: {_SCH: 0.40, _OS: 0.20, _PFS: 0.15, _USR: 0.10, _USW: 0.15},
}

DEFAULT_NETWORK_DETAIL: Dict[LowLevelCause, float] = {
    LowLevelCause.SWITCH: 0.50,
    LowLevelCause.CABLE: 0.25,
    LowLevelCause.NIC: 0.25,
}

#: Section 6: environment has only two detailed categories.
DEFAULT_ENVIRONMENT_DETAIL: Dict[LowLevelCause, float] = {
    LowLevelCause.POWER_OUTAGE: 0.60,
    LowLevelCause.AC_FAILURE: 0.40,
}

DEFAULT_HUMAN_DETAIL: Dict[LowLevelCause, float] = {
    LowLevelCause.CONFIGURATION: 0.60,
    LowLevelCause.PROCEDURE: 0.40,
}

# Section 4: for types D and G the unknown fraction started > 90% and
# dropped below 10% within ~2 years as administrators learned the
# systems.  Modeled as an age-dependent chance to lose the diagnosis.
DEFAULT_UNKNOWN_ERA_TYPES = (HardwareType.D, HardwareType.G)
DEFAULT_UNKNOWN_ERA_INITIAL = 0.90
DEFAULT_UNKNOWN_ERA_DECAY_MONTHS = 8.0

# ---------------------------------------------------------------------------
# Repair-time model (Table 2, in minutes, reference scale = type E).
# (mean, median) pairs parameterize the lognormal body; the tail
# mixture reproduces the extreme C^2 values.
# ---------------------------------------------------------------------------
DEFAULT_REPAIR_MEAN_MEDIAN_MIN: Dict[RootCause, Tuple[float, float]] = {
    RootCause.UNKNOWN: (398.0, 32.0),
    RootCause.HUMAN: (163.0, 44.0),
    RootCause.ENVIRONMENT: (572.0, 269.0),
    RootCause.NETWORK: (247.0, 70.0),
    RootCause.SOFTWARE: (369.0, 33.0),
    RootCause.HARDWARE: (342.0, 64.0),
}

#: Probability that a repair lands in the heavy-tail mixture component.
DEFAULT_REPAIR_TAIL_PROB = 0.010
#: Log-space offsets of the tail component relative to the body.
DEFAULT_REPAIR_TAIL_MU_SHIFT = 2.0
DEFAULT_REPAIR_TAIL_SIGMA_EXTRA = 1.0
#: Environment repairs show C^2 ~ 2 (only two detailed causes): no tail.
DEFAULT_REPAIR_NO_TAIL_CAUSES = (RootCause.ENVIRONMENT,)
#: Floor on generated repair durations, in minutes.
DEFAULT_REPAIR_FLOOR_MIN = 1.0
#: Ceiling on generated repair durations, in minutes (8 weeks).  The
#: unbounded tail mixture can otherwise emit year-long repairs; the
#: paper's longest observed repairs are on the order of weeks, and a
#: single freak draw would dominate a per-cause Table 2 mean.
DEFAULT_REPAIR_CEILING_MIN = 80640.0

#: Figure 1(b): unknown-cause failures account for < 5% of downtime on
#: most systems despite a 20-30% count share — their repairs are short
#: (a reboot fixes what nobody can diagnose).  Only types D and G, the
#: learning-era systems, have long unknown repairs, which also keeps
#: the aggregate Table 2 "Unknown" column high (their unknowns dominate
#: the aggregate count).  Factor applied outside the unknown-era types.
DEFAULT_REPAIR_UNKNOWN_SHORT_FACTOR = 0.15

#: Figure 7(b,c): repair time depends strongly on hardware type ("from
#: less than an hour to more than a day") and not on system size.
#: Multiplier on the reference repair scale; reference is type E, and
#: the long-repair types (the one-off early machines A/B and big NUMA
#: nodes) contribute few failures, so the aggregate Table 2 statistics
#: stay near the reference values.
DEFAULT_REPAIR_TYPE_FACTOR: Dict[HardwareType, float] = {
    HardwareType.A: 8.0,
    HardwareType.B: 12.0,
    HardwareType.C: 2.5,
    HardwareType.D: 0.8,
    HardwareType.E: 1.0,
    HardwareType.F: 0.35,
    HardwareType.G: 1.5,
    HardwareType.H: 2.0,
}

# ---------------------------------------------------------------------------
# Lifecycle shapes (Figure 4) — parameters live in synth.lifecycle;
# the mapping of hardware type to shape is configured here.
# ---------------------------------------------------------------------------
#: Systems whose lifecycle ramps to a peak ~20 months in (types D, G).
DEFAULT_RAMP_TYPES = (HardwareType.D, HardwareType.G)
#: System 21 was introduced two years into the NUMA era and behaves
#: like Figure 4(a) despite being type G (Section 5.2).
DEFAULT_RAMP_EXEMPT_SYSTEMS = (21,)

# ---------------------------------------------------------------------------
# Correlated failures (Figure 6(c): > 30% of system-wide interarrivals
# are zero for system 20 before 2000).
# ---------------------------------------------------------------------------
#: Systems subject to early-era correlated bursts.
DEFAULT_BURST_SYSTEMS = (19, 20)
#: Bursts only before this many months of system age (systems 19-20
#: start 12/96-01/97, so 36 months keeps bursts inside the paper's
#: 1996-1999 "early production" era).
DEFAULT_BURST_ERA_MONTHS = 36.0
#: Probability that an early-era failure spawns simultaneous clones.
DEFAULT_BURST_PROB = 0.32
#: Mean number of clones per burst (geometric, >= 1).
DEFAULT_BURST_MEAN_EXTRA = 1.8


def _normalized(mix: Mapping, context: str) -> Dict:
    total = float(sum(mix.values()))
    if total <= 0:
        raise ValueError(f"{context}: probabilities sum to {total}")
    return {key: value / total for key, value in mix.items()}


@dataclass
class GeneratorConfig:
    """All tunable knobs of the synthetic trace generator.

    The defaults reproduce the paper; ablation benches flip individual
    features (``diurnal_enabled``, ``bursts_enabled``,
    ``node_sigma`` ...) to quantify what each contributes.
    """

    # Rates
    rate_per_proc_year: Dict[HardwareType, float] = field(
        default_factory=lambda: dict(DEFAULT_RATE_PER_PROC_YEAR)
    )
    early_system_boost: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_EARLY_SYSTEM_BOOST)
    )
    # Interarrival process
    tbf_shape: float = DEFAULT_TBF_SHAPE
    # Monthly rate turbulence
    jitter_enabled: bool = True
    jitter_sigma_early_ramp: float = DEFAULT_JITTER_SIGMA_EARLY_RAMP
    jitter_sigma_early_decay: float = DEFAULT_JITTER_SIGMA_EARLY_DECAY
    jitter_sigma_late: float = DEFAULT_JITTER_SIGMA_LATE
    jitter_era_months: float = DEFAULT_JITTER_ERA_MONTHS
    # Diurnal / weekly modulation
    diurnal_enabled: bool = True
    diurnal_amplitude: float = DEFAULT_DIURNAL_AMPLITUDE
    diurnal_peak_hour: float = DEFAULT_DIURNAL_PEAK_HOUR
    weekend_factor: float = DEFAULT_WEEKEND_FACTOR
    # Node heterogeneity
    node_sigma: float = DEFAULT_NODE_SIGMA
    graphics_multiplier: float = DEFAULT_GRAPHICS_MULTIPLIER
    frontend_multiplier: float = DEFAULT_FRONTEND_MULTIPLIER
    # Root causes
    cause_mix: Dict[HardwareType, Dict[RootCause, float]] = field(
        default_factory=lambda: {hw: dict(mix) for hw, mix in DEFAULT_CAUSE_MIX.items()}
    )
    hardware_detail: Dict[HardwareType, Dict[LowLevelCause, float]] = field(
        default_factory=lambda: {hw: dict(mix) for hw, mix in DEFAULT_HARDWARE_DETAIL.items()}
    )
    software_detail: Dict[HardwareType, Dict[LowLevelCause, float]] = field(
        default_factory=lambda: {hw: dict(mix) for hw, mix in DEFAULT_SOFTWARE_DETAIL.items()}
    )
    network_detail: Dict[LowLevelCause, float] = field(
        default_factory=lambda: dict(DEFAULT_NETWORK_DETAIL)
    )
    environment_detail: Dict[LowLevelCause, float] = field(
        default_factory=lambda: dict(DEFAULT_ENVIRONMENT_DETAIL)
    )
    human_detail: Dict[LowLevelCause, float] = field(
        default_factory=lambda: dict(DEFAULT_HUMAN_DETAIL)
    )
    unknown_era_types: Tuple[HardwareType, ...] = DEFAULT_UNKNOWN_ERA_TYPES
    unknown_era_initial: float = DEFAULT_UNKNOWN_ERA_INITIAL
    unknown_era_decay_months: float = DEFAULT_UNKNOWN_ERA_DECAY_MONTHS
    # Repair model
    repair_mean_median_min: Dict[RootCause, Tuple[float, float]] = field(
        default_factory=lambda: dict(DEFAULT_REPAIR_MEAN_MEDIAN_MIN)
    )
    repair_tail_prob: float = DEFAULT_REPAIR_TAIL_PROB
    repair_tail_mu_shift: float = DEFAULT_REPAIR_TAIL_MU_SHIFT
    repair_tail_sigma_extra: float = DEFAULT_REPAIR_TAIL_SIGMA_EXTRA
    repair_no_tail_causes: Tuple[RootCause, ...] = DEFAULT_REPAIR_NO_TAIL_CAUSES
    repair_floor_min: float = DEFAULT_REPAIR_FLOOR_MIN
    repair_ceiling_min: float = DEFAULT_REPAIR_CEILING_MIN
    repair_unknown_short_factor: float = DEFAULT_REPAIR_UNKNOWN_SHORT_FACTOR
    repair_type_factor: Dict[HardwareType, float] = field(
        default_factory=lambda: dict(DEFAULT_REPAIR_TYPE_FACTOR)
    )
    # Lifecycle
    ramp_types: Tuple[HardwareType, ...] = DEFAULT_RAMP_TYPES
    ramp_exempt_systems: Tuple[int, ...] = DEFAULT_RAMP_EXEMPT_SYSTEMS
    # Correlated bursts
    bursts_enabled: bool = True
    burst_systems: Tuple[int, ...] = DEFAULT_BURST_SYSTEMS
    burst_era_months: float = DEFAULT_BURST_ERA_MONTHS
    burst_prob: float = DEFAULT_BURST_PROB
    burst_mean_extra: float = DEFAULT_BURST_MEAN_EXTRA
    #: Synthesis engine: "vectorized" (batched NumPy hot path) or
    #: "scalar" (the per-event reference loop).  Both produce identical
    #: traces for the same seed; "scalar" exists for the equivalence
    #: suite and for debugging.
    default_engine: str = DEFAULT_ENGINE

    def __post_init__(self) -> None:
        if self.default_engine not in ENGINES:
            raise ValueError(
                f"default_engine must be one of {ENGINES}, "
                f"got {self.default_engine!r}"
            )
        if not 0 < self.tbf_shape <= 2:
            raise ValueError(f"tbf_shape must be in (0, 2], got {self.tbf_shape}")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if not 0 < self.weekend_factor <= 1:
            raise ValueError(
                f"weekend_factor must be in (0, 1], got {self.weekend_factor}"
            )
        if self.node_sigma < 0:
            raise ValueError(f"node_sigma must be >= 0, got {self.node_sigma}")
        if not 0 <= self.burst_prob < 1:
            raise ValueError(f"burst_prob must be in [0, 1), got {self.burst_prob}")
        if self.repair_ceiling_min < self.repair_floor_min:
            raise ValueError(
                f"repair_ceiling_min {self.repair_ceiling_min} must be >= "
                f"repair_floor_min {self.repair_floor_min}"
            )
        # Normalize all mixture tables so callers can pass raw weights.
        self.cause_mix = {
            hw: _normalized(mix, f"cause_mix[{hw}]") for hw, mix in self.cause_mix.items()
        }
        self.hardware_detail = {
            hw: _normalized(mix, f"hardware_detail[{hw}]")
            for hw, mix in self.hardware_detail.items()
        }
        self.software_detail = {
            hw: _normalized(mix, f"software_detail[{hw}]")
            for hw, mix in self.software_detail.items()
        }
        self.network_detail = _normalized(self.network_detail, "network_detail")
        self.environment_detail = _normalized(self.environment_detail, "environment_detail")
        self.human_detail = _normalized(self.human_detail, "human_detail")
