"""Parametric distributions used in reliability theory.

The four continuous distributions the paper fits (exponential, Weibull,
gamma, lognormal), plus the normal and Poisson used in the per-node
failure-count analysis (Figure 3(b)).

Each distribution exposes a uniform interface:

* ``pdf`` / ``logpdf`` (``pmf`` / ``logpmf`` for Poisson),
* ``cdf`` and ``survival``,
* ``hazard`` — the hazard rate h(t) = pdf(t) / survival(t), central to
  the paper's decreasing-hazard finding,
* analytic ``mean``, ``variance``, ``median`` and ``squared_cv``,
* ``sample(generator, size)`` for simulation.

Parameter conventions
---------------------
* Exponential(scale): mean = scale.
* Weibull(shape, scale): hazard decreasing iff shape < 1.
* Gamma(shape, scale): mean = shape * scale.
* LogNormal(mu, sigma): median = exp(mu).
* Normal(mu, sigma).
* Poisson(rate).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Union

import numpy as np
from scipy import special

__all__ = [
    "Distribution",
    "Exponential",
    "Weibull",
    "Gamma",
    "LogNormal",
    "Normal",
    "Poisson",
]

ArrayLike = Union[float, np.ndarray]

_SQRT2 = math.sqrt(2.0)
_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)


def _as_array(x: ArrayLike) -> np.ndarray:
    return np.asarray(x, dtype=float)


class Distribution(ABC):
    """Common interface of all parametric distributions."""

    #: Number of free parameters (used for AIC/BIC).
    n_params: int = 2

    #: Short name used in fit tables and figures.
    name: str = "distribution"

    @abstractmethod
    def logpdf(self, x: ArrayLike) -> np.ndarray:
        """Log density (log mass for discrete distributions)."""

    @abstractmethod
    def cdf(self, x: ArrayLike) -> np.ndarray:
        """Cumulative distribution function."""

    @abstractmethod
    def sample(self, generator: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` iid samples."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Analytic mean."""

    @property
    @abstractmethod
    def variance(self) -> float:
        """Analytic variance."""

    @property
    @abstractmethod
    def median(self) -> float:
        """Analytic or numerically inverted median."""

    def ppf(self, q: ArrayLike) -> np.ndarray:
        """Quantile function (inverse CDF).

        Subclasses override with closed forms where they exist; the
        base implementation bisects the CDF.
        """
        qs = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((qs < 0) | (qs > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = np.empty_like(qs)
        for i, p in enumerate(qs):
            out[i] = self._invert_cdf(float(p))
        return out if np.ndim(q) else out.reshape(())

    def _invert_cdf(self, p: float) -> float:
        if p >= 1.0:
            return math.inf
        spread = max(abs(self.median), math.sqrt(self.variance), 1.0)
        low = self.median - spread
        high = self.median + spread
        for _ in range(200):
            if float(self.cdf(low)) < p or low <= 0 and float(self.cdf(low)) == 0.0:
                break
            low -= spread
            spread *= 2.0
        if p <= 0.0:
            # Smallest point of the (numeric) support bracket.
            return max(low, 0.0) if float(self.cdf(0.0)) == 0.0 else low
        spread = max(abs(self.median), 1.0)
        for _ in range(200):
            if float(self.cdf(high)) >= p:
                break
            high += spread
            spread *= 2.0
        for _ in range(200):
            mid = 0.5 * (low + high)
            if float(self.cdf(mid)) < p:
                low = mid
            else:
                high = mid
            if high - low <= 1e-12 * max(1.0, abs(high)):
                break
        return 0.5 * (low + high)

    # Shared derived quantities -------------------------------------------------

    def pdf(self, x: ArrayLike) -> np.ndarray:
        """Density, exp(logpdf)."""
        return np.exp(self.logpdf(x))

    def survival(self, x: ArrayLike) -> np.ndarray:
        """Survival function 1 - CDF."""
        return 1.0 - self.cdf(x)

    def hazard(self, x: ArrayLike) -> np.ndarray:
        """Hazard rate pdf / survival (inf where survival is 0)."""
        pdf = self.pdf(x)
        survival = self.survival(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(survival > 0, pdf / survival, np.inf)

    @property
    def squared_cv(self) -> float:
        """Analytic squared coefficient of variation."""
        return self.variance / self.mean**2

    def nll(self, data: ArrayLike) -> float:
        """Negative log-likelihood of ``data`` under this distribution."""
        return -float(np.sum(self.logpdf(data)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    @abstractmethod
    def describe(self) -> str:
        """Short parameter rendering, e.g. ``Weibull(shape=0.7, scale=8.6e4)``."""


@dataclass(frozen=True, repr=False)
class Exponential(Distribution):
    """Exponential distribution with the given ``scale`` (= mean).

    C² is exactly 1 and the hazard rate is constant — the benchmark the
    paper measures everything else against.
    """

    scale: float
    n_params = 1
    name = "exponential"

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def logpdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        out = -np.log(self.scale) - x / self.scale
        return np.where(x >= 0, out, -np.inf)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        return np.where(x > 0, -np.expm1(-x / self.scale), 0.0)

    def sample(self, generator: np.random.Generator, size: int) -> np.ndarray:
        return generator.exponential(self.scale, size)

    @property
    def mean(self) -> float:
        return self.scale

    @property
    def variance(self) -> float:
        return self.scale**2

    @property
    def median(self) -> float:
        return self.scale * math.log(2.0)

    def ppf(self, q: ArrayLike) -> np.ndarray:
        qs = np.asarray(q, dtype=float)
        if np.any((qs < 0) | (qs > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return -self.scale * np.log1p(-qs)

    def describe(self) -> str:
        return f"Exponential(scale={self.scale:.4g})"


@dataclass(frozen=True, repr=False)
class Weibull(Distribution):
    """Weibull distribution with ``shape`` k and ``scale`` lambda.

    The hazard rate is decreasing for k < 1, constant for k = 1
    (exponential), increasing for k > 1.  The paper finds k = 0.7-0.8
    for time between failures.
    """

    shape: float
    scale: float
    n_params = 2
    name = "weibull"

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError(
                f"shape and scale must be positive, got {self.shape}, {self.scale}"
            )

    def logpdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = x / self.scale
            out = (
                math.log(self.shape / self.scale)
                + (self.shape - 1.0) * np.log(z)
                - z**self.shape
            )
        return np.where(x > 0, out, -np.inf)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        z = np.where(x > 0, x / self.scale, 0.0)
        return np.where(x > 0, -np.expm1(-(z**self.shape)), 0.0)

    def sample(self, generator: np.random.Generator, size: int) -> np.ndarray:
        return self.scale * generator.weibull(self.shape, size)

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    @property
    def median(self) -> float:
        return self.scale * math.log(2.0) ** (1.0 / self.shape)

    def ppf(self, q: ArrayLike) -> np.ndarray:
        qs = np.asarray(q, dtype=float)
        if np.any((qs < 0) | (qs > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return self.scale * (-np.log1p(-qs)) ** (1.0 / self.shape)

    @property
    def hazard_decreasing(self) -> bool:
        """True iff the hazard rate is strictly decreasing (shape < 1)."""
        return self.shape < 1.0

    def describe(self) -> str:
        return f"Weibull(shape={self.shape:.4g}, scale={self.scale:.4g})"


@dataclass(frozen=True, repr=False)
class Gamma(Distribution):
    """Gamma distribution with ``shape`` k and ``scale`` theta.

    Like the Weibull, the hazard is decreasing for k < 1.  The paper
    finds gamma and Weibull fits are often equally good for TBF.
    """

    shape: float
    scale: float
    n_params = 2
    name = "gamma"

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError(
                f"shape and scale must be positive, got {self.shape}, {self.scale}"
            )

    def logpdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (
                (self.shape - 1.0) * np.log(x)
                - x / self.scale
                - special.gammaln(self.shape)
                - self.shape * math.log(self.scale)
            )
        return np.where(x > 0, out, -np.inf)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        return np.where(x > 0, special.gammainc(self.shape, np.maximum(x, 0) / self.scale), 0.0)

    def sample(self, generator: np.random.Generator, size: int) -> np.ndarray:
        return generator.gamma(self.shape, self.scale, size)

    @property
    def mean(self) -> float:
        return self.shape * self.scale

    @property
    def variance(self) -> float:
        return self.shape * self.scale**2

    @property
    def median(self) -> float:
        return float(special.gammaincinv(self.shape, 0.5) * self.scale)

    @property
    def hazard_decreasing(self) -> bool:
        """True iff the hazard rate is strictly decreasing (shape < 1)."""
        return self.shape < 1.0

    def describe(self) -> str:
        return f"Gamma(shape={self.shape:.4g}, scale={self.scale:.4g})"


@dataclass(frozen=True, repr=False)
class LogNormal(Distribution):
    """Lognormal distribution: log X ~ Normal(mu, sigma²).

    The paper's best model for repair times.  Median = exp(mu);
    mean/median = exp(sigma²/2) quantifies the skew.
    """

    mu: float
    sigma: float
    n_params = 2
    name = "lognormal"

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    def logpdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            log_x = np.log(x)
            z = (log_x - self.mu) / self.sigma
            out = -log_x - math.log(self.sigma) - _LOG_SQRT_2PI - 0.5 * z**2
        return np.where(x > 0, out, -np.inf)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (np.log(np.maximum(x, np.finfo(float).tiny)) - self.mu) / self.sigma
        return np.where(x > 0, 0.5 * (1.0 + special.erf(z / _SQRT2)), 0.0)

    def sample(self, generator: np.random.Generator, size: int) -> np.ndarray:
        return generator.lognormal(self.mu, self.sigma, size)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    @property
    def variance(self) -> float:
        return (math.exp(self.sigma**2) - 1.0) * math.exp(2.0 * self.mu + self.sigma**2)

    @property
    def median(self) -> float:
        return math.exp(self.mu)

    def describe(self) -> str:
        return f"LogNormal(mu={self.mu:.4g}, sigma={self.sigma:.4g})"


@dataclass(frozen=True, repr=False)
class Normal(Distribution):
    """Normal distribution (used for the per-node failure-count CDF)."""

    mu: float
    sigma: float
    n_params = 2
    name = "normal"

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    def logpdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        z = (x - self.mu) / self.sigma
        return -math.log(self.sigma) - _LOG_SQRT_2PI - 0.5 * z**2

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        z = (x - self.mu) / self.sigma
        return 0.5 * (1.0 + special.erf(z / _SQRT2))

    def sample(self, generator: np.random.Generator, size: int) -> np.ndarray:
        return generator.normal(self.mu, self.sigma, size)

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return self.sigma**2

    @property
    def median(self) -> float:
        return self.mu

    def describe(self) -> str:
        return f"Normal(mu={self.mu:.4g}, sigma={self.sigma:.4g})"


@dataclass(frozen=True, repr=False)
class Poisson(Distribution):
    """Poisson distribution (counts).

    The null model for failures-per-node under the classic assumption
    of iid exponential interarrivals with equal rates across nodes —
    which Figure 3(b) shows is a poor fit.
    """

    rate: float
    n_params = 1
    name = "poisson"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def logpdf(self, x: ArrayLike) -> np.ndarray:
        """Log pmf at integer counts (named logpdf for interface parity)."""
        k = _as_array(x)
        out = k * math.log(self.rate) - self.rate - special.gammaln(k + 1.0)
        integral = np.isclose(k, np.round(k)) & (k >= 0)
        return np.where(integral, out, -np.inf)

    logpmf = logpdf

    def pmf(self, x: ArrayLike) -> np.ndarray:
        """Probability mass at integer counts."""
        return np.exp(self.logpdf(x))

    def cdf(self, x: ArrayLike) -> np.ndarray:
        k = np.floor(_as_array(x))
        return np.where(k >= 0, special.gammaincc(k + 1.0, self.rate), 0.0)

    def sample(self, generator: np.random.Generator, size: int) -> np.ndarray:
        return generator.poisson(self.rate, size).astype(float)

    @property
    def mean(self) -> float:
        return self.rate

    @property
    def variance(self) -> float:
        return self.rate

    @property
    def median(self) -> float:
        # Standard approximation, exact for all practical rate values
        # (verified against the CDF in tests).
        k = math.floor(self.rate + 1.0 / 3.0 - 0.02 / self.rate)
        while special.gammaincc(k + 1.0, self.rate) < 0.5:
            k += 1
        while k > 0 and special.gammaincc(k, self.rate) >= 0.5:
            k -= 1
        return float(k)

    def describe(self) -> str:
        return f"Poisson(rate={self.rate:.4g})"
