"""Request routing and query-string normalization for ``repro serve``.

The route table is deliberately tiny and versioned: ``/healthz`` and
``/readyz`` for orchestration probes, five ``/v1`` query endpoints.
Parsing failures raise :class:`BadRequest` with a client-facing
message; the server maps that to HTTP 400 without touching the store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.serve.gateway import Query

__all__ = ["BadRequest", "Route", "resolve", "ROUTES"]


class BadRequest(Exception):
    """Malformed request path or query parameters (HTTP 400)."""


@dataclass(frozen=True)
class Route:
    """A resolved request: endpoint name plus normalized parameters."""

    name: str
    query: Optional[Query] = None
    #: Per-request deadline override in seconds (from ``deadline_ms``).
    deadline_seconds: Optional[float] = None


#: Supported endpoints (GET only), for 404 messages and the docs.
ROUTES = (
    "/healthz",
    "/readyz",
    "/v1/systems",
    "/v1/summary",
    "/v1/analyze",
    "/v1/report",
    "/v1/stats",
)

#: Query parameters each endpoint accepts; anything else is a 400 so
#: typos (``?sytem=3``) fail loudly instead of silently scanning all.
_ALLOWED_PARAMS: Dict[str, Tuple[str, ...]] = {
    "/healthz": (),
    "/readyz": (),
    "/v1/systems": (),
    "/v1/summary": ("deadline_ms",),
    "/v1/analyze": ("system", "systems", "t_min", "t_max", "deadline_ms"),
    "/v1/report": ("deadline_ms",),
    "/v1/stats": (),
}


def _float_param(params: Dict[str, List[str]], name: str) -> Optional[float]:
    values = params.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise BadRequest(f"parameter {name!r} given {len(values)} times")
    try:
        return float(values[0])
    except ValueError:
        raise BadRequest(
            f"parameter {name!r} must be a number, got {values[0]!r}"
        ) from None


def _systems_param(params: Dict[str, List[str]]) -> Optional[List[int]]:
    raw: List[str] = []
    for name in ("system", "systems"):
        for value in params.get(name, []):
            raw.extend(part for part in value.split(",") if part)
    if not raw:
        return None
    systems: List[int] = []
    for part in raw:
        try:
            systems.append(int(part))
        except ValueError:
            raise BadRequest(
                f"system ids must be integers, got {part!r}"
            ) from None
    return systems


def _deadline_param(params: Dict[str, List[str]]) -> Optional[float]:
    values = params.get("deadline_ms")
    if not values:
        return None
    try:
        millis = float(values[-1])
    except ValueError:
        raise BadRequest(
            f"deadline_ms must be a number, got {values[-1]!r}"
        ) from None
    if millis <= 0:
        raise BadRequest(f"deadline_ms must be > 0, got {millis}")
    return millis / 1000.0


def resolve(method: str, target: str) -> Route:
    """Map a request line to a :class:`Route` (raises :class:`BadRequest`)."""
    if method != "GET":
        raise BadRequest(f"method {method} not allowed (GET only)")
    parts = urlsplit(target)
    path = parts.path.rstrip("/") or "/"
    if path not in _ALLOWED_PARAMS:
        raise KeyError(path)
    params: Dict[str, List[str]] = {}
    for name, value in parse_qsl(parts.query, keep_blank_values=True):
        params.setdefault(name, []).append(value)
    allowed = _ALLOWED_PARAMS[path]
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise BadRequest(
            f"unknown parameter(s) {', '.join(unknown)} for {path} "
            f"(allowed: {', '.join(allowed) or 'none'})"
        )
    deadline_seconds = _deadline_param(params)
    if path == "/v1/summary":
        return Route(
            name=path,
            query=Query.build(kind="summary"),
            deadline_seconds=deadline_seconds,
        )
    if path == "/v1/report":
        return Route(
            name=path,
            query=Query.build(kind="report"),
            deadline_seconds=deadline_seconds,
        )
    if path == "/v1/analyze":
        t_min = _float_param(params, "t_min")
        t_max = _float_param(params, "t_max")
        if t_min is not None and t_max is not None and t_min >= t_max:
            raise BadRequest(
                f"empty window: t_min={t_min} must be < t_max={t_max}"
            )
        return Route(
            name=path,
            query=Query.build(
                kind="analyze",
                systems=_systems_param(params),
                t_min=t_min,
                t_max=t_max,
            ),
            deadline_seconds=deadline_seconds,
        )
    return Route(name=path)
