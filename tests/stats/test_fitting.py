"""Tests for the MLE fitters."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.distributions import Exponential, Gamma, LogNormal, Weibull
from repro.stats.fitting import (
    FitError,
    fit_all,
    fit_all_discrete,
    fit_exponential,
    fit_gamma,
    fit_lognormal,
    fit_normal,
    fit_poisson,
    fit_weibull,
    prepare_positive,
)


def sample(dist, n=30_000, seed=0):
    generator = np.random.Generator(np.random.PCG64(seed))
    return dist.sample(generator, n)


class TestParameterRecovery:
    def test_exponential(self):
        fit = fit_exponential(sample(Exponential(scale=250.0)))
        assert fit.distribution.scale == pytest.approx(250.0, rel=0.03)

    @pytest.mark.parametrize("shape", [0.5, 0.7, 1.0, 1.8])
    def test_weibull(self, shape):
        fit = fit_weibull(sample(Weibull(shape=shape, scale=100.0)))
        assert fit.distribution.shape == pytest.approx(shape, rel=0.03)
        assert fit.distribution.scale == pytest.approx(100.0, rel=0.05)

    @pytest.mark.parametrize("shape", [0.4, 1.0, 5.0])
    def test_gamma(self, shape):
        fit = fit_gamma(sample(Gamma(shape=shape, scale=20.0)))
        assert fit.distribution.shape == pytest.approx(shape, rel=0.05)
        assert fit.distribution.scale == pytest.approx(20.0, rel=0.07)

    def test_lognormal(self):
        fit = fit_lognormal(sample(LogNormal(mu=3.5, sigma=2.1)))
        assert fit.distribution.mu == pytest.approx(3.5, abs=0.05)
        assert fit.distribution.sigma == pytest.approx(2.1, rel=0.03)

    def test_normal(self):
        generator = np.random.Generator(np.random.PCG64(0))
        fit = fit_normal(generator.normal(7.0, 3.0, 30_000))
        assert fit.distribution.mu == pytest.approx(7.0, abs=0.1)
        assert fit.distribution.sigma == pytest.approx(3.0, rel=0.03)

    def test_poisson(self):
        generator = np.random.Generator(np.random.PCG64(0))
        fit = fit_poisson(generator.poisson(12.0, 10_000).astype(float))
        assert fit.distribution.rate == pytest.approx(12.0, rel=0.03)


class TestRanking:
    def test_true_model_wins(self):
        # For each generator, the matching family should rank first.
        cases = [
            (Weibull(shape=0.6, scale=100.0), "weibull"),
            (LogNormal(mu=2.0, sigma=1.5), "lognormal"),
            (Exponential(scale=50.0), ("exponential", "weibull", "gamma")),
        ]
        for dist, expected in cases:
            best = fit_all(sample(dist, seed=3))[0].name
            if isinstance(expected, tuple):
                # Exponential is nested in Weibull/gamma; any of the
                # three can win by a hair of likelihood.
                assert best in expected
            else:
                assert best == expected

    def test_results_sorted_by_nll(self):
        fits = fit_all(sample(Weibull(shape=0.7, scale=10.0)))
        nlls = [fit.nll for fit in fits]
        assert nlls == sorted(nlls)

    def test_four_candidates_on_positive_data(self):
        fits = fit_all(sample(LogNormal(mu=0.0, sigma=1.0)))
        assert {fit.name for fit in fits} == {
            "exponential", "weibull", "gamma", "lognormal",
        }

    def test_discrete_overdispersed_counts_reject_poisson(self):
        generator = np.random.Generator(np.random.PCG64(5))
        rates = generator.lognormal(4.0, 0.6, 300)
        counts = generator.poisson(rates).astype(float)
        fits = fit_all_discrete(counts)
        assert fits[-1].name == "poisson"

    def test_discrete_true_poisson_accepts_poisson(self):
        generator = np.random.Generator(np.random.PCG64(5))
        counts = generator.poisson(50.0, 2000).astype(float)
        fits = fit_all_discrete(counts)
        assert fits[0].name == "poisson"


class TestZeroPolicies:
    DATA = [0.0, 0.0, 5.0, 10.0, 20.0]

    def test_error_policy(self):
        with pytest.raises(FitError, match="non-positive"):
            prepare_positive(self.DATA, zero_policy="error")

    def test_drop_policy(self):
        cleaned = prepare_positive(self.DATA, zero_policy="drop")
        assert cleaned.tolist() == [5.0, 10.0, 20.0]

    def test_clamp_policy(self):
        cleaned = prepare_positive(self.DATA, zero_policy="clamp", epsilon=0.5)
        assert cleaned.tolist() == [0.5, 0.5, 5.0, 10.0, 20.0]

    def test_clamp_needs_positive_epsilon(self):
        with pytest.raises(FitError):
            prepare_positive(self.DATA, zero_policy="clamp", epsilon=0.0)

    def test_negative_rejected_always(self):
        with pytest.raises(FitError, match="negative"):
            prepare_positive([-1.0, 2.0], zero_policy="drop")

    def test_unknown_policy(self):
        with pytest.raises(FitError):
            prepare_positive([1.0, 2.0], zero_policy="whatever")

    def test_fit_all_clamp_matches_paper_flow(self):
        # Interarrivals with zeros (Figure 6(c)) still produce a ranking.
        data = np.concatenate([np.zeros(50), sample(Weibull(0.7, 1e5), 500)])
        fits = fit_all(data, zero_policy="clamp")
        assert len(fits) == 4


class TestDegenerateInputs:
    def test_too_small(self):
        with pytest.raises(FitError):
            fit_weibull([1.0])

    def test_constant_sample(self):
        with pytest.raises(FitError):
            fit_weibull([5.0, 5.0, 5.0])
        with pytest.raises(FitError):
            fit_lognormal([5.0, 5.0, 5.0])
        with pytest.raises(FitError):
            fit_normal([5.0, 5.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(FitError):
            fit_exponential([1.0, float("inf")])

    def test_poisson_requires_integers(self):
        with pytest.raises(FitError):
            fit_poisson([1.5, 2.0])

    def test_lognormal_requires_positive(self):
        with pytest.raises(FitError):
            fit_lognormal([0.0, 1.0, 2.0])


class TestFitResultMetadata:
    def test_aic_bic_relationship(self):
        fit = fit_weibull(sample(Weibull(0.8, 10.0), n=1000))
        assert fit.aic == pytest.approx(2 * 2 + 2 * fit.nll)
        assert fit.bic == pytest.approx(2 * np.log(1000) + 2 * fit.nll)
        assert fit.n == 1000

    def test_exponential_has_one_parameter(self):
        fit = fit_exponential(sample(Exponential(10.0), n=100))
        assert fit.aic == pytest.approx(2 * 1 + 2 * fit.nll)

    def test_ks_in_unit_interval(self):
        fit = fit_gamma(sample(Gamma(2.0, 5.0), n=500))
        assert 0.0 <= fit.ks <= 1.0
        assert fit.ks < 0.1  # true family, large n

    def test_describe_mentions_parameters(self):
        fit = fit_weibull(sample(Weibull(0.7, 10.0), n=200))
        assert "Weibull" in fit.describe()
        assert "nll=" in fit.describe()


@settings(max_examples=25, deadline=None)
@given(
    shape=st.floats(min_value=0.4, max_value=3.0),
    scale=st.floats(min_value=0.1, max_value=1e4),
    seed=st.integers(min_value=0, max_value=100),
)
def test_weibull_newton_always_converges(shape, scale, seed):
    """Property: the Weibull fitter converges to positive parameters
    and beats (or ties) a mis-specified exponential on likelihood."""
    data = sample(Weibull(shape=shape, scale=scale), n=400, seed=seed)
    fit = fit_weibull(data)
    assert fit.distribution.shape > 0
    assert fit.distribution.scale > 0
    exponential = fit_exponential(data)
    assert fit.nll <= exponential.nll + 1e-6
