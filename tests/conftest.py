"""Shared fixtures.

Trace generation is the expensive step (~3 s for the full 22-system
trace), so traces are session-scoped and shared by every test that can
tolerate sharing.  Tests that mutate nothing may use them freely;
FailureTrace is immutable by design.
"""

from __future__ import annotations

import pytest

from repro.synth import GeneratorConfig, TraceGenerator


@pytest.fixture(scope="session")
def full_trace():
    """The full 22-system synthetic LANL trace (seed 1)."""
    return TraceGenerator(seed=1).generate()


@pytest.fixture(scope="session")
def system20_trace():
    """System 20 alone (the paper's reference system for Figures 3/6)."""
    return TraceGenerator(seed=1).generate([20])


@pytest.fixture(scope="session")
def small_trace():
    """A small, fast trace: systems 2 (tiny) and 13 (128-node type F)."""
    return TraceGenerator(seed=5).generate([2, 13])


@pytest.fixture(scope="session")
def plain_config():
    """A generator config with every stochastic extra disabled."""
    return GeneratorConfig(
        diurnal_enabled=False,
        jitter_enabled=False,
        bursts_enabled=False,
        node_sigma=0.0,
    )
