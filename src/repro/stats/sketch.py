"""Mergeable, bounded-memory statistics ("sketches").

The full paper report needs means, C², medians, ECDFs, per-key counts
and per-month rates over traces that never fit in memory.  Each class
here is an *accumulator*: it observes column chunks (NumPy arrays, as
yielded by :meth:`repro.store.reader.ColumnarStore.iter_batches`) in
O(chunk) time and O(1) state, and any two accumulators over disjoint
row sets **merge associatively** into the accumulator over their
union.  That single property is what makes the out-of-core report
work: shards are scanned independently (serially or via
``supervised_map``) and their sketches folded together.

Exact vs approximate
--------------------
* :class:`MomentSketch` — count, sum, mean, M2 (population variance),
  min, max.  Counts/min/max are exact; the float moments use Chan's
  parallel-update formulas, so they equal a single-pass NumPy result
  up to last-ulp summation-order differences.
* :class:`GroupedCounts` / :class:`GroupedSums` — exact per-key
  integer counts / float sums over small categorical key spaces.
* :class:`WindowedCounts` — exact integer counts per fixed-width
  window (the Figure 4 month bins).
* :class:`LogBucketSketch` — a fixed-log-bucket histogram reusing the
  ``repro.obs`` metrics convention (edges at ``10**(k/bpd)``),
  generalized from 4 to a configurable number of buckets per decade.
  Quantiles read from it carry a *pinned* relative error bound,
  :data:`QUANTILE_RELATIVE_ERROR` — the half-bucket geometric width.
* :class:`SampleSketch` — the composite a duration study needs: raw
  moments, exact non-positive count, and clamped value/log moments
  plus the histogram (mirroring ``prepare_positive(zero_policy=
  "clamp")``).

All sketches are plain-attribute objects (picklable across the
``supervised_map`` process boundary) and support ``to_dict`` /
``from_dict`` for JSON transport.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.errors import DegenerateSampleError, DegenerateStatisticError

__all__ = [
    "BUCKETS_PER_DECADE",
    "QUANTILE_RELATIVE_ERROR",
    "MomentSketch",
    "LogBucketSketch",
    "GroupedCounts",
    "GroupedSums",
    "WindowedCounts",
    "SampleSketch",
]

#: Default bucket resolution of :class:`LogBucketSketch`.  The obs
#: metrics histograms use 4 buckets per decade; quantile reads need
#: finer resolution, so the sketch defaults to 64 (a ~1.8% relative
#: error bound) while keeping the same edge convention.
BUCKETS_PER_DECADE = 64

#: Decade span of the default bucket grid: 1e-6 .. 1e9 covers
#: sub-second interarrivals through multi-decade spans of seconds.
_MIN_DECADE = -6
_MAX_DECADE = 9

#: Pinned relative error of a quantile read from the default sketch:
#: a value is off by at most half a bucket geometrically, i.e. a
#: factor of ``10**(1/(2*bpd))``.
QUANTILE_RELATIVE_ERROR = 10.0 ** (1.0 / (2.0 * BUCKETS_PER_DECADE)) - 1.0

_EDGES_CACHE: Dict[int, np.ndarray] = {}


def _bucket_edges(buckets_per_decade: int) -> np.ndarray:
    """Bucket edges ``10**(k/bpd)``, mirroring ``repro.obs.metrics``.

    The metrics registry uses ``[10.0 ** (k / 4.0) for k in
    range(-24, 37)]``; this is the same grid at configurable
    resolution and a wider decade span.
    """
    edges = _EDGES_CACHE.get(buckets_per_decade)
    if edges is None:
        exponents = np.arange(
            _MIN_DECADE * buckets_per_decade,
            _MAX_DECADE * buckets_per_decade + 1,
            dtype=float,
        )
        edges = 10.0 ** (exponents / buckets_per_decade)
        edges.flags.writeable = False
        _EDGES_CACHE[buckets_per_decade] = edges
    return edges


class MomentSketch:
    """Mergeable count / sum / mean / M2 / min / max accumulator.

    Means and variances follow the package-wide population (``ddof=0``)
    convention.  ``merge`` uses Chan's parallel combination of the
    central second moments, so the merged sketch agrees with a
    single-pass accumulation up to float summation order.
    """

    __slots__ = ("count", "total", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, values: np.ndarray) -> None:
        """Fold a chunk of observations into the sketch (vectorized)."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        if not np.all(np.isfinite(values)):
            raise ValueError("sketch observed non-finite values")
        n = int(values.size)
        chunk_mean = float(np.mean(values))
        chunk_m2 = float(np.var(values)) * n  # ddof=0: MLE convention
        self._combine(n, float(np.sum(values)), chunk_mean, chunk_m2,
                      float(np.min(values)), float(np.max(values)))

    def merge(self, other: "MomentSketch") -> None:
        """Fold another sketch (over disjoint rows) into this one."""
        if other.count == 0:
            return
        self._combine(other.count, other.total, other.mean, other.m2,
                      other.minimum, other.maximum)

    def _combine(self, n: int, total: float, mean: float, m2: float,
                 minimum: float, maximum: float) -> None:
        if self.count == 0:
            self.count, self.total, self.mean, self.m2 = n, total, mean, m2
            self.minimum, self.maximum = minimum, maximum
            return
        merged = self.count + n
        delta = mean - self.mean
        self.m2 += m2 + delta * delta * self.count * n / merged
        self.mean += delta * n / merged
        self.count = merged
        self.total += total
        self.minimum = min(self.minimum, minimum)
        self.maximum = max(self.maximum, maximum)

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``)."""
        if self.count == 0:
            raise DegenerateSampleError("variance of an empty sketch")
        return max(self.m2 / self.count, 0.0)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def squared_cv(self) -> float:
        """Squared coefficient of variation, variance / mean²."""
        if self.mean == 0:
            raise DegenerateStatisticError(
                "C^2 undefined for zero-mean sample"
            )
        return self.variance / self.mean**2

    def copy(self) -> "MomentSketch":
        clone = MomentSketch()
        clone.merge(self)
        return clone

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "m2": self.m2,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MomentSketch":
        sketch = cls()
        sketch.count = int(payload["count"])
        sketch.total = float(payload["total"])
        sketch.mean = float(payload["mean"])
        sketch.m2 = float(payload["m2"])
        if sketch.count:
            sketch.minimum = float(payload["min"])
            sketch.maximum = float(payload["max"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MomentSketch(n={self.count}, mean={self.mean:.4g})"


class LogBucketSketch:
    """Mergeable fixed-log-bucket histogram with quantile/ECDF reads.

    Buckets follow the ``repro.obs`` convention (``bisect_right`` over
    the edge table): bucket *i* (for ``1 <= i <= len(edges)``) holds
    values in ``[edges[i-1], edges[i])``; index 0 is the underflow
    bucket (values below ``edges[0]``, including zeros) and index
    ``len(edges)`` the overflow bucket.  Exact sample min/max are
    tracked alongside, so quantile reads clip into the observed range.
    """

    __slots__ = ("buckets_per_decade", "counts", "minimum", "maximum")

    def __init__(self, buckets_per_decade: int = BUCKETS_PER_DECADE) -> None:
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.buckets_per_decade = int(buckets_per_decade)
        self.counts = np.zeros(
            _bucket_edges(self.buckets_per_decade).size + 1, dtype=np.int64
        )
        self.minimum = math.inf
        self.maximum = -math.inf

    @property
    def edges(self) -> np.ndarray:
        return _bucket_edges(self.buckets_per_decade)

    @property
    def count(self) -> int:
        """Total observations."""
        return int(self.counts.sum())

    @property
    def relative_error(self) -> float:
        """Pinned relative error bound of quantile reads."""
        return 10.0 ** (1.0 / (2.0 * self.buckets_per_decade)) - 1.0

    def observe(self, values: np.ndarray) -> None:
        """Fold a chunk of non-negative observations into the sketch."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        if not np.all(np.isfinite(values)):
            raise ValueError("sketch observed non-finite values")
        if np.any(values < 0):
            raise ValueError("log-bucket sketch requires non-negative values")
        edges = self.edges
        # side="right" is bisect_right — the obs histogram bucketing:
        # [edges[i-1], edges[i]) maps to index i.
        indices = np.searchsorted(edges, values, side="right")
        self.counts += np.bincount(indices, minlength=self.counts.size)
        self.minimum = min(self.minimum, float(np.min(values)))
        self.maximum = max(self.maximum, float(np.max(values)))

    def merge(self, other: "LogBucketSketch") -> None:
        """Fold another sketch (same resolution) into this one."""
        if other.buckets_per_decade != self.buckets_per_decade:
            raise ValueError(
                "cannot merge sketches with different resolutions: "
                f"{self.buckets_per_decade} != {other.buckets_per_decade}"
            )
        self.counts += other.counts
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def _bucket_values(self) -> np.ndarray:
        """Representative value per bucket (geometric midpoints)."""
        edges = self.edges
        values = np.empty(self.counts.size, dtype=float)
        values[0] = edges[0]
        values[1:-1] = np.sqrt(edges[:-1] * edges[1:])
        values[-1] = edges[-1]
        if math.isfinite(self.minimum):
            np.clip(values, self.minimum, self.maximum, out=values)
        return values

    def representatives(self) -> Tuple[np.ndarray, np.ndarray]:
        """(values, counts) of the non-empty buckets, ascending.

        The weighted sample these pairs describe stands in for the
        original data in ECDF/KS computations: each original value is
        represented within :attr:`relative_error`.
        """
        occupied = np.nonzero(self.counts)[0]
        return self._bucket_values()[occupied], self.counts[occupied]

    def value_at_rank(self, rank: float) -> float:
        """The value at a (possibly fractional) order-statistic rank.

        Mirrors NumPy's linear quantile interpolation over the bucket
        representatives; ``rank`` runs from 0 to ``count - 1``.
        """
        total = self.count
        if total == 0:
            raise DegenerateSampleError("quantile of an empty sketch")
        rank = min(max(rank, 0.0), total - 1.0)
        values, counts = self.representatives()
        cumulative = np.cumsum(counts)
        lower = int(math.floor(rank))
        upper = int(math.ceil(rank))
        lo_value = float(values[np.searchsorted(cumulative, lower, side="right")])
        if upper == lower:
            return lo_value
        hi_value = float(values[np.searchsorted(cumulative, upper, side="right")])
        fraction = rank - lower
        return lo_value + (hi_value - lo_value) * fraction

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (NumPy ``linear`` interpolation semantics)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        return self.value_at_rank(q * (self.count - 1))

    @property
    def median(self) -> float:
        """The sketched median (relative error ≤ :attr:`relative_error`)."""
        return self.quantile(0.5)

    def copy(self) -> "LogBucketSketch":
        clone = LogBucketSketch(self.buckets_per_decade)
        clone.merge(self)
        return clone

    def to_dict(self) -> dict:
        occupied = np.nonzero(self.counts)[0]
        return {
            "buckets_per_decade": self.buckets_per_decade,
            "buckets": {
                str(int(i)): int(self.counts[i]) for i in occupied
            },
            "min": None if not math.isfinite(self.minimum) else self.minimum,
            "max": None if not math.isfinite(self.maximum) else self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LogBucketSketch":
        sketch = cls(int(payload["buckets_per_decade"]))
        for index, count in payload["buckets"].items():
            sketch.counts[int(index)] = int(count)
        if payload["min"] is not None:
            sketch.minimum = float(payload["min"])
            sketch.maximum = float(payload["max"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogBucketSketch(n={self.count}, "
            f"bpd={self.buckets_per_decade})"
        )


class GroupedCounts:
    """Exact mergeable integer counts per (small-cardinality) key.

    Keys are ints or tuples of ints — system ids, cause codes,
    ``(system, cause)`` pairs, node ids.  Updates are vectorized via
    ``np.unique``; merging adds per key.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[tuple, int] = {}

    def observe(self, *key_columns: np.ndarray) -> None:
        """Count one row per position across the given key columns."""
        if not key_columns:
            raise ValueError("need at least one key column")
        stacked = np.stack(
            [np.asarray(column, dtype=np.int64) for column in key_columns]
        )
        if stacked.shape[1] == 0:
            return
        keys, counts = np.unique(stacked, axis=1, return_counts=True)
        for column, count in zip(keys.T, counts):
            key = tuple(int(part) for part in column)
            self.counts[key] = self.counts.get(key, 0) + int(count)

    def merge(self, other: "GroupedCounts") -> None:
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count

    def get(self, *key: int) -> int:
        """The count for a key (0 when never observed)."""
        return self.counts.get(tuple(int(part) for part in key), 0)

    def total(self) -> int:
        return sum(self.counts.values())

    def copy(self) -> "GroupedCounts":
        clone = GroupedCounts()
        clone.counts = dict(self.counts)
        return clone

    def to_dict(self) -> dict:
        return {
            ",".join(str(part) for part in key): count
            for key, count in sorted(self.counts.items())
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GroupedCounts":
        grouped = cls()
        for key, count in payload.items():
            grouped.counts[tuple(int(p) for p in key.split(","))] = int(count)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GroupedCounts({len(self.counts)} keys)"


class GroupedSums:
    """Exact-per-key mergeable float sums (e.g. downtime per cause).

    Sums are exact in the counting sense — every row contributes once —
    while the float additions follow chunk order, so totals agree with
    a sequential pass up to last-ulp rounding.
    """

    __slots__ = ("sums",)

    def __init__(self) -> None:
        self.sums: Dict[tuple, float] = {}

    def observe(self, weights: np.ndarray, *key_columns: np.ndarray) -> None:
        """Add ``weights[i]`` to the key at each row ``i``."""
        if not key_columns:
            raise ValueError("need at least one key column")
        weights = np.asarray(weights, dtype=float)
        stacked = np.stack(
            [np.asarray(column, dtype=np.int64) for column in key_columns]
        )
        if stacked.shape[1] == 0:
            return
        keys, inverse = np.unique(stacked, axis=1, return_inverse=True)
        totals = np.bincount(
            inverse.ravel(), weights=weights, minlength=keys.shape[1]
        )
        for column, total in zip(keys.T, totals):
            key = tuple(int(part) for part in column)
            self.sums[key] = self.sums.get(key, 0.0) + float(total)

    def merge(self, other: "GroupedSums") -> None:
        for key, total in other.sums.items():
            self.sums[key] = self.sums.get(key, 0.0) + total

    def get(self, *key: int) -> float:
        return self.sums.get(tuple(int(part) for part in key), 0.0)

    def copy(self) -> "GroupedSums":
        clone = GroupedSums()
        clone.sums = dict(self.sums)
        return clone

    def to_dict(self) -> dict:
        return {
            ",".join(str(part) for part in key): total
            for key, total in sorted(self.sums.items())
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GroupedSums":
        grouped = cls()
        for key, total in payload.items():
            grouped.sums[tuple(int(p) for p in key.split(","))] = float(total)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GroupedSums({len(self.sums)} keys)"


class WindowedCounts:
    """Exact mergeable counts per fixed-width time window.

    The Figure 4 accumulator: ``origin`` is a system's production
    start, ``width`` one paper month, and events past the last window
    clamp into it — mirroring
    :func:`repro.analysis.lifecycle.monthly_failures`.  Events before
    the origin raise, as :func:`repro.records.timeutils.month_index`
    does.
    """

    __slots__ = ("origin", "width", "counts")

    def __init__(self, origin: float, width: float, n_windows: int) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if n_windows < 1:
            raise ValueError(f"need at least one window, got {n_windows}")
        self.origin = float(origin)
        self.width = float(width)
        self.counts = np.zeros(int(n_windows), dtype=np.int64)

    @property
    def n_windows(self) -> int:
        return int(self.counts.size)

    def observe(self, times: np.ndarray) -> None:
        """Count events into their windows (vectorized)."""
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        deltas = times - self.origin
        if np.any(deltas < 0):
            worst = float(np.min(times))
            raise ValueError(f"time {worst} precedes origin {self.origin}")
        indices = np.minimum(
            (deltas // self.width).astype(np.int64), self.n_windows - 1
        )
        self.counts += np.bincount(indices, minlength=self.n_windows)

    def merge(self, other: "WindowedCounts") -> None:
        if (other.origin != self.origin or other.width != self.width
                or other.n_windows != self.n_windows):
            raise ValueError("cannot merge windowed counts with "
                             "different origins, widths or window counts")
        self.counts += other.counts

    def total(self) -> int:
        return int(self.counts.sum())

    def copy(self) -> "WindowedCounts":
        clone = WindowedCounts(self.origin, self.width, self.n_windows)
        clone.counts = self.counts.copy()
        return clone

    def to_dict(self) -> dict:
        return {
            "origin": self.origin,
            "width": self.width,
            "counts": [int(c) for c in self.counts],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowedCounts":
        counts = payload["counts"]
        windowed = cls(payload["origin"], payload["width"], len(counts))
        windowed.counts = np.asarray(counts, dtype=np.int64)
        return windowed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WindowedCounts({self.n_windows} windows)"


class SampleSketch:
    """The composite sketch a duration study consumes.

    Holds, for one stream of non-negative durations:

    * ``raw`` — moments of the values as observed (zeros included);
    * ``nonpositive`` — exact count of values ``<= 0``;
    * ``clamped`` — moments after ``prepare_positive(zero_policy=
      "clamp", epsilon=...)`` clamping;
    * ``log_clamped`` — moments of ``log`` of the clamped values
      (the lognormal/gamma/Weibull sufficient statistics);
    * ``histogram`` — the clamped values' log-bucket histogram
      (quantiles, ECDF, Weibull profile sums).

    ``clamp_epsilon`` matches the analysis that consumes the sketch:
    1.0 s for interarrival gaps, 0.1 min for repair times.
    """

    __slots__ = ("clamp_epsilon", "raw", "nonpositive", "clamped",
                 "log_clamped", "histogram")

    def __init__(
        self,
        clamp_epsilon: float = 1.0,
        buckets_per_decade: int = BUCKETS_PER_DECADE,
    ) -> None:
        if clamp_epsilon <= 0:
            raise ValueError(
                f"clamp_epsilon must be positive, got {clamp_epsilon}"
            )
        self.clamp_epsilon = float(clamp_epsilon)
        self.raw = MomentSketch()
        self.nonpositive = 0
        self.clamped = MomentSketch()
        self.log_clamped = MomentSketch()
        self.histogram = LogBucketSketch(buckets_per_decade)

    @property
    def count(self) -> int:
        return self.raw.count

    @property
    def zero_fraction(self) -> float:
        """Exact fraction of non-positive observations."""
        if self.raw.count == 0:
            raise DegenerateSampleError("zero fraction of an empty sketch")
        return self.nonpositive / self.raw.count

    def observe(self, values: np.ndarray) -> None:
        """Fold a chunk of non-negative durations into the sketch."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        if np.any(values < 0):
            raise ValueError("sample sketch requires non-negative values")
        self.raw.observe(values)
        nonpositive = values <= 0
        self.nonpositive += int(np.count_nonzero(nonpositive))
        clamped = np.where(nonpositive, self.clamp_epsilon, values)
        self.clamped.observe(clamped)
        self.log_clamped.observe(np.log(clamped))
        self.histogram.observe(clamped)

    def merge(self, other: "SampleSketch") -> None:
        if other.clamp_epsilon != self.clamp_epsilon:
            raise ValueError(
                "cannot merge sample sketches with different clamp "
                f"epsilons: {self.clamp_epsilon} != {other.clamp_epsilon}"
            )
        self.raw.merge(other.raw)
        self.nonpositive += other.nonpositive
        self.clamped.merge(other.clamped)
        self.log_clamped.merge(other.log_clamped)
        self.histogram.merge(other.histogram)

    def copy(self) -> "SampleSketch":
        clone = SampleSketch(
            self.clamp_epsilon, self.histogram.buckets_per_decade
        )
        clone.merge(self)
        return clone

    def to_dict(self) -> dict:
        return {
            "clamp_epsilon": self.clamp_epsilon,
            "raw": self.raw.to_dict(),
            "nonpositive": self.nonpositive,
            "clamped": self.clamped.to_dict(),
            "log_clamped": self.log_clamped.to_dict(),
            "histogram": self.histogram.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SampleSketch":
        sketch = cls(
            float(payload["clamp_epsilon"]),
            int(payload["histogram"]["buckets_per_decade"]),
        )
        sketch.raw = MomentSketch.from_dict(payload["raw"])
        sketch.nonpositive = int(payload["nonpositive"])
        sketch.clamped = MomentSketch.from_dict(payload["clamped"])
        sketch.log_clamped = MomentSketch.from_dict(payload["log_clamped"])
        sketch.histogram = LogBucketSketch.from_dict(payload["histogram"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SampleSketch(n={self.count}, "
            f"eps={self.clamp_epsilon})"
        )
