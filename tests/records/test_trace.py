"""Tests for FailureTrace."""

import numpy as np
import pytest

from repro.records.record import FailureRecord, RootCause, Workload
from repro.records.system import HardwareType
from repro.records.trace import FailureTrace


def record(start, system=20, node=0, cause=RootCause.HARDWARE,
           workload=Workload.COMPUTE, duration=600.0):
    return FailureRecord(
        start_time=start, end_time=start + duration, system_id=system,
        node_id=node, root_cause=cause, workload=workload,
    )


@pytest.fixture
def trace():
    return FailureTrace(
        [
            record(3000.0, system=20, node=1, cause=RootCause.SOFTWARE),
            record(1000.0, system=20, node=0),
            record(2000.0, system=19, node=2, cause=RootCause.NETWORK, duration=120.0),
            record(2000.0, system=20, node=5, workload=Workload.GRAPHICS),
            record(9000.0, system=5, node=7, cause=RootCause.HUMAN),
        ]
    )


class TestBasics:
    def test_sorted_on_construction(self, trace):
        starts = [r.start_time for r in trace]
        assert starts == sorted(starts)

    def test_len_and_indexing(self, trace):
        assert len(trace) == 5
        assert trace[0].start_time == 1000.0

    def test_start_times_vector(self, trace):
        assert trace.start_times().tolist() == [1000.0, 2000.0, 2000.0, 3000.0, 9000.0]

    def test_repair_minutes(self, trace):
        assert trace.repair_minutes()[0] == pytest.approx(10.0)

    def test_interarrivals_include_zero_gaps(self, trace):
        gaps = trace.interarrival_times()
        assert len(gaps) == 4
        assert gaps[0] == 1000.0
        assert gaps[1] == 0.0  # two records at t=2000

    def test_interarrivals_of_tiny_trace(self):
        assert len(FailureTrace([record(1.0)]).interarrival_times()) == 0
        assert len(FailureTrace([]).interarrival_times()) == 0


class TestFilters:
    def test_filter_systems(self, trace):
        sub = trace.filter_systems([20])
        assert len(sub) == 3
        assert all(r.system_id == 20 for r in sub)

    def test_filter_nodes(self, trace):
        assert len(trace.filter_nodes([0, 1])) == 2

    def test_filter_hardware(self, trace):
        g_records = trace.filter_hardware(HardwareType.G)
        assert {r.system_id for r in g_records} == {19, 20}
        assert len(trace.filter_hardware(HardwareType.E)) == 1

    def test_filter_cause(self, trace):
        assert len(trace.filter_cause(RootCause.SOFTWARE)) == 1

    def test_filter_workload(self, trace):
        assert len(trace.filter_workload(Workload.GRAPHICS)) == 1

    def test_between_half_open(self, trace):
        window = trace.between(1000.0, 2000.0)
        assert len(window) == 1  # start inclusive, end exclusive

    def test_between_empty_window_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.between(5.0, 5.0)

    def test_generic_filter(self, trace):
        long_repairs = trace.filter(lambda r: r.repair_time > 300.0)
        assert len(long_repairs) == 4

    def test_filters_preserve_inventory(self, trace):
        assert trace.filter_systems([20]).systems is not None
        assert trace.filter_systems([20]).data_end == trace.data_end

    def test_merge(self, trace):
        extra = FailureTrace([record(4000.0, system=2)])
        merged = trace.merge(extra)
        assert len(merged) == 6
        starts = [r.start_time for r in merged]
        assert starts == sorted(starts)


class TestGrouping:
    def test_by_system(self, trace):
        groups = trace.by_system()
        assert set(groups.keys()) == {5, 19, 20}
        assert len(groups[20]) == 3

    def test_by_node(self, trace):
        groups = trace.by_node()
        assert (20, 0) in groups
        assert len(groups[(19, 2)]) == 1

    def test_counts_by_cause(self, trace):
        counts = trace.counts_by_cause()
        assert counts[RootCause.HARDWARE] == 2
        assert counts[RootCause.SOFTWARE] == 1
        assert RootCause.UNKNOWN not in counts

    def test_downtime_by_cause(self, trace):
        downtime = trace.downtime_by_cause()
        assert downtime[RootCause.NETWORK] == pytest.approx(120.0)
        assert downtime[RootCause.HARDWARE] == pytest.approx(1200.0)

    def test_failures_per_node_includes_zero_nodes(self, trace):
        counts = trace.failures_per_node(20)
        assert counts[0] == 1
        assert counts[1] == 1
        assert counts[5] == 1
        assert counts[10] == 0
        assert len(counts) == 49  # system 20 has 49 nodes

    def test_failures_per_node_unknown_system(self, trace):
        with pytest.raises(KeyError):
            trace.failures_per_node(99)
