"""The paper's analyses (Sections 4-6).

One module per study, each consuming a
:class:`~repro.records.trace.FailureTrace` (synthetic or loaded from
the real CFDR CSV) and returning plain data structures:

* :mod:`~repro.analysis.rootcause` — root-cause breakdowns (Figure 1,
  Section 4 details).
* :mod:`~repro.analysis.rates` — failure rates across systems
  (Figure 2).
* :mod:`~repro.analysis.pernode` — failures per node and count-CDF
  fits (Figure 3).
* :mod:`~repro.analysis.lifecycle` — failure rate vs system age
  (Figure 4).
* :mod:`~repro.analysis.periodicity` — hour-of-day / day-of-week
  (Figure 5).
* :mod:`~repro.analysis.interarrival` — time-between-failures studies
  (Figure 6, Section 5.3).
* :mod:`~repro.analysis.repair` — time-to-repair studies (Table 2,
  Figure 7).
* :mod:`~repro.analysis.correlation` — simultaneous failures and
  workload correlation.
* :mod:`~repro.analysis.related` — Table 3 (related studies) and where
  our measurements fall in the literature's ranges.
* :mod:`~repro.analysis.summary` — everything at once.
"""

from repro.analysis.rootcause import (
    CauseBreakdown,
    breakdown_by_hardware_type,
    downtime_breakdown_by_hardware_type,
    low_level_shares,
    memory_share,
    top_software_cause,
)
from repro.analysis.rates import (
    SystemRate,
    failure_rates,
    normalized_variability,
    rate_size_correlation,
)
from repro.analysis.pernode import (
    NodeCountStudy,
    failures_per_node,
    node_count_study,
    node_share,
)
from repro.analysis.lifecycle import (
    LifecycleCurve,
    classify_lifecycle,
    monthly_failures,
)
from repro.analysis.periodicity import (
    PeriodicityStudy,
    failures_by_hour,
    failures_by_weekday,
    periodicity_study,
)
from repro.analysis.interarrival import (
    InterarrivalStudy,
    interarrival_study,
    node_interarrivals,
    split_eras,
    system_interarrivals,
)
from repro.analysis.repair import (
    RepairByCauseRow,
    repair_by_system,
    repair_fit_study,
    repair_statistics_by_cause,
)
from repro.analysis.correlation import (
    simultaneous_fraction,
    workload_rates,
)
from repro.analysis.availability import (
    SystemAvailability,
    availability_report,
    merge_intervals,
    system_availability,
)
from repro.analysis.burstiness import (
    Burst,
    burst_size_distribution,
    co_failure_ratio,
    extract_bursts,
    index_of_dispersion,
)
from repro.analysis.comparison import MetricComparison, compare_traces, two_sample_ks
from repro.analysis.errors import DegenerateSampleError
from repro.analysis.hazard_study import HazardStudy, hazard_study
from repro.analysis.outliers import NodeOutlier, find_node_outliers
from repro.analysis.outofcore import PaperAccumulator, scan_store
from repro.analysis.related import RELATED_STUDIES, RelatedStudy, literature_ranges
from repro.analysis.summary import PaperSummary, summarize

__all__ = [
    "DegenerateSampleError",
    "CauseBreakdown",
    "breakdown_by_hardware_type",
    "downtime_breakdown_by_hardware_type",
    "low_level_shares",
    "memory_share",
    "top_software_cause",
    "SystemRate",
    "failure_rates",
    "normalized_variability",
    "rate_size_correlation",
    "NodeCountStudy",
    "failures_per_node",
    "node_count_study",
    "node_share",
    "LifecycleCurve",
    "classify_lifecycle",
    "monthly_failures",
    "PeriodicityStudy",
    "failures_by_hour",
    "failures_by_weekday",
    "periodicity_study",
    "InterarrivalStudy",
    "interarrival_study",
    "node_interarrivals",
    "system_interarrivals",
    "split_eras",
    "RepairByCauseRow",
    "repair_statistics_by_cause",
    "repair_fit_study",
    "repair_by_system",
    "simultaneous_fraction",
    "workload_rates",
    "SystemAvailability",
    "system_availability",
    "availability_report",
    "merge_intervals",
    "RELATED_STUDIES",
    "RelatedStudy",
    "literature_ranges",
    "HazardStudy",
    "hazard_study",
    "NodeOutlier",
    "find_node_outliers",
    "PaperAccumulator",
    "scan_store",
    "MetricComparison",
    "compare_traces",
    "two_sample_ks",
    "Burst",
    "extract_bursts",
    "burst_size_distribution",
    "index_of_dispersion",
    "co_failure_ratio",
    "PaperSummary",
    "summarize",
]
