"""Schema, codes, and ColumnBatch encode/decode contracts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.records.codes import (
    CAUSE_CODE,
    CAUSE_VOCAB,
    DETAIL_CODE,
    DETAIL_VOCAB,
    NO_DETAIL,
    WORKLOAD_CODE,
    WORKLOAD_VOCAB,
)
from repro.records.record import (
    FailureRecord,
    LowLevelCause,
    RootCause,
    Workload,
)
from repro.store.schema import (
    COLUMN_DTYPES,
    COLUMN_NAMES,
    COLUMNS,
    ColumnBatch,
    batch_from_records,
    concat_batches,
    empty_batch,
    records_from_batch,
    schema_digest,
)


class TestCodes:
    def test_vocabs_cover_every_enum_member(self):
        assert set(CAUSE_VOCAB) == set(RootCause)
        assert set(DETAIL_VOCAB) == set(LowLevelCause)
        assert set(WORKLOAD_VOCAB) == set(Workload)

    def test_codes_are_dense_and_invertible(self):
        for vocab, codes in (
            (CAUSE_VOCAB, CAUSE_CODE),
            (DETAIL_VOCAB, DETAIL_CODE),
            (WORKLOAD_VOCAB, WORKLOAD_CODE),
        ):
            assert sorted(codes.values()) == list(range(len(vocab)))
            for value, code in codes.items():
                assert vocab[code] is value

    def test_no_detail_sentinel_is_not_a_valid_code(self):
        assert NO_DETAIL not in DETAIL_CODE.values()

    def test_codes_fit_int8(self):
        assert len(DETAIL_VOCAB) < 128
        assert len(CAUSE_VOCAB) < 128
        assert len(WORKLOAD_VOCAB) < 128


class TestSchemaDigest:
    def test_digest_is_stable_across_calls(self):
        assert schema_digest() == schema_digest()

    def test_digest_length_and_charset(self):
        digest = schema_digest()
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_columns_are_little_endian_or_single_byte(self):
        # dtype.str keeps the explicit byte order the schema declares
        # (dtype.byteorder normalizes to "=" on native-endian hosts).
        for name, dtype in COLUMNS:
            assert np.dtype(dtype).str[0] in ("<", "|"), (name, dtype)


class TestColumnBatch:
    def test_rejects_unknown_column(self):
        with pytest.raises(KeyError):
            ColumnBatch({"bogus": np.zeros(3)})

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ColumnBatch(
                {
                    "start_time": np.zeros(3),
                    "end_time": np.zeros(4),
                }
            )

    def test_rejects_empty_mapping_and_2d(self):
        with pytest.raises(ValueError):
            ColumnBatch({})
        with pytest.raises(ValueError):
            ColumnBatch({"start_time": np.zeros((2, 2))})

    def test_coerces_to_schema_dtype(self):
        batch = ColumnBatch({"system_id": [1, 2, 3]})
        assert batch["system_id"].dtype == COLUMN_DTYPES["system_id"]

    def test_names_in_schema_order(self):
        batch = ColumnBatch(
            {"node_id": [1], "start_time": [0.0], "record_id": [5]}
        )
        assert batch.names == ("start_time", "node_id", "record_id")

    def test_slice_and_take(self):
        batch = ColumnBatch({"system_id": [1, 2, 3, 4]})
        assert batch.slice(1, 3)["system_id"].tolist() == [2, 3]
        mask = np.array([True, False, True, False])
        assert batch.take(mask)["system_id"].tolist() == [1, 3]

    def test_concat(self):
        a = ColumnBatch({"system_id": [1, 2]})
        b = ColumnBatch({"system_id": [3]})
        assert concat_batches([a, b])["system_id"].tolist() == [1, 2, 3]
        assert len(concat_batches([])) == 0
        with pytest.raises(ValueError):
            concat_batches([a, ColumnBatch({"node_id": [0]})])

    def test_empty_batch_has_all_columns(self):
        batch = empty_batch()
        assert batch.names == COLUMN_NAMES
        assert len(batch) == 0


class TestRecordRoundTrip:
    def test_round_trip_is_repr_identical(self, small_trace):
        batch = batch_from_records(small_trace.records)
        out = list(records_from_batch(batch))
        assert len(out) == len(small_trace.records)
        for decoded, original in zip(out, small_trace.records):
            assert repr(decoded) == repr(original)

    def test_none_record_id_and_detail_round_trip(self):
        record = FailureRecord(
            start_time=10.5,
            end_time=99.25,
            system_id=3,
            node_id=7,
            root_cause=RootCause.UNKNOWN,
            low_level_cause=None,
            workload=Workload.COMPUTE,
            record_id=None,
        )
        (decoded,) = records_from_batch(batch_from_records([record]))
        assert decoded.record_id is None
        assert decoded.low_level_cause is None
        assert repr(decoded) == repr(record)
