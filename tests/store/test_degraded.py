"""Degraded reads: skipping damaged shards with an honest report."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.store import (
    ColumnarStore,
    StoreError,
    scrub_store,
    store_from_trace,
    summarize_store,
)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory, small_trace):
    root = tmp_path_factory.mktemp("degraded") / "pristine"
    store_from_trace(small_trace, root, shard_rows=100)
    return root


@pytest.fixture()
def damaged(tmp_path, pristine):
    """A store with one deleted column file and one truncated one."""
    root = tmp_path / "damaged"
    shutil.copytree(pristine, root)
    (root / "shards" / "00000-node_id.npy").unlink()
    victim = root / "shards" / "00002-start_time.npy"
    data = victim.read_bytes()
    victim.write_bytes(data[: len(data) // 2])
    return root


class TestRaiseMode:
    def test_default_raises_naming_the_shard(self, damaged):
        store = ColumnarStore(damaged)
        with pytest.raises(StoreError, match="shard 00000 is damaged"):
            list(store.iter_batches())

    def test_error_suggests_the_healing_path(self, damaged):
        with pytest.raises(StoreError, match="repro store scrub"):
            list(ColumnarStore(damaged).iter_records())

    def test_invalid_mode_rejected(self, pristine):
        with pytest.raises(ValueError, match="on_damage"):
            ColumnarStore(pristine, on_damage="ignore")


class TestSkipMode:
    def test_reads_complete_over_healthy_shards(self, damaged, small_trace):
        store = ColumnarStore(damaged, on_damage="skip")
        rows = sum(len(chunk) for chunk in store.iter_batches())
        report = store.degraded
        assert report
        assert sorted(report.shards_skipped) == ["00000", "00002"]
        assert rows + report.rows_skipped == store.manifest.row_count

    def test_rows_skipped_matches_manifest(self, damaged):
        store = ColumnarStore(damaged, on_damage="skip")
        list(store.iter_batches())
        by_name = {s.name: s.rows for s in store.manifest.shards}
        assert store.degraded.rows_skipped == (
            by_name["00000"] + by_name["00002"]
        )

    def test_skips_deduplicated_across_scans(self, damaged):
        store = ColumnarStore(damaged, on_damage="skip")
        list(store.iter_batches())
        list(store.iter_batches())
        assert sorted(store.degraded.shards_skipped) == ["00000", "00002"]

    def test_quarantined_shards_also_skip(self, damaged):
        scrub_store(damaged)
        store = ColumnarStore(damaged, on_damage="skip")
        list(store.iter_batches())
        report = store.degraded
        assert sorted(report.shards_skipped) == ["00000", "00002"]
        assert any("quarantined" in r for r in report.reasons.values())

    def test_coverage_per_system(self, damaged):
        store = ColumnarStore(damaged, on_damage="skip")
        list(store.iter_batches())
        coverage = store.degraded.coverage()
        # shard 00000 is system 2's, shard 00002 is system 13's: both
        # systems lose exactly their skipped shard's rows
        by_system = {}
        for shard in store.manifest.shards:
            system_id = int(shard.stats["system_id"][0])
            total, lost = by_system.get(system_id, (0, 0))
            skipped = shard.name in store.degraded.shards_skipped
            by_system[system_id] = (
                total + shard.rows, lost + (shard.rows if skipped else 0)
            )
        for system_id, (total, lost) in by_system.items():
            assert coverage[system_id] == pytest.approx(
                (total - lost) / total
            )
        assert 0.0 < coverage[2] < 1.0
        assert 0.0 < coverage[13] < 1.0

    def test_report_is_jsonable_and_describes(self, damaged):
        store = ColumnarStore(damaged, on_damage="skip")
        list(store.iter_batches())
        payload = store.degraded.to_dict()
        json.dumps(payload)
        assert payload["shards_skipped"] == ["00000", "00002"]
        assert store.degraded.describe()

    def test_healthy_store_reports_nothing(self, pristine):
        store = ColumnarStore(pristine, on_damage="skip")
        list(store.iter_batches())
        assert not store.degraded
        assert store.degraded.rows_skipped == 0


class TestSummarizeDegraded:
    def test_summary_carries_the_degraded_report(self, damaged):
        store = ColumnarStore(damaged, on_damage="skip")
        summary = summarize_store(store)
        assert summary.degraded is not None
        assert (
            summary.rows + summary.degraded["rows_skipped"]
            == store.manifest.row_count
        )
        assert "DEGRADED" in summary.describe()

    def test_clean_summary_has_no_degraded_section(self, pristine):
        summary = summarize_store(ColumnarStore(pristine, on_damage="skip"))
        assert summary.degraded is None
        assert "DEGRADED" not in summary.describe()
