"""Scaled-inventory throughput benchmarks.

Not a paper artifact — stresses the generator at fleet sizes beyond
Table 1 via :func:`repro.synth.scenario.scale_inventory` and checks
that throughput (records/second) holds up as the node count grows.
The streaming path (``iter_records``) is benched separately because it
is the memory-bounded route for large scaled runs.
"""

from repro.synth import TraceGenerator
from repro.synth.scenario import scaled_lanl_systems

#: Bench a mid-size slice, not all 22 systems: scaled full-inventory
#: runs take tens of seconds and the per-record cost is what matters.
SCALE_SYSTEMS = [2, 13, 20]


def test_generate_scaled_4x(benchmark, bench_seed):
    systems = scaled_lanl_systems(4.0)

    def generate():
        return TraceGenerator(seed=bench_seed, systems=systems).generate(
            SCALE_SYSTEMS
        )

    trace = benchmark(generate)
    assert len(trace) > 10_000


def test_throughput_holds_at_scale(bench_seed):
    """Records/second at 4x the inventory stays within 3x of 1x cost."""
    import time

    def rate(factor):
        systems = scaled_lanl_systems(factor)
        generator = TraceGenerator(seed=bench_seed, systems=systems)
        start = time.perf_counter()
        trace = generator.generate(SCALE_SYSTEMS)
        return len(trace) / (time.perf_counter() - start)

    rate(1.0)  # warm-up: imports, first-call caches
    base = rate(1.0)
    scaled = rate(4.0)
    assert scaled > base / 3.0, (
        f"throughput collapsed at scale: {scaled:.0f} rec/s at 4x "
        f"vs {base:.0f} rec/s at 1x"
    )


def test_streaming_iteration_matches_generate(benchmark, bench_seed):
    systems = scaled_lanl_systems(2.0)
    generator = TraceGenerator(seed=bench_seed, systems=systems)

    def stream():
        count = 0
        for _record in generator.iter_records(SCALE_SYSTEMS):
            count += 1
        return count

    streamed = benchmark(stream)
    assert streamed == len(generator.generate(SCALE_SYSTEMS))
