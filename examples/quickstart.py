#!/usr/bin/env python3
"""Quickstart: generate the LANL trace and reproduce the headline results.

Runs in ~10 seconds and prints:

* the trace size and the systems inventory totals,
* the root-cause breakdown (Figure 1),
* the failure-rate range (Figure 2),
* the time-between-failures fit with its hazard direction (Figure 6),
* the repair-time fit (Figure 7) and Table 2.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro import generate_lanl_trace
from repro.analysis import summarize
from repro.records import RootCause, total_nodes, total_processors
from repro.report import render_table2


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print(f"Generating the synthetic LANL trace (seed {seed}) ...")
    trace = generate_lanl_trace(seed=seed)
    print(
        f"  {len(trace)} failure records across {len(trace.systems)} systems "
        f"({total_nodes()} nodes, {total_processors()} processors)\n"
    )

    summary = summarize(trace)

    print("Root-cause breakdown (all systems):")
    overall = summary.cause_breakdown["All systems"]
    for cause in RootCause:
        print(f"  {cause.value:<12} {overall.percent(cause):5.1f}%")

    low, high = summary.rate_range
    print(f"\nFailure rates: {low:.0f} .. {high:.0f} failures/year across systems")
    print(f"  (the paper reports 17 .. 1159)")

    print("\nTime between failures (system 20, 2000-2005):")
    tbf = summary.tbf_system_late
    for fit in tbf.fits:
        print("  " + fit.describe())
    print(
        f"  best: {tbf.best.name}, Weibull shape {tbf.weibull_shape:.2f} "
        f"=> hazard {tbf.hazard} (paper: Weibull 0.78, decreasing)"
    )

    print("\nRepair times:")
    for fit in summary.repair_fits:
        print("  " + fit.describe())
    print(f"  best: {summary.repair_best_fit} (paper: lognormal)\n")

    print(render_table2(trace))
    print(
        "\nPeriodicity: peak/trough "
        f"{summary.periodicity.peak_trough_ratio:.2f}, weekday/weekend "
        f"{summary.periodicity.weekday_weekend_ratio:.2f} (paper: ~2 and ~2)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
