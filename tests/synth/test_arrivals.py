"""Tests for the modulated Weibull arrival sampler."""

import numpy as np
import pytest

from repro.records.timeutils import SECONDS_PER_DAY, SECONDS_PER_YEAR
from repro.stats.fitting import fit_weibull
from repro.synth.arrivals import ModulatedWeibullArrivals
from repro.synth.diurnal import WeeklyProfile


def make_sampler(rate_per_year=50.0, shape=0.85, years=10.0,
                 lifecycle=lambda age: 1.0, profile=None):
    return ModulatedWeibullArrivals(
        base_rate=rate_per_year / SECONDS_PER_YEAR,
        shape=shape,
        lifecycle=lifecycle,
        profile=profile if profile is not None else WeeklyProfile(enabled=False),
        start=0.0,
        end=years * SECONDS_PER_YEAR,
    )


def generator(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestBasics:
    def test_events_sorted_and_in_window(self):
        sampler = make_sampler()
        events = sampler.sample(generator())
        assert events == sorted(events)
        assert all(0.0 <= t < 10 * SECONDS_PER_YEAR for t in events)

    def test_zero_rate_yields_nothing(self):
        sampler = make_sampler(rate_per_year=0.0)
        assert sampler.sample(generator()) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            make_sampler(rate_per_year=-1.0)
        with pytest.raises(ValueError):
            make_sampler(shape=0.0)
        with pytest.raises(ValueError):
            ModulatedWeibullArrivals(
                base_rate=1.0, shape=0.8, lifecycle=lambda a: 1.0,
                profile=WeeklyProfile(enabled=False), start=10.0, end=5.0,
            )

    def test_nonpositive_lifecycle_rejected_at_sampling(self):
        sampler = make_sampler(lifecycle=lambda age: 0.0)
        with pytest.raises(ValueError):
            sampler.sample(generator())


class TestRateCalibration:
    def test_equilibrium_start_gives_unbiased_counts(self):
        """The stationary start removes the DFR renewal transient: the
        mean count over many replicas must match base_rate * window."""
        sampler = make_sampler(rate_per_year=20.0, years=5.0, shape=0.7)
        counts = [len(sampler.sample(generator(seed))) for seed in range(300)]
        assert np.mean(counts) == pytest.approx(100.0, rel=0.06)

    def test_expected_count_helper(self):
        sampler = make_sampler(rate_per_year=30.0, years=4.0)
        assert sampler.expected_count() == pytest.approx(120.0, rel=0.01)

    def test_lifecycle_scales_counts(self):
        flat = make_sampler(rate_per_year=40.0, years=6.0)
        doubled = make_sampler(
            rate_per_year=40.0, years=6.0, lifecycle=lambda age: 2.0
        )
        flat_counts = [len(flat.sample(generator(s))) for s in range(60)]
        doubled_counts = [len(doubled.sample(generator(s + 1000))) for s in range(60)]
        assert np.mean(doubled_counts) == pytest.approx(2 * np.mean(flat_counts), rel=0.1)

    def test_fitted_shape_recovers_base_shape_without_modulation(self):
        sampler = make_sampler(rate_per_year=3000.0, years=10.0, shape=0.7)
        events = np.array(sampler.sample(generator(11)))
        gaps = np.diff(events)
        fit = fit_weibull(gaps[gaps > 0])
        assert fit.distribution.shape == pytest.approx(0.7, abs=0.05)


class TestModulationEffects:
    def test_diurnal_concentrates_failures_in_peak_hours(self):
        profile = WeeklyProfile(enabled=True)
        sampler = make_sampler(rate_per_year=2000.0, years=8.0, profile=profile)
        events = sampler.sample(generator(2))
        hours = (np.array(events) % SECONDS_PER_DAY) // 3600
        day = np.sum((hours >= 10) & (hours < 18))
        night = np.sum((hours >= 22) | (hours < 6))
        assert day > 1.4 * night

    def test_decaying_lifecycle_front_loads_failures(self):
        sampler = make_sampler(
            rate_per_year=500.0, years=10.0,
            lifecycle=lambda age: 3.0 if age < SECONDS_PER_YEAR else 1.0,
        )
        events = np.array(sampler.sample(generator(3)))
        first_year = np.sum(events < SECONDS_PER_YEAR)
        later_mean = np.sum(events >= SECONDS_PER_YEAR) / 9.0
        assert first_year > 2.0 * later_mean

    def test_modulation_preserves_total_rate(self):
        # The weekly profile has mean 1, so it must not change counts.
        flat = make_sampler(rate_per_year=100.0, years=5.0)
        modulated = make_sampler(
            rate_per_year=100.0, years=5.0, profile=WeeklyProfile(enabled=True)
        )
        flat_counts = [len(flat.sample(generator(s))) for s in range(80)]
        mod_counts = [len(modulated.sample(generator(s + 500))) for s in range(80)]
        assert np.mean(mod_counts) == pytest.approx(np.mean(flat_counts), rel=0.07)
