"""CLI robustness: error boundary, --verbose, supervised generate flags.

Every subcommand must exit nonzero with a one-line friendly error on an
uncaught exception (never a traceback); ``--verbose`` re-raises for
debugging.  The generate command's resilience surface — --run-dir,
--resume, --chaos — is drilled end to end through ``main()``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestErrorBoundary:
    def test_missing_trace_file_is_one_line_error(self, capsys):
        code = main(["summary", "/nonexistent/trace.csv"])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_error_names_exception_type(self, capsys):
        code = main(["report", "/nonexistent/trace.csv", "--artifact", "table2"])
        assert code == 1
        assert "FileNotFoundError" in capsys.readouterr().err

    def test_verbose_reraises(self):
        with pytest.raises(FileNotFoundError):
            main(["--verbose", "summary", "/nonexistent/trace.csv"])

    def test_verbose_after_subcommand(self):
        with pytest.raises(FileNotFoundError):
            main(["summary", "/nonexistent/trace.csv", "--verbose"])

    def test_unknown_system_id_friendly(self, capsys):
        code = main(["generate", "--systems", "2,99", "--out", "/dev/null"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "99" in err


class TestSupervisedGenerateFlags:
    def test_resume_requires_run_dir(self):
        with pytest.raises(SystemExit, match="--run-dir"):
            main(["generate", "--resume", "--out", "/dev/null"])

    def test_run_dir_writes_journal_and_report(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        run_dir = tmp_path / "run"
        code = main(
            ["generate", "--seed", "5", "--systems", "2,13",
             "--run-dir", str(run_dir), "--out", str(out)]
        )
        assert code == 0
        assert (run_dir / "meta.json").exists()
        assert (run_dir / "journal.jsonl").exists()
        report = json.loads((run_dir / "run_report.json").read_text())
        assert report["summary"]["total"] == 2
        assert capsys.readouterr().out.count("run_report.json") == 1

    def test_resume_completes_without_regenerating(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        first = tmp_path / "first.csv"
        main(["generate", "--seed", "5", "--systems", "2,13",
              "--run-dir", str(run_dir), "--out", str(first)])
        capsys.readouterr()
        second = tmp_path / "second.csv"
        code = main(
            ["generate", "--seed", "5", "--systems", "2,13", "--resume",
             "--run-dir", str(run_dir), "--out", str(second)]
        )
        assert code == 0
        assert "resumed 2 shard(s)" in capsys.readouterr().out
        assert first.read_text() == second.read_text()

    def test_resume_with_different_seed_refused(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        main(["generate", "--seed", "5", "--systems", "2",
              "--run-dir", str(run_dir), "--out", str(tmp_path / "a.csv")])
        code = main(
            ["generate", "--seed", "6", "--systems", "2", "--resume",
             "--run-dir", str(run_dir), "--out", str(tmp_path / "b.csv")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "error: JournalError" in err
        assert "seed" in err

    def test_chaos_drill_output_identical_to_clean_run(self, tmp_path, capsys):
        clean = tmp_path / "clean.csv"
        main(["generate", "--seed", "5", "--systems", "2,13",
              "--out", str(clean)])
        chaotic = tmp_path / "chaotic.csv"
        run_dir = tmp_path / "run"
        code = main(
            ["generate", "--seed", "5", "--systems", "2,13", "--workers", "2",
             "--chaos", "kill-worker:1", "--run-dir", str(run_dir),
             "--out", str(chaotic)]
        )
        assert code == 0
        assert clean.read_text() == chaotic.read_text()
        report = json.loads((run_dir / "run_report.json").read_text())
        crashes = [
            attempt
            for shard in report["shards"]
            for attempt in shard["attempts"]
            if attempt["outcome"] == "crash"
        ]
        assert crashes, "the injected kill must be recorded in the report"

    def test_bad_chaos_spec_rejected(self, capsys):
        code = main(
            ["generate", "--systems", "2", "--chaos", "set-on-fire",
             "--out", "/dev/null"]
        )
        assert code == 1
        assert "error: ValueError" in capsys.readouterr().err

    def test_scalar_engine_matches_vectorized(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--seed", "5", "--systems", "2",
              "--engine", "vectorized", "--out", str(a)])
        main(["generate", "--seed", "5", "--systems", "2",
              "--engine", "scalar", "--out", str(b)])
        assert a.read_text() == b.read_text()
