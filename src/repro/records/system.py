"""System-level configuration schema for the Table 1 inventory."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.records.node import NodeCategory, NodeConfig
from repro.records.timeutils import production_window

__all__ = ["HardwareType", "HardwareArchitecture", "SystemConfig"]


class HardwareArchitecture(enum.Enum):
    """Node architecture: SMP (systems 1-18) or NUMA (systems 19-22)."""

    SMP = "smp"
    NUMA = "numa"

    def __str__(self) -> str:
        return self.value


class HardwareType(enum.Enum):
    """Anonymized processor/memory chip model, A-H (Table 1)."""

    A = "A"
    B = "B"
    C = "C"
    D = "D"
    E = "E"
    F = "F"
    G = "G"
    H = "H"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SystemConfig:
    """One of the 22 LANL systems (left half of Table 1 + categories).

    Attributes
    ----------
    system_id:
        The paper's system ID, 1-22.
    hardware_type:
        Anonymized chip model A-H.
    architecture:
        SMP or NUMA.
    categories:
        Node categories (right half of Table 1), in node-ID order: the
        first category owns node IDs ``0 .. count-1``, and so on.
    """

    system_id: int
    hardware_type: HardwareType
    architecture: HardwareArchitecture
    categories: Tuple[NodeCategory, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 1 <= self.system_id <= 22:
            raise ValueError(f"system_id must be in 1..22, got {self.system_id}")
        if not self.categories:
            raise ValueError(f"system {self.system_id} has no node categories")

    @property
    def node_count(self) -> int:
        """Total nodes across all categories."""
        return sum(category.node_count for category in self.categories)

    @property
    def processor_count(self) -> int:
        """Total processors across all categories."""
        return sum(category.total_processors for category in self.categories)

    @property
    def production_start_text(self) -> str:
        """Earliest category production-start string (for display)."""
        return self.categories[0].production_start

    def expand_nodes(self, data_start: float, data_end: float) -> List[NodeConfig]:
        """Expand categories into concrete :class:`NodeConfig` objects.

        Node IDs are assigned in category order.  Production windows are
        resolved against ``[data_start, data_end)``.
        """
        nodes: List[NodeConfig] = []
        next_id = 0
        for category in self.categories:
            start, end = production_window(
                category.production_start,
                category.production_end,
                data_start,
                data_end,
            )
            for _ in range(category.node_count):
                nodes.append(
                    NodeConfig(
                        system_id=self.system_id,
                        node_id=next_id,
                        category=category,
                        production_start=start,
                        production_end=end,
                    )
                )
                next_id += 1
        return nodes

    def production_window(self, data_start: float, data_end: float) -> Tuple[float, float]:
        """The system-wide production window: union over categories."""
        starts = []
        ends = []
        for category in self.categories:
            start, end = production_window(
                category.production_start,
                category.production_end,
                data_start,
                data_end,
            )
            starts.append(start)
            ends.append(end)
        return min(starts), max(ends)

    def production_years(self, data_start: float, data_end: float) -> float:
        """Length of the system production window in (average) years."""
        from repro.records.timeutils import SECONDS_PER_YEAR

        start, end = self.production_window(data_start, data_end)
        return (end - start) / SECONDS_PER_YEAR
