#!/usr/bin/env python3
"""Model your own cluster with the scenario builder.

The toolkit's calibrated machinery is not LANL-specific: describe a
fleet — node counts, per-processor failure rates, lifecycle shapes,
repair scales — and get a statistically faithful failure trace to run
the paper's analyses (or your capacity planning) against.

This example models a small data centre with a young compute partition,
a mature storage tier and a troubled experimental partition, then asks
operational questions: MTBF/MTTR per partition, the TBF fit (should you
trust a Poisson model?), and whether checkpointing intervals need
adjusting.

Usage::

    python examples/custom_cluster.py
"""

from repro.analysis import (
    availability_report,
    interarrival_study,
    repair_statistics_by_cause,
)
from repro.checkpoint import optimal_interval, young_interval
from repro.report import format_table
from repro.synth import ClusterScenario


def main() -> int:
    scenario = (
        ClusterScenario(name="acme-dc", years=4.0)
        .add_system("compute", nodes=512, procs_per_node=2,
                    failures_per_proc_year=0.35)
        .add_system("storage", nodes=48, procs_per_node=8,
                    failures_per_proc_year=0.12, repair_scale=2.5)
        .add_system("experimental", nodes=64, procs_per_node=4,
                    failures_per_proc_year=0.9, lifecycle="ramp-peak",
                    repair_scale=1.5)
    )
    print(f"Generating scenario {scenario.name!r} ({len(scenario.systems)} systems) ...")
    trace = scenario.generate(seed=11)
    print(f"  {len(trace)} failures over 4 years\n")

    rows = []
    for system in scenario.systems:
        system_id = scenario.system_id_of(system.name)
        availability = availability_report(trace)[system_id]
        rows.append(
            (
                system.name,
                system.nodes,
                availability.failures,
                f"{availability.mtbf_hours:.1f}",
                f"{availability.mttr_hours:.1f}",
                f"{100 * availability.node_availability:.3f}%",
            )
        )
    print(format_table(
        ("partition", "nodes", "failures", "MTBF (h)", "MTTR (h)", "node avail"),
        rows, title="Operational summary",
    ))

    compute_id = scenario.system_id_of("compute")
    study = interarrival_study(trace.filter_systems([compute_id]), "compute partition")
    print(f"\nCompute-partition TBF: best fit {study.best.distribution.describe()}")
    print(f"  hazard {study.hazard}; C^2 = {study.summary.squared_cv:.2f}")

    mtbf = study.summary.mean
    cost = 600.0
    tau_poisson = young_interval(cost, mtbf)
    tau_fitted = optimal_interval(study.best.distribution, cost)
    print(
        f"\nCheckpoint interval (10-min checkpoints): Poisson-assumed "
        f"{tau_poisson:.0f}s vs fitted-optimal {tau_fitted:.0f}s"
    )

    print("\nRepair-time statistics by root cause:")
    for row in repair_statistics_by_cause(trace):
        print(
            f"  {row.label:<12} n={row.n:<6} mean={row.mean:7.1f} min  "
            f"median={row.median:6.1f} min  C^2={row.squared_cv:8.1f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
