"""Event-driven scheduler simulation on a failure trace.

Jobs arrive, wait for enough *up* nodes, and run to completion unless a
failure strikes one of their nodes — in which case the job is killed
and requeued from scratch (the pessimistic variant of LANL's
checkpoint-restart; Section 2.2), the node spends its repair window
down, and the policy may learn from the observed failure.

Metrics compare placement policies: with heterogeneous per-node
failure rates (Figure 3), a reliability-aware policy loses less work
than random placement on the same trace and workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.sched.cluster import ClusterTimeline
from repro.sched.jobs import Job
from repro.sched.policies import PlacementPolicy
from repro.simulate.engine import Event, Simulator

__all__ = ["SchedulerResult", "SchedulerSimulation"]


@dataclass(frozen=True)
class SchedulerResult:
    """Aggregate outcome of one scheduling simulation.

    Attributes
    ----------
    jobs_submitted / jobs_completed:
        Workload size and how much of it finished inside the window.
    kills:
        Number of job kills caused by node failures.
    lost_node_seconds:
        Node-seconds of work destroyed by kills.
    useful_node_seconds:
        Node-seconds of completed work.
    mean_slowdown:
        Mean of (completion - arrival) / duration over completed jobs.
    mean_wait:
        Mean time from arrival to first start over started jobs.
    """

    jobs_submitted: int
    jobs_completed: int
    kills: int
    lost_node_seconds: float
    useful_node_seconds: float
    mean_slowdown: float
    mean_wait: float
    capacity_node_seconds: float = 0.0

    @property
    def waste_fraction(self) -> float:
        """Lost / (lost + useful) node-seconds."""
        total = self.lost_node_seconds + self.useful_node_seconds
        if total <= 0:
            return 0.0
        return self.lost_node_seconds / total

    @property
    def utilization(self) -> float:
        """(Useful + lost) node-seconds over the machine's capacity.

        Counts all occupied node time (work later destroyed by a kill
        still held the nodes); 0 when capacity is unknown.
        """
        if self.capacity_node_seconds <= 0:
            return 0.0
        return (
            self.useful_node_seconds + self.lost_node_seconds
        ) / self.capacity_node_seconds

    @property
    def goodput(self) -> float:
        """Useful node-seconds over capacity (utilization minus waste)."""
        if self.capacity_node_seconds <= 0:
            return 0.0
        return self.useful_node_seconds / self.capacity_node_seconds


@dataclass
class _RunningJob:
    job: Job
    nodes: Tuple[int, ...]
    started: float
    completion_event: Event
    failure_event: Optional[Event]


class SchedulerSimulation:
    """Simulate a workload on one system's failure timeline.

    Parameters
    ----------
    timeline:
        Node outage timeline (from a failure trace).
    policy:
        Placement policy under test.
    window:
        (start, end) simulation window in trace time.
    """

    def __init__(
        self,
        timeline: ClusterTimeline,
        policy: PlacementPolicy,
        window: Tuple[float, float],
    ) -> None:
        start, end = window
        if end <= start:
            raise ValueError(f"empty window {window}")
        self._timeline = timeline
        self._policy = policy
        self._start = float(start)
        self._end = float(end)

    def _select_next(
        self,
        queue: List[Job],
        free_count: int,
        running_releases: List[Tuple[float, int]],
        now: float,
    ) -> Optional[int]:
        """Index of the queued job to start next, or None to wait.

        The base policy is strict FCFS with no backfilling: the head
        starts when it fits, and blocks the queue otherwise.  The EASY
        backfilling variant overrides this
        (:class:`repro.sched.backfill.BackfillSchedulerSimulation`).
        """
        if queue and queue[0].nodes <= free_count:
            return 0
        return None

    def run(self, jobs: List[Job]) -> SchedulerResult:
        """Run the workload; returns aggregate metrics."""
        timeline = self._timeline
        policy = self._policy
        sim = Simulator(start_time=self._start)
        queue: List[Job] = []
        running: Dict[int, _RunningJob] = {}
        busy: Set[int] = set()
        stats = {
            "completed": 0,
            "kills": 0,
            "lost": 0.0,
            "useful": 0.0,
            "slowdowns": [],
            "waits": [],
        }
        first_start: Dict[int, float] = {}

        def up_free_nodes(now: float) -> List[int]:
            return [
                node_id
                for node_id in range(timeline.node_count)
                if node_id not in busy and not timeline.is_down(node_id, now)
            ]

        def try_dispatch(simulator: Simulator) -> None:
            while queue:
                free = up_free_nodes(simulator.now)
                running_releases = [
                    (entry.completion_event.time, len(entry.nodes))
                    for entry in running.values()
                ]
                index = self._select_next(
                    queue, len(free), running_releases, simulator.now
                )
                if index is None:
                    return
                job = queue.pop(index)
                chosen = tuple(policy.choose(free, job.nodes, simulator.now))
                start_job(simulator, job, chosen)

        def start_job(simulator: Simulator, job: Job, nodes: Tuple[int, ...]) -> None:
            now = simulator.now
            first_start.setdefault(job.job_id, now)
            busy.update(nodes)
            completion_time = now + job.duration
            completion = simulator.schedule(
                completion_time, lambda s, job_id=job.job_id: complete(s, job_id)
            )
            failure_event: Optional[Event] = None
            outage = timeline.next_failure_any(nodes, now)
            if outage is not None and outage.start < completion_time:
                failure_event = simulator.schedule(
                    outage.start,
                    lambda s, job_id=job.job_id, node_id=outage.node_id: kill(
                        s, job_id, node_id
                    ),
                )
            running[job.job_id] = _RunningJob(
                job=job,
                nodes=nodes,
                started=now,
                completion_event=completion,
                failure_event=failure_event,
            )

        def complete(simulator: Simulator, job_id: int) -> None:
            entry = running.pop(job_id)
            if entry.failure_event is not None:
                entry.failure_event.cancel()
            busy.difference_update(entry.nodes)
            stats["completed"] += 1
            stats["useful"] += entry.job.duration * entry.job.nodes
            stats["slowdowns"].append(
                (simulator.now - entry.job.arrival) / entry.job.duration
            )
            stats["waits"].append(first_start[job_id] - entry.job.arrival)
            try_dispatch(simulator)

        def kill(simulator: Simulator, job_id: int, node_id: int) -> None:
            entry = running.pop(job_id)
            entry.completion_event.cancel()
            busy.difference_update(entry.nodes)
            elapsed = simulator.now - entry.started
            stats["kills"] += 1
            stats["lost"] += elapsed * entry.job.nodes
            # (The policy hears about this failure through the global
            # outage observer; no second observe_failure here.)
            # Requeue from scratch at the head (it has priority by age).
            queue.insert(0, entry.job)
            # The failed node returns after repair; others free now.
            outage = timeline.next_failure(node_id, simulator.now - 1e-9)
            return_time = outage.end if outage is not None else simulator.now
            if return_time > simulator.now:
                simulator.schedule(return_time, try_dispatch)
            try_dispatch(simulator)

        def arrive(simulator: Simulator, job: Job) -> None:
            queue.append(job)
            try_dispatch(simulator)

        for job in jobs:
            if not self._start <= job.arrival < self._end:
                raise ValueError(
                    f"job {job.job_id} arrives at {job.arrival}, outside the window"
                )
            sim.schedule(job.arrival, lambda s, job=job: arrive(s, job))
        # Idle-node failures also inform online policies.
        for node_id in range(timeline.node_count):
            for outage in timeline.outages(node_id):
                if self._start <= outage.start < self._end:
                    sim.schedule(
                        outage.start,
                        lambda s, node_id=node_id: policy.observe_failure(node_id, s.now),
                    )
        sim.run(until=self._end)
        completed = stats["completed"]
        return SchedulerResult(
            jobs_submitted=len(jobs),
            jobs_completed=completed,
            kills=stats["kills"],
            lost_node_seconds=stats["lost"],
            useful_node_seconds=stats["useful"],
            mean_slowdown=(
                sum(stats["slowdowns"]) / completed if completed else float("nan")
            ),
            mean_wait=(
                sum(stats["waits"]) / len(stats["waits"]) if stats["waits"] else float("nan")
            ),
            capacity_node_seconds=timeline.node_count * (self._end - self._start),
        )
