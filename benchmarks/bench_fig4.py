"""Figure 4: failure rate as a function of system age.

Paper shape claims asserted:

* system 5 (type E) decays from an early high — infant mortality;
* system 19 (type G) *grows* toward a peak near 20 months before
  declining;
* the classifier agrees with the paper's type assignment on every
  long-lived system with enough data.
"""

import numpy as np

from repro.analysis.lifecycle import classify_lifecycle, monthly_failures
from repro.report import render_figure4
from repro.synth.lifecycle import LifecycleShape


def test_figure4(benchmark, trace):
    curve5 = benchmark(monthly_failures, trace, 5)
    curve19 = monthly_failures(trace, 19)
    print("\n" + render_figure4(trace))

    # Figure 4(a): infant-mortality decay for system 5.
    assert classify_lifecycle(curve5) is LifecycleShape.INFANT_DECAY
    smoothed5 = curve5.smoothed(4)
    assert smoothed5[0] > 1.5 * np.mean(smoothed5[12:24])

    # Figure 4(b): ramp to a peak near 20 months for system 19.
    assert classify_lifecycle(curve19) is LifecycleShape.RAMP_PEAK
    smoothed19 = curve19.smoothed(6)
    early = float(np.mean(smoothed19[:8]))
    peak = float(np.max(smoothed19[12:36]))
    late = float(np.mean(smoothed19[48:]))
    assert peak > 2 * early    # grows for ~20 months
    assert peak > 1.5 * late   # ... then drops

    # The big ramp-era systems classify as ramps; established clusters
    # as decays (matching Section 5.2's type assignment).
    expected = {
        4: LifecycleShape.RAMP_PEAK,
        5: LifecycleShape.INFANT_DECAY,
        7: LifecycleShape.INFANT_DECAY,
        8: LifecycleShape.INFANT_DECAY,
        19: LifecycleShape.RAMP_PEAK,
        20: LifecycleShape.RAMP_PEAK,
    }
    for system_id, shape in expected.items():
        assert classify_lifecycle(monthly_failures(trace, system_id)) is shape, system_id
