"""Lifecycle rate shapes (Figure 4).

The paper finds that the failure rate over a system's lifetime follows
one of two shapes:

* **Infant-mortality decay** (Figure 4(a), types E and F): rates start
  high and drop within the first months as initial hardware/software
  bugs are fixed and administrators gain experience.
* **Ramp to a peak** (Figure 4(b), types D and G): rates *grow* for
  ~20 months before declining, because these first-of-their-kind
  systems were brought to full production slowly, so the workload
  variety that exposes bugs arrived late.

Both are implemented as dimensionless multipliers on the base failure
rate as a function of system age.  The multipliers are smooth, so the
time-warped renewal process inherits the shape.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.records.system import HardwareType
from repro.records.timeutils import SECONDS_PER_MONTH

__all__ = [
    "LifecycleShape",
    "lifecycle_shape_for",
    "infant_decay",
    "ramp_peak",
    "lifecycle_multiplier",
    "lifecycle_levels",
]


class LifecycleShape(enum.Enum):
    """The two lifecycle shapes of Figure 4."""

    INFANT_DECAY = "infant-decay"
    RAMP_PEAK = "ramp-peak"

    def __str__(self) -> str:
        return self.value


# Infant-mortality decay parameters: initial rate (1 + EXCESS) times the
# steady-state rate, decaying with time constant DECAY_MONTHS.
INFANT_EXCESS = 2.5
INFANT_DECAY_MONTHS = 3.0

# Ramp-peak parameters: rate starts at RAMP_FLOOR, peaks at RAMP_PEAK_LEVEL
# at RAMP_PEAK_MONTHS, then declines toward the floor+decay tail.
RAMP_FLOOR = 0.25
RAMP_PEAK_LEVEL = 2.0
RAMP_PEAK_MONTHS = 20.0


def infant_decay(
    age_seconds: float,
    excess: float = INFANT_EXCESS,
    decay_months: float = INFANT_DECAY_MONTHS,
) -> float:
    """Figure 4(a) multiplier: ``1 + excess * exp(-age / tau)``.

    Equals ``1 + excess`` at age 0 and decays to 1 with time constant
    ``decay_months``.
    """
    if age_seconds < 0:
        raise ValueError(f"age must be >= 0, got {age_seconds}")
    tau = decay_months * SECONDS_PER_MONTH
    return 1.0 + excess * math.exp(-age_seconds / tau)


def ramp_peak(
    age_seconds: float,
    floor: float = RAMP_FLOOR,
    peak_level: float = RAMP_PEAK_LEVEL,
    peak_months: float = RAMP_PEAK_MONTHS,
) -> float:
    """Figure 4(b) multiplier: a gamma-shaped ramp peaking at ``peak_months``.

    ``floor + (peak - floor) * (age/T)^2 * exp(2 * (1 - age/T))`` — equal
    to ``floor`` at age 0, to ``peak_level`` exactly at ``T``, and
    declining slowly afterwards (about 40% above floor at ``3T``).
    """
    if age_seconds < 0:
        raise ValueError(f"age must be >= 0, got {age_seconds}")
    t = age_seconds / (peak_months * SECONDS_PER_MONTH)
    return floor + (peak_level - floor) * t**2 * math.exp(2.0 * (1.0 - t))


def lifecycle_shape_for(
    hardware_type: HardwareType,
    system_id: int,
    ramp_types=(HardwareType.D, HardwareType.G),
    ramp_exempt_systems=(21,),
) -> LifecycleShape:
    """The lifecycle shape of a system.

    Types D and G ramp (Figure 4(b)); everything else decays
    (Figure 4(a)).  System 21 is type G but was introduced two years
    into the NUMA era and behaves like Figure 4(a) (Section 5.2).
    """
    if hardware_type in ramp_types and system_id not in ramp_exempt_systems:
        return LifecycleShape.RAMP_PEAK
    return LifecycleShape.INFANT_DECAY


def lifecycle_multiplier(shape: LifecycleShape, age_seconds: float) -> float:
    """Evaluate a lifecycle shape at the given system age."""
    if shape is LifecycleShape.INFANT_DECAY:
        return infant_decay(age_seconds)
    if shape is LifecycleShape.RAMP_PEAK:
        return ramp_peak(age_seconds)
    raise ValueError(f"unknown lifecycle shape {shape!r}")


def lifecycle_levels(shape: LifecycleShape, age_seconds: np.ndarray) -> np.ndarray:
    """Evaluate a lifecycle shape on an array of system ages.

    Both synthesis engines (scalar and vectorized) build their weekly
    rate grids from this function, so the grids — and therefore the
    traces — agree bit-for-bit.
    """
    ages = np.asarray(age_seconds, dtype=float)
    if ages.size and ages.min() < 0:
        raise ValueError(f"age must be >= 0, got {ages.min()}")
    if shape is LifecycleShape.INFANT_DECAY:
        tau = INFANT_DECAY_MONTHS * SECONDS_PER_MONTH
        return 1.0 + INFANT_EXCESS * np.exp(-ages / tau)
    if shape is LifecycleShape.RAMP_PEAK:
        t = ages / (RAMP_PEAK_MONTHS * SECONDS_PER_MONTH)
        return RAMP_FLOOR + (RAMP_PEAK_LEVEL - RAMP_FLOOR) * t**2 * np.exp(
            2.0 * (1.0 - t)
        )
    raise ValueError(f"unknown lifecycle shape {shape!r}")
