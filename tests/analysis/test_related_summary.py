"""Tests for Table 3 data and the whole-paper summary."""

import pytest

from repro.analysis.related import RELATED_STUDIES, literature_ranges
from repro.analysis.summary import summarize
from repro.stats.hazard import HazardDirection
from repro.synth.lifecycle import LifecycleShape


class TestRelatedStudies:
    def test_thirteen_studies(self):
        assert len(RELATED_STUDIES) == 13

    def test_known_rows(self):
        by_ref = {study.reference: study for study in RELATED_STUDIES}
        gray = by_ref["[3, 4] Gray"]
        assert gray.n_failures == 800
        assert gray.environment == "Tandem systems"
        sahoo = by_ref["[18] Sahoo et al."]
        assert sahoo.n_failures == 1285

    def test_failure_counts_non_negative(self):
        for study in RELATED_STUDIES:
            if study.n_failures is not None:
                assert study.n_failures > 0

    def test_literature_ranges_ordered(self):
        for name, (low, high) in literature_ranges().items():
            assert low <= high, name

    def test_this_paper_shape_range(self):
        low, high = literature_ranges()["weibull_shape_this_paper"]
        assert (low, high) == (0.70, 0.80)


class TestPaperSummary:
    @pytest.fixture(scope="class")
    def summary(self, full_trace):
        return summarize(full_trace)

    def test_headline_rate_range(self, summary):
        low, high = summary.rate_range
        assert low < 30
        assert high > 900

    def test_lifecycle_shapes_match_types(self, summary):
        assert summary.lifecycle_shapes[5] is LifecycleShape.INFANT_DECAY
        assert summary.lifecycle_shapes[19] is LifecycleShape.RAMP_PEAK
        assert summary.lifecycle_shapes[20] is LifecycleShape.RAMP_PEAK

    def test_tbf_late_decreasing_hazard(self, summary):
        assert summary.tbf_system_late is not None
        assert summary.tbf_system_late.hazard is HazardDirection.DECREASING

    def test_repair_best_fit_lognormal(self, summary):
        assert summary.repair_best_fit == "lognormal"

    def test_repair_system_range_hour_to_day(self, summary):
        low, high = summary.repair_system_range
        assert low < 150          # under ~2.5 hours
        assert high > 1000        # over ~17 hours

    def test_periodicity_embedded(self, summary):
        assert summary.periodicity.peak_trough_ratio > 1.5

    def test_record_count(self, summary, full_trace):
        assert summary.n_records == len(full_trace)

    def test_summary_without_reference_system(self, small_trace):
        result = summarize(small_trace, reference_system=20)
        assert result.tbf_system_late is None
        assert result.n_records == len(small_trace)
