"""Scrub / quarantine / repair: the store's self-healing loop."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.store import (
    LEDGER_NAME,
    MANIFEST_NAME,
    PREV_MANIFEST_NAME,
    QUARANTINE_DIR,
    STAGING_DIR,
    ColumnarStore,
    load_ledger,
    repair_store,
    scrub_store,
    store_from_trace,
    verify_store,
)
from repro.synth import TraceGenerator


def _store_bytes(root):
    """Every file of a store as {relative path: bytes}."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


@pytest.fixture(scope="module")
def pristine(tmp_path_factory, small_trace):
    root = tmp_path_factory.mktemp("scrub") / "pristine"
    store_from_trace(small_trace, root, shard_rows=100)
    return root


@pytest.fixture()
def damaged(tmp_path, pristine):
    """A copy of the pristine store with three damage classes injected:
    a deleted column file, a bit-flipped data byte, and drifted
    manifest statistics."""
    root = tmp_path / "damaged"
    shutil.copytree(pristine, root)
    (root / "shards" / "00000-node_id.npy").unlink()
    victim = root / "shards" / "00001-root_cause.npy"
    data = bytearray(victim.read_bytes())
    data[-1] ^= 0x01
    victim.write_bytes(bytes(data))
    payload = json.loads((root / MANIFEST_NAME).read_text())
    payload["shards"][2]["stats"]["start_time"][0] -= 1.0
    (root / MANIFEST_NAME).write_text(json.dumps(payload))
    return root


class TestScrub:
    def test_clean_store_passes_through(self, tmp_path, pristine):
        root = tmp_path / "st"
        shutil.copytree(pristine, root)
        before = _store_bytes(root)
        report = scrub_store(root)
        assert report.ok
        assert report.healthy == report.checked == len(
            ColumnarStore(root).manifest.shards
        )
        assert not (root / QUARANTINE_DIR).exists()
        assert _store_bytes(root) == before

    def test_damage_classified_and_quarantined(self, damaged):
        report = scrub_store(damaged)
        assert not report.ok
        assert sorted(report.quarantined) == ["00000", "00001"]
        assert report.damage["missing-file"] == 1
        # the bit flip keeps a valid header, so only the deep checksum
        # pass sees it
        assert report.damage["checksum-mismatch"] == 1
        assert report.stat_drift == ["00002"]
        # quarantined files left shards/ and are ledgered
        assert not (damaged / "shards" / "00001-root_cause.npy").exists()
        assert (damaged / QUARANTINE_DIR / "00001-root_cause.npy").exists()
        ledger = load_ledger(damaged)
        assert set(ledger) == {"00000", "00001"}
        assert ledger["00000"]["damage"] == ["missing-file"]
        assert "00000-node_id.npy" in ledger["00000"]["missing"]

    def test_manifest_keeps_quarantined_shards(self, damaged):
        before = json.loads((damaged / MANIFEST_NAME).read_text())
        scrub_store(damaged)
        after = json.loads((damaged / MANIFEST_NAME).read_text())
        # the manifest is the logical truth: quarantine does not rewrite
        # it (its checksums are exactly what repair will prove against)
        assert after == before

    def test_fix_stats_recomputes_from_verified_data(self, damaged):
        report = scrub_store(damaged, fix_stats=True)
        assert report.repaired_stats == ["00002"]
        assert report.stat_drift == []
        payload = json.loads((damaged / MANIFEST_NAME).read_text())
        problems = [
            p for p in verify_store(damaged, deep=True) if "00002" in p
        ]
        assert problems == []
        # the previous manifest generation is kept for rollback
        assert (damaged / PREV_MANIFEST_NAME).exists()
        assert payload["row_count"] == sum(
            s["rows"] for s in payload["shards"]
        )

    def test_rerun_is_stable(self, damaged):
        first = scrub_store(damaged)
        second = scrub_store(damaged)
        assert sorted(second.quarantined) == sorted(first.quarantined)
        assert second.healthy == first.healthy
        assert load_ledger(damaged).keys() == {"00000", "00001"}

    def test_orphan_files_swept(self, tmp_path, pristine):
        root = tmp_path / "st"
        shutil.copytree(pristine, root)
        (root / "shards" / "99999-node_id.npy").write_bytes(b"junk")
        report = scrub_store(root)
        assert report.orphans == ["99999-node_id.npy"]
        assert not (root / "shards" / "99999-node_id.npy").exists()
        assert (root / QUARANTINE_DIR / "99999-node_id.npy").exists()

    def test_stale_staging_removed(self, tmp_path, pristine):
        root = tmp_path / "st"
        shutil.copytree(pristine, root)
        (root / STAGING_DIR).mkdir()
        (root / STAGING_DIR / "00007-node_id.npy").write_bytes(b"junk")
        report = scrub_store(root)
        assert report.staging_cleaned
        assert not (root / STAGING_DIR).exists()

    def test_report_shapes(self, damaged, capsys):
        report = scrub_store(damaged)
        payload = report.to_dict()
        json.dumps(payload)
        assert payload["ok"] is False
        assert "DAMAGED" in report.describe()


class TestRepair:
    def test_roundtrip_is_byte_identical(self, damaged, pristine, small_trace):
        scrub_store(damaged, fix_stats=True)
        report = repair_store(damaged, small_trace)
        assert report.ok, report.failed
        assert sorted(report.repaired) == ["00000", "00001"]
        assert verify_store(damaged, deep=True) == []
        # healed tree == never-damaged tree, modulo the rollback manifest
        healed = _store_bytes(damaged)
        healed.pop(PREV_MANIFEST_NAME)
        assert healed == _store_bytes(pristine)
        # quarantine is gone entirely once the ledger empties
        assert not (damaged / QUARANTINE_DIR).exists()

    def test_repair_from_store_reference(self, damaged, pristine):
        scrub_store(damaged, fix_stats=True)
        report = repair_store(damaged, pristine)
        assert report.ok, report.failed
        assert verify_store(damaged, deep=True) == []

    def test_repair_without_prior_scrub(self, damaged, small_trace):
        # repair works standalone: it diagnoses what scrub would have
        report = repair_store(damaged, small_trace)
        assert sorted(report.repaired) == ["00000", "00001"]
        assert report.stats_fixed == ["00002"]
        assert verify_store(damaged, deep=True) == []

    def test_wrong_reference_refused(self, damaged):
        scrub_store(damaged)
        other = TraceGenerator(seed=99).generate([2, 13])
        report = repair_store(damaged, other)
        assert not report.ok
        assert set(report.failed) == {"00000", "00001"}
        assert all("sha256" in r or "row(s)" in r for r in report.failed.values())
        # failed shards stay quarantined and ledgered for the next try
        assert sorted(report.remaining) == ["00000", "00001"]
        assert (damaged / QUARANTINE_DIR / LEDGER_NAME).exists()

    def test_missing_checksum_refused(self, damaged, small_trace):
        scrub_store(damaged)
        payload = json.loads((damaged / MANIFEST_NAME).read_text())
        assert payload["shards"][0]["name"] == "00000"
        del payload["shards"][0]["checksums"]["node_id"]
        (damaged / MANIFEST_NAME).write_text(json.dumps(payload))
        report = repair_store(damaged, small_trace)
        assert "00000" in report.failed
        assert "cannot prove byte identity" in report.failed["00000"]
        assert "00001" in report.repaired

    def test_stale_ledger_entries_dropped(self, tmp_path, pristine, small_trace):
        root = tmp_path / "st"
        shutil.copytree(pristine, root)
        (root / "shards" / "99999-node_id.npy").write_bytes(b"junk")
        scrub_store(root)
        report = repair_store(root, small_trace)
        assert report.ok
        assert report.orphans_removed == ["99999-node_id.npy"]
        assert not (root / QUARANTINE_DIR).exists()
