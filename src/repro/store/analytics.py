"""Out-of-core analytics over a columnar store.

:func:`summarize_store` computes the headline aggregates — failure
counts by system and by root cause, downtime by cause, repair-time
statistics — in one bounded-memory pass over
:meth:`~repro.store.reader.ColumnarStore.iter_batches`, with predicate
pushdown pruning shards first.  Peak memory is one chunk, independent
of the trace size; the RSS-capped CI job runs exactly this path over a
million-record store.

This is intentionally *not* the full paper analysis
(:func:`repro.analysis.summary.summarize` wants a materialized
:class:`~repro.records.trace.FailureTrace`); it is the streaming
subset that makes sense per-row without global context.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.records.codes import CAUSE_VOCAB
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.store.manifest import Predicate
from repro.store.reader import DEFAULT_BATCH_ROWS, ColumnarStore, ScanStats

__all__ = ["StoreSummary", "summarize_store"]

#: Columns the streaming summary needs per chunk.
_SUMMARY_COLUMNS = (
    "start_time", "end_time", "system_id", "root_cause",
)


@dataclass
class StoreSummary:
    """Aggregates from one streaming pass over a store."""

    rows: int = 0
    counts_by_system: Dict[int, int] = field(default_factory=dict)
    counts_by_cause: Dict[str, int] = field(default_factory=dict)
    downtime_by_cause: Dict[str, float] = field(default_factory=dict)
    repair_mean: float = 0.0
    repair_min: float = math.inf
    repair_max: float = -math.inf
    start_min: float = math.inf
    start_max: float = -math.inf
    scan: ScanStats = field(default_factory=ScanStats)
    #: Populated (dict form) when a degraded read skipped shards.
    degraded: Optional[dict] = None
    #: Populated when a deadline cut the scan short (``on_deadline="partial"``).
    partial: Optional[dict] = None

    def to_dict(self) -> dict:
        """A JSON-able view for ``repro store analyze --json``.

        The ``partial`` key appears only when a deadline truncated the
        scan, so complete summaries stay byte-identical to pre-deadline
        output.
        """
        payload = self._base_dict()
        if self.partial is not None:
            payload["partial"] = self.partial
        return payload

    def _base_dict(self) -> dict:
        # Guard on durations/timestamps actually observed, not on rows:
        # a deadline-partial or degraded pass can count rows while the
        # extrema stay at their ±inf initials, and json.dumps would then
        # emit non-RFC "Infinity" tokens.
        has_durations = math.isfinite(self.repair_min) and math.isfinite(
            self.repair_max
        )
        has_window = math.isfinite(self.start_min) and math.isfinite(
            self.start_max
        )
        return {
            "rows": self.rows,
            "counts_by_system": {
                str(k): v for k, v in sorted(self.counts_by_system.items())
            },
            "counts_by_cause": dict(sorted(self.counts_by_cause.items())),
            "downtime_hours_by_cause": {
                cause: seconds / 3600.0
                for cause, seconds in sorted(self.downtime_by_cause.items())
            },
            "repair_minutes": (
                {
                    "mean": self.repair_mean / 60.0,
                    "min": self.repair_min / 60.0,
                    "max": self.repair_max / 60.0,
                }
                if has_durations
                else None
            ),
            "start_time_range": (
                [self.start_min, self.start_max] if has_window else None
            ),
            "scan": {
                "shards_scanned": self.scan.shards_scanned,
                "shards_pruned": self.scan.shards_pruned,
                "rows_scanned": self.scan.rows_scanned,
                "rows_matched": self.scan.rows_matched,
            },
            "degraded": self.degraded,
        }

    def describe(self) -> str:
        lines = [f"rows: {self.rows}"]
        if self.rows:
            if math.isfinite(self.repair_min) and math.isfinite(
                self.repair_max
            ):
                lines.append(
                    "repair minutes: "
                    f"mean={self.repair_mean / 60.0:.1f} "
                    f"min={self.repair_min / 60.0:.1f} "
                    f"max={self.repair_max / 60.0:.1f}"
                )
            lines.append("counts by cause:")
            for cause, count in sorted(self.counts_by_cause.items()):
                hours = self.downtime_by_cause[cause] / 3600.0
                lines.append(
                    f"  {cause:<12} {count:>9}  ({hours:.1f} downtime hours)"
                )
            lines.append("counts by system:")
            for system_id, count in sorted(self.counts_by_system.items()):
                lines.append(f"  system {system_id:>2}: {count}")
        lines.append(f"pushdown: {self.scan.describe()}")
        if self.partial:
            lines.append(
                "PARTIAL: deadline exceeded after "
                f"{self.partial.get('rows_seen', self.rows)} row(s); "
                "aggregates cover only the scanned prefix"
            )
        if self.degraded:
            lines.append(
                "DEGRADED: skipped "
                f"{len(self.degraded.get('shards_skipped', []))} shard(s), "
                f"{self.degraded.get('rows_skipped', 0)} row(s) "
                "(see `repro store scrub`)"
            )
        return "\n".join(lines)


def summarize_store(
    store: ColumnarStore,
    predicate: Optional[Predicate] = None,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    deadline: Optional[Deadline] = None,
    on_deadline: str = "raise",
) -> StoreSummary:
    """One streaming pass of headline aggregates over ``store``.

    The store handle's scan counters are reset first, so the returned
    summary's ``scan`` reflects exactly this pass (the CI job asserts
    ``shards_pruned >= 1`` from it).

    ``deadline`` bounds the pass's wall time via chunk-boundary checks
    in :meth:`~repro.store.reader.ColumnarStore.iter_batches`.  With
    ``on_deadline="raise"`` a blown budget propagates as
    :class:`~repro.resilience.deadline.DeadlineExceeded`; with
    ``"partial"`` the pass stops cleanly and the returned summary
    carries a ``partial`` record describing the truncation — the
    serving layer's deadline contract: a partial answer, never a hang.
    """
    if on_deadline not in ("raise", "partial"):
        raise ValueError(
            f"on_deadline must be 'raise' or 'partial', got {on_deadline!r}"
        )
    store.reset_scan_stats()
    n_causes = len(CAUSE_VOCAB)
    cause_counts = np.zeros(n_causes, dtype=np.int64)
    cause_downtime = np.zeros(n_causes, dtype=np.float64)
    system_counts: Dict[int, int] = {}
    summary = StoreSummary()
    repair_total = 0.0
    with obs.span("store.summarize"):
        try:
            for chunk in store.iter_batches(
                columns=_SUMMARY_COLUMNS,
                predicate=predicate,
                batch_rows=batch_rows,
                deadline=deadline,
            ):
                n = len(chunk)
                if not n:
                    continue
                summary.rows += n
                starts = chunk["start_time"]
                repairs = chunk["end_time"] - starts
                causes = chunk["root_cause"].astype(np.int64)
                cause_counts += np.bincount(causes, minlength=n_causes)
                cause_downtime += np.bincount(
                    causes, weights=repairs, minlength=n_causes
                )
                repair_total += float(repairs.sum())
                summary.repair_min = min(summary.repair_min, float(repairs.min()))
                summary.repair_max = max(summary.repair_max, float(repairs.max()))
                summary.start_min = min(summary.start_min, float(starts.min()))
                summary.start_max = max(summary.start_max, float(starts.max()))
                ids, counts = np.unique(chunk["system_id"], return_counts=True)
                for system_id, count in zip(ids.tolist(), counts.tolist()):
                    system_counts[system_id] = (
                        system_counts.get(system_id, 0) + count
                    )
        except DeadlineExceeded:
            if on_deadline == "raise":
                raise
            summary.partial = {
                "reason": "deadline-exceeded",
                "rows_seen": summary.rows,
                "rows_total": store.manifest.row_count,
            }
            obs.metrics().counter("store.scans_deadline_partial").add(1)
    summary.counts_by_system = system_counts
    for code, cause in enumerate(CAUSE_VOCAB):
        if cause_counts[code]:
            summary.counts_by_cause[cause.value] = int(cause_counts[code])
            summary.downtime_by_cause[cause.value] = float(
                cause_downtime[code]
            )
    summary.repair_mean = repair_total / summary.rows if summary.rows else 0.0
    summary.scan = store.scan
    if store.degraded:
        summary.degraded = store.degraded.to_dict()
    obs.metrics().counter("store.rows_summarized").add(summary.rows)
    return summary
