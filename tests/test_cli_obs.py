"""CLI surface of the observability layer.

``repro generate --trace/--metrics``, the ``repro profile``
subcommand, and the ``repro bench --obs-guard`` overhead gate.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.schema import validate_trace_file


class TestGenerateTracing:
    def test_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        out = tmp_path / "out.csv"
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "generate", "--seed", "5", "--systems", "2,13",
            "--out", str(out), "--trace", str(trace_path),
        ])
        assert code == 0
        assert "wrote trace" in capsys.readouterr().out
        assert validate_trace_file(trace_path) == []
        events = [
            json.loads(line)
            for line in trace_path.read_text().strip().split("\n")
        ]
        assert events[0]["run_id"] == "generate:seed=5"
        names = {e["name"] for e in events if e["type"] == "span"}
        assert {"repro.generate", "generate", "io.write"} <= names

    def test_metrics_flag_prints_registry(self, tmp_path, capsys):
        out = tmp_path / "out.csv"
        code = main([
            "generate", "--seed", "5", "--systems", "2",
            "--out", str(out), "--metrics",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "metrics:" in text
        assert "generate.records (counter):" in text

    def test_tracing_does_not_change_records(self, tmp_path):
        plain = tmp_path / "plain.csv"
        traced = tmp_path / "traced.csv"
        main(["generate", "--seed", "5", "--systems", "2,13",
              "--out", str(plain)])
        main(["generate", "--seed", "5", "--systems", "2,13",
              "--out", str(traced), "--trace", str(tmp_path / "t.jsonl"),
              "--metrics"])
        assert plain.read_text() == traced.read_text()

    def test_run_report_records_observability(self, tmp_path):
        run_dir = tmp_path / "run"
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "generate", "--seed", "5", "--systems", "2,13",
            "--out", str(tmp_path / "out.csv"),
            "--run-dir", str(run_dir), "--trace", str(trace_path),
        ])
        assert code == 0
        report = json.loads((run_dir / "run_report.json").read_text())
        meta = report["meta"]["observability"]
        assert meta["trace"] == str(trace_path)
        assert meta["spans"] > 0
        # Attempt wall times land in the report.
        for shard in report["shards"]:
            for attempt in shard["attempts"]:
                assert attempt["wall_s"] >= 0

    def test_parallel_trace_merges_worker_spans(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "generate", "--seed", "5", "--systems", "2,13",
            "--out", str(tmp_path / "out.csv"), "--workers", "2",
            "--trace", str(trace_path),
        ])
        assert code == 0
        assert validate_trace_file(trace_path) == []
        events = [
            json.loads(line)
            for line in trace_path.read_text().strip().split("\n")
        ]
        spans = [e for e in events if e["type"] == "span"]
        streams = {e["id"].split(":")[0] for e in spans}
        assert "system-2" in streams and "system-13" in streams
        attempts = [e for e in spans if e["name"] == "shard.attempt"]
        assert [a["attrs"]["shard"] for a in attempts] == [
            "system-13", "system-2",
        ]


class TestProfile:
    def test_profile_runs_workload_and_prints_views(self, capsys):
        code = main(["profile", "--seed", "5", "--systems", "2"])
        assert code == 0
        text = capsys.readouterr().out
        assert "repro.profile" in text
        assert "span" in text and "wall" in text
        assert "calls" in text  # hotspot table header
        assert "metrics:" in text

    def test_profile_existing_trace_with_validation(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        main(["generate", "--seed", "5", "--systems", "2",
              "--out", str(tmp_path / "out.csv"), "--trace", str(trace_path)])
        capsys.readouterr()
        code = main(["profile", "--trace", str(trace_path), "--validate"])
        assert code == 0
        text = capsys.readouterr().out
        assert "schema OK" in text
        assert "repro.generate" in text

    def test_profile_validate_rejects_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"type": "header", "kind": "repro-trace", "schema": 1}\n'
            '{"type": "span", "id": "main:0", "parent": "main:9", '
            '"name": "x", "depth": 3, "wall_s": 1.0, "cpu_s": 0.5, '
            '"status": "ok", "attrs": {}, "counters": {}}\n'
        )
        code = main(["profile", "--trace", str(bad), "--validate"])
        assert code == 1
        assert "INVALID" in capsys.readouterr().out

    def test_profile_writes_trace_out(self, tmp_path, capsys):
        out = tmp_path / "profile.jsonl"
        code = main(["profile", "--seed", "5", "--systems", "2",
                     "--out", str(out)])
        assert code == 0
        assert validate_trace_file(out) == []


class TestObsGuard:
    def test_obs_guard_passes(self, capsys):
        code = main(["bench", "--obs-guard", "--seed", "5"])
        assert code == 0
        text = capsys.readouterr().out
        assert "observability overhead guard" in text
        assert "REGRESSION" not in text
