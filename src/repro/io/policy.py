"""Ingest policies: strict, lenient and repairing trace loading.

Real site logs are messy — the LANL data behind the paper was manually
curated, but arbitrary CFDR-style exports contain malformed rows,
vocabulary drift, clock skew and duplicated records.  One
:class:`IngestPolicy` object controls how every reader
(:func:`~repro.io.csv_format.read_lanl_csv`,
:func:`~repro.io.jsonl_format.read_jsonl`,
:func:`~repro.io.mapped.read_mapped_csv`) reacts to damage:

* ``strict`` — raise :class:`~repro.io.schema.SchemaError` on the first
  bad row, naming its line (the historical behavior, plus inventory /
  window / duplicate-ID checks);
* ``lenient`` — quarantine bad rows to a dead-letter file, keep every
  clean row, and report what was dropped;
* ``repair`` — like lenient, but first attempt well-understood repairs
  (swapped start/end times, duplicate record IDs, clampable
  out-of-window timestamps) before giving up on a row.

Whatever the mode, an error budget (:attr:`IngestPolicy.max_error_rate`)
fails the whole ingest loudly when corruption is pervasive enough that
the surviving rows can no longer be trusted to represent the trace.

The :class:`IngestReport` records rows read/kept/quarantined/repaired,
per-error-class counts and first-N samples — enough to debug a bad
export without re-reading it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.io.common import PathLike
from repro.io.schema import SchemaError
from repro.records.record import FailureRecord
from repro.records.system import SystemConfig

__all__ = [
    "IngestPolicy",
    "IngestReport",
    "QuarantineWriter",
    "RowPipeline",
    "LEGACY_POLICY",
]

INGEST_MODES = ("strict", "lenient", "repair")


@dataclass(frozen=True)
class IngestPolicy:
    """How a reader treats rows that violate the trace schema.

    Attributes
    ----------
    mode:
        ``"strict"`` (raise on first bad row), ``"lenient"``
        (quarantine bad rows) or ``"repair"`` (attempt repairs, then
        quarantine).
    max_error_rate:
        Error budget: if more than this fraction of the rows read had
        to be quarantined, the ingest raises ``SchemaError`` at the end
        even in lenient/repair mode — pervasive corruption means the
        kept rows are not a trustworthy sample.
    max_samples:
        How many example messages to keep per error class in the
        report.
    quarantine:
        Optional dead-letter path; quarantined rows are appended there
        as JSON lines (original payload + error class + message).
    check_window:
        Reject rows whose start time falls outside the observation
        window.
    check_inventory:
        Reject rows referencing systems missing from the inventory or
        node IDs beyond the system's node count.
    check_duplicates:
        Reject rows whose ``record_id`` was already seen in this file.
    clamp_slack:
        Repair mode only: an out-of-window start time within this many
        seconds of the window is clamped to the window edge (duration
        preserved); anything further out is quarantined.
    """

    mode: str = "strict"
    max_error_rate: float = 0.1
    max_samples: int = 5
    quarantine: Optional[PathLike] = None
    check_window: bool = True
    check_inventory: bool = True
    check_duplicates: bool = True
    clamp_slack: float = 30 * 86400.0

    def __post_init__(self) -> None:
        if self.mode not in INGEST_MODES:
            raise ValueError(
                f"unknown ingest mode {self.mode!r}; expected one of {INGEST_MODES}"
            )
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ValueError(
                f"max_error_rate must be in [0, 1], got {self.max_error_rate}"
            )
        if self.max_samples < 0:
            raise ValueError(f"max_samples must be >= 0, got {self.max_samples}")
        if self.clamp_slack < 0:
            raise ValueError(f"clamp_slack must be >= 0, got {self.clamp_slack}")


#: The pre-policy reader behavior: strict parsing, no cross-row checks.
#: Readers fall back to this when called without a policy, so existing
#: callers see byte-identical behavior.
LEGACY_POLICY = IngestPolicy(
    mode="strict",
    max_error_rate=1.0,
    check_window=False,
    check_inventory=False,
    check_duplicates=False,
)


@dataclass
class IngestReport:
    """Structured outcome of one ingest run.

    Attributes
    ----------
    source:
        The file the rows came from.
    mode:
        The policy mode the run used.
    rows_read / rows_kept / rows_quarantined / rows_repaired:
        Row accounting; ``rows_repaired`` counts kept rows that needed
        at least one repair, so ``rows_kept == rows_read -
        rows_quarantined`` always holds.
    error_counts:
        Quarantined rows per error class.
    error_samples:
        First-N error messages per class.
    repair_counts:
        Applied repairs per repair kind (a row can contribute several).
    quarantine_path:
        Where the dead letters were written, if anywhere.
    """

    source: str = ""
    mode: str = "strict"
    rows_read: int = 0
    rows_kept: int = 0
    rows_quarantined: int = 0
    rows_repaired: int = 0
    error_counts: Dict[str, int] = field(default_factory=dict)
    error_samples: Dict[str, List[str]] = field(default_factory=dict)
    repair_counts: Dict[str, int] = field(default_factory=dict)
    quarantine_path: Optional[str] = None

    @property
    def error_rate(self) -> float:
        """Fraction of rows read that were quarantined."""
        if self.rows_read == 0:
            return 0.0
        return self.rows_quarantined / self.rows_read

    @property
    def ok(self) -> bool:
        """True when every row read was kept (possibly after repair)."""
        return self.rows_quarantined == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view of the report."""
        return {
            "source": self.source,
            "mode": self.mode,
            "rows_read": self.rows_read,
            "rows_kept": self.rows_kept,
            "rows_quarantined": self.rows_quarantined,
            "rows_repaired": self.rows_repaired,
            "error_rate": self.error_rate,
            "error_counts": dict(self.error_counts),
            "error_samples": {k: list(v) for k, v in self.error_samples.items()},
            "repair_counts": dict(self.repair_counts),
            "quarantine_path": self.quarantine_path,
        }

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"ingest of {self.source} ({self.mode} mode)",
            f"  rows read:        {self.rows_read}",
            f"  rows kept:        {self.rows_kept}",
            f"  rows quarantined: {self.rows_quarantined} "
            f"({100 * self.error_rate:.2f}%)",
        ]
        if self.rows_repaired:
            lines.append(f"  rows repaired:    {self.rows_repaired}")
            for kind in sorted(self.repair_counts):
                lines.append(f"    {kind}: {self.repair_counts[kind]}")
        if self.error_counts:
            lines.append("  errors by class:")
            for kind in sorted(self.error_counts):
                lines.append(f"    {kind}: {self.error_counts[kind]}")
                for sample in self.error_samples.get(kind, []):
                    lines.append(f"      e.g. {sample}")
        if self.quarantine_path:
            lines.append(f"  dead letters:     {self.quarantine_path}")
        return "\n".join(lines)


class QuarantineWriter:
    """Appends rejected rows to a JSON-lines dead-letter file.

    Each entry records the source line number, the error class and
    message, and the raw payload (the row dict for CSV-style sources,
    the raw text for JSONL), so quarantined rows can be inspected and
    re-ingested after fixing.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = None
        self.rows_written = 0

    def write(self, line: int, raw: Any, error: SchemaError) -> None:
        """Append one dead-letter entry (opens the file lazily)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        if isinstance(raw, Mapping):
            payload: Any = {str(key): value for key, value in raw.items()}
        else:
            payload = raw
        entry = {
            "line": line,
            "error_class": error.error_class,
            "error": str(error),
            "raw": payload,
        }
        self._handle.write(json.dumps(entry, sort_keys=True, default=str))
        self._handle.write("\n")
        self.rows_written += 1

    def close(self) -> None:
        """Close the dead-letter file if it was opened."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class RowPipeline:
    """The shared row-level engine behind every trace reader.

    A reader parses each raw row into a dict of
    :class:`~repro.records.record.FailureRecord` field values and
    submits it here; the pipeline applies the policy — record
    construction, cross-row checks, repairs, quarantine, error budget —
    and returns the kept record or ``None``.

    Parameters
    ----------
    policy:
        The ingest policy; ``None`` means :data:`LEGACY_POLICY`.
    source:
        Name of the file being read (for messages and the report).
    systems:
        Effective inventory for ``check_inventory``.
    data_start / data_end:
        Effective observation window for ``check_window``.
    report:
        Optional pre-allocated report to fill in place (so callers that
        go through a plain reader function can still observe the
        outcome); a fresh one is created otherwise.
    """

    def __init__(
        self,
        policy: Optional[IngestPolicy],
        source: str,
        systems: Optional[Mapping[int, SystemConfig]] = None,
        data_start: Optional[float] = None,
        data_end: Optional[float] = None,
        report: Optional[IngestReport] = None,
    ) -> None:
        self.policy = policy if policy is not None else LEGACY_POLICY
        self.report = report if report is not None else IngestReport()
        self.report.source = source
        self.report.mode = self.policy.mode
        self._systems = systems
        self._data_start = data_start
        self._data_end = data_end
        self._seen_ids: Set[int] = set()
        self._quarantine: Optional[QuarantineWriter] = None
        if self.policy.quarantine is not None and self.policy.mode != "strict":
            self._quarantine = QuarantineWriter(self.policy.quarantine)

    # Row processing -----------------------------------------------------------

    def submit(
        self,
        line: int,
        raw: Any,
        parse: Callable[[], Dict[str, Any]],
    ) -> Optional[FailureRecord]:
        """Run one raw row through parse + policy.

        Returns the kept :class:`FailureRecord`, or ``None`` when the
        row was quarantined.  In strict mode the row's ``SchemaError``
        propagates instead.
        """
        self.report.rows_read += 1
        try:
            fields = parse()
            record = self._build(fields, line)
        except SchemaError as exc:
            if self.policy.mode == "strict":
                raise
            self._reject(line, raw, exc)
            return None
        self.report.rows_kept += 1
        return record

    def _reject(self, line: int, raw: Any, error: SchemaError) -> None:
        self.report.rows_quarantined += 1
        kind = error.error_class
        self.report.error_counts[kind] = self.report.error_counts.get(kind, 0) + 1
        samples = self.report.error_samples.setdefault(kind, [])
        if len(samples) < self.policy.max_samples:
            samples.append(str(error))
        if self._quarantine is not None:
            self._quarantine.write(line, raw, error)

    def _note_repair(self, kind: str) -> None:
        self.report.repair_counts[kind] = self.report.repair_counts.get(kind, 0) + 1

    def _build(self, fields: Dict[str, Any], line: int) -> FailureRecord:
        """Construct the record, applying policy checks and repairs."""
        repairing = self.policy.mode == "repair"
        repaired = False

        start = fields["start_time"]
        end = fields["end_time"]
        if end < start:
            if repairing:
                fields["start_time"], fields["end_time"] = end, start
                start, end = end, start
                self._note_repair("swapped-start-end")
                repaired = True
            else:
                raise SchemaError(
                    f"line {line}: end_time {end} precedes start_time {start}",
                    error_class="negative-duration",
                    line=line,
                )

        if (
            self.policy.check_window
            and self._data_start is not None
            and self._data_end is not None
            and not self._data_start <= start < self._data_end
        ):
            clamped = min(max(start, self._data_start), self._data_end - 1.0)
            if repairing and abs(start - clamped) <= self.policy.clamp_slack:
                fields["start_time"] = clamped
                fields["end_time"] = end + (clamped - start)
                self._note_repair("clamped-to-window")
                repaired = True
            else:
                raise SchemaError(
                    f"line {line}: start time {start} outside observation "
                    f"window [{self._data_start}, {self._data_end})",
                    error_class="out-of-window",
                    line=line,
                )

        if self.policy.check_inventory and self._systems is not None:
            system_id = fields["system_id"]
            config = self._systems.get(system_id)
            if config is None:
                raise SchemaError(
                    f"line {line}: unknown system {system_id}",
                    error_class="unknown-system",
                    line=line,
                )
            if fields["node_id"] >= config.node_count:
                raise SchemaError(
                    f"line {line}: node {fields['node_id']} out of range "
                    f"(system {system_id} has {config.node_count} nodes)",
                    error_class="node-out-of-range",
                    line=line,
                )

        record_id = fields.get("record_id")
        if self.policy.check_duplicates and record_id is not None:
            if record_id in self._seen_ids:
                if repairing:
                    fields["record_id"] = None
                    self._note_repair("dropped-duplicate-id")
                    repaired = True
                else:
                    raise SchemaError(
                        f"line {line}: duplicate record_id {record_id}",
                        error_class="duplicate-record-id",
                        line=line,
                    )
            else:
                self._seen_ids.add(record_id)

        try:
            record = FailureRecord(**fields)
        except (ValueError, TypeError, KeyError) as exc:
            raise SchemaError(
                f"line {line}: invalid record: {exc}",
                error_class="invalid-record",
                line=line,
            ) from exc
        if repaired:
            self.report.rows_repaired += 1
        return record

    # Lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the quarantine file (idempotent)."""
        if self._quarantine is not None:
            self.report.quarantine_path = str(self._quarantine.path)
            self._quarantine.close()

    def finish(self) -> IngestReport:
        """Close the pipeline and enforce the error budget.

        Raises
        ------
        SchemaError
            When the quarantined fraction exceeds
            :attr:`IngestPolicy.max_error_rate`.
        """
        self.close()
        report = self.report
        # Observability: mirror the row accounting into the active
        # metrics registry (a throwaway when observability is off).
        from repro import obs

        registry = obs.metrics()
        registry.counter("ingest.rows_read").add(report.rows_read)
        registry.counter("ingest.rows_kept").add(report.rows_kept)
        registry.counter("ingest.rows_quarantined").add(report.rows_quarantined)
        registry.counter("ingest.rows_repaired").add(report.rows_repaired)
        if report.rows_read > 0 and report.error_rate > self.policy.max_error_rate:
            raise SchemaError(
                f"{report.source}: error budget exceeded — "
                f"{report.rows_quarantined}/{report.rows_read} rows "
                f"({100 * report.error_rate:.1f}%) quarantined, policy allows "
                f"{100 * self.policy.max_error_rate:.1f}%",
                error_class="error-budget-exceeded",
            )
        return report
