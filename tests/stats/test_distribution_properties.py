"""Property-based tests for distribution laws."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.stats.distributions import Exponential, Gamma, LogNormal, Weibull

positive = st.floats(min_value=0.05, max_value=50.0)
shapes = st.floats(min_value=0.3, max_value=4.0)
scales = st.floats(min_value=0.01, max_value=1e5)


@st.composite
def distributions(draw):
    kind = draw(st.sampled_from(["exp", "weibull", "gamma", "lognormal"]))
    if kind == "exp":
        return Exponential(scale=draw(scales))
    if kind == "weibull":
        return Weibull(shape=draw(shapes), scale=draw(scales))
    if kind == "gamma":
        return Gamma(shape=draw(shapes), scale=draw(scales))
    return LogNormal(mu=draw(st.floats(min_value=-3, max_value=8)),
                     sigma=draw(st.floats(min_value=0.1, max_value=2.5)))


@settings(max_examples=80, deadline=None)
@given(distributions(), st.floats(min_value=0.01, max_value=20.0))
def test_cdf_in_unit_interval(dist, multiple):
    x = dist.median * multiple
    value = float(dist.cdf(x))
    assert 0.0 <= value <= 1.0


@settings(max_examples=80, deadline=None)
@given(distributions())
def test_median_bisects(dist):
    assert float(dist.cdf(dist.median)) == np.float64(0.5).item() or abs(
        float(dist.cdf(dist.median)) - 0.5
    ) < 1e-6


@settings(max_examples=80, deadline=None)
@given(distributions(), st.floats(min_value=0.1, max_value=5.0),
       st.floats(min_value=1.01, max_value=10.0))
def test_cdf_monotone(dist, multiple, step):
    a = dist.median * multiple
    b = a * step
    assert float(dist.cdf(b)) >= float(dist.cdf(a)) - 1e-12


@settings(max_examples=80, deadline=None)
@given(distributions())
def test_mean_positive_and_finite(dist):
    assert np.isfinite(dist.mean)
    assert dist.mean > 0
    assert np.isfinite(dist.variance)
    assert dist.variance >= 0


@settings(max_examples=50, deadline=None)
@given(distributions(), st.integers(min_value=0, max_value=2**31))
def test_samples_in_support(dist, seed):
    generator = np.random.Generator(np.random.PCG64(seed))
    sample = dist.sample(generator, 50)
    assert np.all(sample >= 0)
    assert np.all(np.isfinite(sample))


@settings(max_examples=50, deadline=None)
@given(shapes, scales)
def test_weibull_hazard_monotone_matches_shape(shape, scale):
    dist = Weibull(shape=shape, scale=scale)
    xs = np.array([0.5, 1.0, 2.0]) * dist.median
    hazards = np.asarray(dist.hazard(xs), dtype=float)
    if shape < 0.99:
        assert hazards[0] >= hazards[1] >= hazards[2]
    elif shape > 1.01:
        assert hazards[0] <= hazards[1] <= hazards[2]


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.4, max_value=2.5), scales,
       st.integers(min_value=0, max_value=1000))
def test_weibull_fit_roundtrip_property(shape, scale, seed):
    from repro.stats.fitting import fit_weibull

    dist = Weibull(shape=shape, scale=scale)
    generator = np.random.Generator(np.random.PCG64(seed))
    sample = dist.sample(generator, 2000)
    fit = fit_weibull(sample[sample > 0])
    assert fit.distribution.shape > 0
    # Loose roundtrip: within 15% for n=2000 across the whole range.
    assert abs(fit.distribution.shape - shape) / shape < 0.15
