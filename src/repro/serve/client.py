"""Minimal HTTP clients for the serve test/bench/chaos harnesses.

Two flavors over the same tiny contract (GET, JSON body,
``Connection: close``):

- :func:`get` — synchronous, ``http.client`` based; used by the chaos
  campaign drills and tests that issue sequential requests.
- :func:`aget` — asyncio, raw ``open_connection``; used by the bench
  load generator to hold many requests in flight from one thread.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from dataclasses import dataclass
from typing import Optional

__all__ = ["Response", "get", "aget", "wait_ready"]


@dataclass(frozen=True)
class Response:
    """One HTTP exchange, body parsed as JSON when possible."""

    status: int
    body: dict

    def meta(self) -> dict:
        return self.body.get("meta", {}) if isinstance(self.body, dict) else {}


def _parse(status: int, raw: bytes) -> Response:
    try:
        body = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        body = {"raw": raw.decode("utf-8", "replace")}
    return Response(status=status, body=body)


def get(host: str, port: int, path: str, timeout: float = 30.0) -> Response:
    """Blocking GET; raises ``OSError`` on connect/read failure."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return _parse(response.status, response.read())
    finally:
        conn.close()


async def aget(
    host: str, port: int, path: str, timeout: float = 30.0
) -> Response:
    """Async GET over a fresh connection (the server closes after one)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    status = int(status_line[1]) if len(status_line) >= 2 else 0
    return _parse(status, rest)


def wait_ready(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> Optional[Response]:
    """Poll ``/healthz`` until the service answers (or return None)."""
    import time

    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        try:
            return get(host, port, "/healthz", timeout=interval * 10)
        except OSError:
            time.sleep(interval)
    return None
