"""Atomic writers under injected filesystem faults (cleanup-path audit).

Drills the claims in :mod:`repro.resilience.atomic`'s failure
semantics: on any error the staged temp file is removed, the original
target is untouched, and cleanup errors never mask the original one.
"""

from __future__ import annotations

import os

import pytest

from repro.faults.fsfaults import (
    FS_FAULTS_ENV_VAR,
    FsFaultError,
    FsFaults,
    TornWriteError,
    fsfaults_env,
)
from repro.resilience import atomic
from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fs_fault_hook,
)


def _no_tmp_litter(directory):
    return [name for name in os.listdir(directory) if ".tmp" in name] == []


@pytest.fixture()
def arm(tmp_path):
    """Arm an operator against the atomic writers; returns the spec."""

    def _arm(operator, sites=(), **kwargs):
        return FsFaults(
            operator=operator, state_dir=str(tmp_path / "fault-state"),
            sites=tuple(sites), seed=7, **kwargs,
        )

    return _arm


class TestEnvConstantPinned:
    def test_duplicated_env_var_matches_shim(self):
        # atomic.py duplicates the constant to keep its disabled fast
        # path import-free; the two must never drift.
        assert atomic._FS_FAULTS_ENV_VAR == FS_FAULTS_ENV_VAR


class TestTextWriterUnderFaults:
    def test_enospc_leaves_original_untouched(self, tmp_path, arm):
        target = tmp_path / "report.json"
        target.write_text("previous complete artifact")
        with fsfaults_env(arm("enospc", sites=("atomic.text",))):
            with pytest.raises(FsFaultError) as err:
                atomic_write_text(target, "new content")
        assert err.value.errno is not None
        assert target.read_text() == "previous complete artifact"
        assert _no_tmp_litter(tmp_path)

    def test_enospc_with_no_preexisting_file_creates_nothing(
        self, tmp_path, arm
    ):
        target = tmp_path / "never.txt"
        with fsfaults_env(arm("enospc", sites=("atomic.text",))):
            with pytest.raises(FsFaultError):
                atomic_write_text(target, "x")
        assert not target.exists()
        assert _no_tmp_litter(tmp_path)

    def test_fsync_failure_cleans_up(self, tmp_path, arm):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with fsfaults_env(arm("fsync-fail", sites=("atomic.fsync",))):
            with pytest.raises(FsFaultError):
                atomic_write_text(target, "new")
        assert target.read_text() == "old"
        assert _no_tmp_litter(tmp_path)

    def test_torn_write_never_publishes_the_torn_prefix(self, tmp_path, arm):
        # The staged tmp is truncated to a torn prefix before the error
        # fires — atomicity means that prefix must never reach the
        # target.
        target = tmp_path / "out.txt"
        target.write_text("intact")
        with fsfaults_env(arm("torn-write", sites=("atomic.text",))):
            with pytest.raises(TornWriteError):
                atomic_write_text(target, "0123456789" * 100)
        assert target.read_text() == "intact"
        assert _no_tmp_litter(tmp_path)

    def test_slow_io_completes_successfully(self, tmp_path, arm):
        target = tmp_path / "out.txt"
        spec = arm("slow-io", sites=("atomic.text",), slow_seconds=0.01)
        with fsfaults_env(spec):
            atomic_write_text(target, "delayed but fine")
        assert target.read_text() == "delayed but fine"


class TestBytesWriterUnderFaults:
    def test_enospc_leaves_original_untouched(self, tmp_path, arm):
        target = tmp_path / "shard.pkl"
        target.write_bytes(b"previous payload")
        with fsfaults_env(arm("enospc", sites=("atomic.bytes",))):
            with pytest.raises(FsFaultError):
                atomic_write_bytes(target, b"new payload")
        assert target.read_bytes() == b"previous payload"
        assert _no_tmp_litter(tmp_path)

    def test_torn_write_leaves_no_partial_target(self, tmp_path, arm):
        target = tmp_path / "shard.pkl"
        with fsfaults_env(arm("torn-write", sites=("atomic.bytes",))):
            with pytest.raises(TornWriteError):
                atomic_write_bytes(target, b"\x01" * 4096)
        assert not target.exists()
        assert _no_tmp_litter(tmp_path)

    def test_fsync_failure_cleans_up(self, tmp_path, arm):
        target = tmp_path / "shard.pkl"
        with fsfaults_env(arm("fsync-fail", sites=("atomic.fsync",))):
            with pytest.raises(FsFaultError):
                atomic_write_bytes(target, b"payload")
        assert not target.exists()
        assert _no_tmp_litter(tmp_path)


class TestCleanupNeverMasksOriginal:
    def test_unlink_failure_does_not_mask_body_error(
        self, tmp_path, monkeypatch
    ):
        # A sick filesystem failing the cleanup unlink must not replace
        # the original diagnosis.
        target = tmp_path / "out.txt"

        def sick_unlink(self):
            raise OSError("unlink failed: filesystem is sick")

        from pathlib import Path

        monkeypatch.setattr(Path, "unlink", sick_unlink)
        with pytest.raises(RuntimeError, match="original failure"):
            with atomic.atomic_open_text(target) as handle:
                handle.write("x")
                raise RuntimeError("original failure")

    def test_close_failure_on_error_path_does_not_mask(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "out.txt"
        real_open = open

        class ExplodingClose:
            def __init__(self, handle):
                self._handle = handle

            def write(self, text):
                return self._handle.write(text)

            def close(self):
                self._handle.close()
                raise OSError("flush failed: disk full")

            def __getattr__(self, name):
                return getattr(self._handle, name)

        def patched_open(*args, **kwargs):
            return ExplodingClose(real_open(*args, **kwargs))

        monkeypatch.setattr("builtins.open", patched_open)
        with pytest.raises(RuntimeError, match="body failed first"):
            with atomic.atomic_open_text(target) as handle:
                handle.write("x")
                raise RuntimeError("body failed first")

    def test_success_path_close_error_propagates(self, tmp_path, arm):
        # The final flush-and-close is not cleanup: an ENOSPC there is
        # the primary failure and must surface (drilled via the hook
        # that fires at the same point in the sequence).
        target = tmp_path / "out.txt"
        with fsfaults_env(arm("enospc", sites=("atomic.text",))):
            with pytest.raises(FsFaultError):
                atomic_write_json(target, {"k": "v"})
        assert not target.exists()
        assert _no_tmp_litter(tmp_path)


class TestIoWritersUnderFaults:
    def test_csv_writer_enospc_leaves_no_partial_file(self, tmp_path, arm):
        from repro.io.csv_format import write_lanl_csv

        target = tmp_path / "trace.csv"
        with fsfaults_env(arm("enospc", sites=("io.csv",))):
            with pytest.raises(FsFaultError):
                write_lanl_csv([], target)
        assert not target.exists()
        assert _no_tmp_litter(tmp_path)

    def test_jsonl_writer_enospc_leaves_no_partial_file(self, tmp_path, arm):
        from repro.io.jsonl_format import write_jsonl

        target = tmp_path / "trace.jsonl"
        with fsfaults_env(arm("enospc", sites=("io.jsonl",))):
            with pytest.raises(FsFaultError):
                write_jsonl([], target)
        assert not target.exists()
        assert _no_tmp_litter(tmp_path)


class TestDisabledFastPath:
    def test_hook_is_noop_when_disarmed(self, tmp_path):
        fs_fault_hook("atomic.text", tmp_path / "x")

    def test_hook_performs_write_when_disarmed(self, tmp_path):
        target = tmp_path / "out.txt"
        with target.open("w") as handle:
            fs_fault_hook(
                "journal.append", target, write=handle.write, data="line\n"
            )
        assert target.read_text() == "line\n"
