"""Supervised generation: chaos drills, resumable runs, worker clamping.

The acceptance drill for the fault-tolerant execution path: inject
worker crashes/hangs/failures into a parallel generation and require
the final trace to be byte-identical to an uninjected serial run —
the RNG-stream contract makes retried shards indistinguishable from
first-try shards.
"""

from __future__ import annotations

import warnings

import pytest

from repro.faults import chaos_env, make_chaos
from repro.resilience import RetryPolicy, ShardJournal
from repro.synth import SupervisionConfig, TraceGenerator

from tests.synth.test_equivalence import assert_traces_identical

FAST = SupervisionConfig(
    policy=RetryPolicy(base_delay=0.01, max_delay=0.05, max_attempts=3)
)


class TestAcceptanceChaosDrill:
    def test_two_worker_kills_leave_full_trace_identical(self, full_trace):
        """The issue's acceptance criterion: >= 2 worker crashes during a
        22-system workers=4 generation; the run completes, the trace is
        record-identical to the serial run, and the report names every
        retried shard with its backoff schedule."""
        spec = make_chaos("kill-worker", times=2)
        generator = TraceGenerator(seed=1)
        with warnings.catch_warnings():
            # workers=4 oversubscribes small CI hosts by design.
            warnings.simplefilter("ignore", RuntimeWarning)
            with chaos_env(spec):
                chaotic = generator.generate(workers=4, supervision=FAST)
        assert spec.injections() >= 2
        assert_traces_identical(full_trace, chaotic)
        report = generator.last_run_report
        assert report is not None and report.ok
        retried = report.retried_shards
        assert retried, "injected crashes must surface as retried shards"
        for shard in retried:
            assert shard.attempts[0].outcome == "crash"
            assert shard.attempts[0].backoff is not None
            assert shard.backoff_schedule(), shard.shard
            assert shard.attempts[-1].outcome == "ok"

    def test_hung_worker_recovered(self, small_trace):
        spec = make_chaos("hang-worker", times=1, hang_seconds=600.0)
        generator = TraceGenerator(seed=5)
        supervision = SupervisionConfig(
            policy=FAST.policy, shard_timeout=2.0
        )
        with chaos_env(spec):
            trace = generator.generate(
                [2, 13], workers=2, supervision=supervision
            )
        assert_traces_identical(small_trace, trace)
        outcomes = [
            attempt.outcome
            for shard in generator.last_run_report.shards.values()
            for attempt in shard.attempts
        ]
        assert "timeout" in outcomes

    def test_flaky_shard_retried(self, small_trace):
        spec = make_chaos("flaky-shard", times=2)
        generator = TraceGenerator(seed=5)
        with chaos_env(spec):
            trace = generator.generate([2, 13], workers=2, supervision=FAST)
        assert_traces_identical(small_trace, trace)
        assert generator.last_run_report.retried_shards

    def test_bare_parallel_run_raises_instead_of_skipping(self):
        # Without explicit supervision, a shard that fails past every
        # retry must raise — not return a trace silently missing a
        # system — mirroring the bare serial path.
        spec = make_chaos("flaky-shard", times=1000, shards=("system-2",))
        generator = TraceGenerator(seed=5)
        with chaos_env(spec):
            with pytest.raises(RuntimeError, match="system-2.*ChaosError"):
                generator.generate([2, 13], workers=2)

    def test_serial_chaos_injects_and_degrades(self):
        # The chaos hook sits on the per-shard execution point, so a
        # --workers 1 drill injects too (not a silent plain run).
        spec = make_chaos("flaky-shard", times=1)
        generator = TraceGenerator(seed=5)
        with chaos_env(spec):
            trace = generator.generate([2], supervision=FAST)
        assert spec.injections() == 1
        assert_traces_identical(TraceGenerator(seed=5).generate([2]), trace)
        report = generator.last_run_report
        assert [s.shard for s in report.degraded_shards] == ["system-2"]

    def test_exhausted_shard_becomes_structured_skip(self):
        # An unbounded injection budget on one shard defeats retries
        # *and* the scalar fallback: the breaker must open and the run
        # must complete without that system instead of raising.
        spec = make_chaos("flaky-shard", times=1000, shards=("system-2",))
        generator = TraceGenerator(seed=5)
        supervision = SupervisionConfig(
            policy=RetryPolicy(base_delay=0.0, jitter=0.0, max_attempts=2),
            failure_threshold=1,
        )
        with chaos_env(spec):
            trace = generator.generate(
                [2, 13], workers=2, supervision=supervision
            )
        assert {r.system_id for r in trace.records} == {13}
        report = generator.last_run_report
        assert not report.ok
        assert [s.shard for s in report.skipped_shards] == ["system-2"]
        stages = [a.stage for a in report.shards["system-2"].attempts]
        assert "scalar" in stages, "must try the scalar fallback before skipping"


class TestResume:
    def test_resume_skips_journaled_shards(self, tmp_path):
        run_dir = tmp_path / "run"
        generator = TraceGenerator(seed=5)
        journal = ShardJournal(run_dir, meta=generator.journal_meta())
        partial = generator.generate([2], journal=journal)
        assert len(partial) > 0 and journal.has("system-2")

        resumed_generator = TraceGenerator(seed=5)
        resumed_journal = ShardJournal(
            run_dir, meta=resumed_generator.journal_meta(), resume=True
        )
        calls = []
        original = TraceGenerator._system_columns

        def counting(self, system_id, engine):
            calls.append(system_id)
            return original(self, system_id, engine)

        TraceGenerator._system_columns = counting
        try:
            trace = resumed_generator.generate(
                [2, 13], journal=resumed_journal
            )
        finally:
            TraceGenerator._system_columns = original
        assert calls == [13], "journaled system 2 must not regenerate"
        report = resumed_generator.last_run_report
        assert [s.shard for s in report.resumed_shards] == ["system-2"]
        fresh = TraceGenerator(seed=5).generate([2, 13])
        assert_traces_identical(fresh, trace)

    def test_resume_after_chaos_interrupt_completes(self, tmp_path):
        # Journal under chaos, then finish the run without chaos: the
        # combined trace equals an uninterrupted run.
        run_dir = tmp_path / "run"
        generator = TraceGenerator(seed=5)
        journal = ShardJournal(run_dir, meta=generator.journal_meta())
        spec = make_chaos("kill-worker", times=1)
        with chaos_env(spec):
            generator.generate([2, 13], workers=2, supervision=FAST,
                               journal=journal)
        assert len(journal) == 2
        resumed = ShardJournal(
            run_dir, meta=generator.journal_meta(), resume=True
        )
        trace = TraceGenerator(seed=5).generate([2, 13], journal=resumed)
        assert_traces_identical(TraceGenerator(seed=5).generate([2, 13]), trace)


class TestSerialSupervision:
    def test_serial_degrades_to_scalar_on_vectorized_bug(self, monkeypatch):
        original = TraceGenerator._system_columns

        def broken_vectorized(self, system_id, engine):
            if engine == "vectorized":
                raise RuntimeError("simulated vectorized defect")
            return original(self, system_id, engine)

        monkeypatch.setattr(TraceGenerator, "_system_columns", broken_vectorized)
        generator = TraceGenerator(seed=5)
        trace = generator.generate([2], supervision=FAST)
        assert len(trace) > 0
        report = generator.last_run_report
        assert [s.shard for s in report.degraded_shards] == ["system-2"]

    def test_bare_serial_run_still_raises(self, monkeypatch):
        # Without explicit supervision a genuine bug must propagate,
        # not silently skip a system.
        def always_broken(self, system_id, engine):
            raise RuntimeError("genuine defect")

        monkeypatch.setattr(TraceGenerator, "_system_columns", always_broken)
        with pytest.raises(RuntimeError, match="genuine defect"):
            TraceGenerator(seed=5).generate([2])


class TestWorkerValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            TraceGenerator(seed=5).generate([2], workers=0)

    def test_workers_clamped_to_shards(self):
        generator = TraceGenerator(seed=5)
        assert generator._effective_workers(8, 2) == 2

    def test_single_shard_runs_serial(self):
        generator = TraceGenerator(seed=5)
        assert generator._effective_workers(4, 1) == 1

    def test_oversubscription_warns_and_clamps(self):
        import os

        generator = TraceGenerator(seed=5)
        cap = max(2, os.cpu_count() or 1)
        with pytest.warns(RuntimeWarning, match="cpu_count"):
            assert generator._effective_workers(cap + 50, 64) == cap

    def test_unknown_system_raises_before_any_work(self):
        with pytest.raises(KeyError, match="unknown system"):
            TraceGenerator(seed=5).generate([2, 99], workers=2)
