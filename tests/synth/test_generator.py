"""Tests for the TraceGenerator orchestration."""

import numpy as np
import pytest

from repro.records.inventory import LANL_SYSTEMS
from repro.records.record import RootCause, Workload
from repro.records.validation import validate_trace
from repro.synth import GeneratorConfig, TraceGenerator


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = TraceGenerator(seed=3).generate([2, 13])
        b = TraceGenerator(seed=3).generate([2, 13])
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert ra.start_time == rb.start_time
            assert ra.node_id == rb.node_id
            assert ra.root_cause is rb.root_cause

    def test_different_seed_different_trace(self):
        a = TraceGenerator(seed=3).generate([13])
        b = TraceGenerator(seed=4).generate([13])
        assert [r.start_time for r in a] != [r.start_time for r in b]

    def test_compositional_generation(self):
        """Generating a system alone equals its slice of a larger run."""
        alone = TraceGenerator(seed=3).generate([13])
        together = TraceGenerator(seed=3).generate([2, 13, 17])
        sliced = together.filter_systems([13])
        assert len(alone) == len(sliced)
        for ra, rb in zip(alone, sliced):
            assert ra.start_time == rb.start_time
            assert ra.root_cause is rb.root_cause


class TestOutputValidity:
    def test_trace_validates(self, small_trace):
        assert validate_trace(small_trace) == []

    def test_record_ids_sequential(self, small_trace):
        assert [r.record_id for r in small_trace] == list(range(len(small_trace)))

    def test_all_causes_present_in_big_system(self, system20_trace):
        causes = set(system20_trace.counts_by_cause().keys())
        assert causes == set(RootCause)

    def test_repairs_positive(self, small_trace):
        assert np.all(small_trace.repair_times() > 0)

    def test_failures_within_node_production(self, system20_trace):
        nodes = {
            node.node_id: node
            for node in LANL_SYSTEMS[20].expand_nodes(
                system20_trace.data_start, system20_trace.data_end
            )
        }
        for record in system20_trace:
            assert nodes[record.node_id].in_production(record.start_time)

    def test_graphics_workload_labels(self, system20_trace):
        for record in system20_trace:
            if record.node_id in (21, 22, 23):
                assert record.workload is Workload.GRAPHICS
            else:
                assert record.workload is not Workload.GRAPHICS


class TestCalibratedShape:
    def test_full_trace_size_near_paper(self, full_trace):
        # The paper analyzes ~23000 failures; the synthetic trace should
        # be the same order (not a factor of 2 off).
        assert 18_000 < len(full_trace) < 34_000

    def test_type_e_unknown_fraction_small(self, full_trace):
        from repro.records.system import HardwareType

        sub = full_trace.filter_hardware(HardwareType.E)
        unknown = sub.counts_by_cause().get(RootCause.UNKNOWN, 0)
        assert unknown / len(sub) < 0.07

    def test_graphics_nodes_dominate_system20(self, system20_trace):
        counts = system20_trace.failures_per_node(20)
        graphics = sum(counts[n] for n in (21, 22, 23))
        share = graphics / sum(counts.values())
        assert 0.10 < share < 0.30  # paper: ~20%

    def test_empty_system_allowed(self):
        # A generator over a config with zero rate yields a valid trace.
        config = GeneratorConfig()
        config.rate_per_proc_year = {hw: 0.0 for hw in config.rate_per_proc_year}
        trace = TraceGenerator(seed=1, config=config).generate([2])
        assert len(trace) == 0


class TestAblationSwitches:
    def test_bursts_off_removes_zero_gaps(self):
        config = GeneratorConfig(bursts_enabled=False)
        trace = TraceGenerator(seed=2, config=config).generate([19])
        gaps = trace.interarrival_times()
        assert np.mean(gaps == 0.0) < 0.01

    def test_bursts_on_creates_zero_gaps(self):
        trace = TraceGenerator(seed=2).generate([19])
        gaps = trace.interarrival_times()
        assert np.mean(gaps == 0.0) > 0.15

    def test_diurnal_off_flattens_hours(self):
        from repro.records.timeutils import hour_of_day

        config = GeneratorConfig(diurnal_enabled=False)
        trace = TraceGenerator(seed=2, config=config).generate([7])
        hours = np.bincount(
            [hour_of_day(r.start_time) for r in trace], minlength=24
        )
        assert hours.max() / hours.min() < 1.5

    def test_node_sigma_zero_reduces_dispersion(self):
        # Use system 7 (1024 nodes, ~5 failures per node) so per-node
        # counts are large enough for the dispersion index to register
        # the lognormal heterogeneity above Poisson noise.
        base = dict(bursts_enabled=False, jitter_enabled=False, diurnal_enabled=False)
        uniform = TraceGenerator(
            seed=2, config=GeneratorConfig(node_sigma=0.0, **base)
        ).generate([7])
        heterogeneous = TraceGenerator(
            seed=2, config=GeneratorConfig(node_sigma=0.5, **base)
        ).generate([7])

        def dispersion(trace):
            counts = np.array(list(trace.failures_per_node(7).values()), dtype=float)
            return counts.var() / counts.mean()

        assert dispersion(heterogeneous) > 1.5 * dispersion(uniform)
