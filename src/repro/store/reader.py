"""Reading a sharded columnar store out-of-core.

:class:`ColumnarStore` memory-maps per-shard column files and yields
bounded-size :class:`~repro.store.schema.ColumnBatch` chunks, pruning
whole shards whose manifest statistics cannot satisfy the predicate
(*pushdown*).  Peak memory is one chunk's worth of columns, never the
trace — the out-of-core contract the RSS-capped tests enforce.

Record order: shards hold one system each, sorted by
``(start_time, node_id)``.  :meth:`ColumnarStore.iter_records` k-way
merges the admitted shards on ``(start_time, system_id, node_id,
shard, row)``, which reproduces the generator's global
``lexsort((node, system, start))`` order exactly — including the
stable tie-breaks — so a store round-trip is record-for-record
``repr``-identical to the list-backed path.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.records.codes import CAUSE_VOCAB, DETAIL_VOCAB, WORKLOAD_VOCAB
from repro.records.record import FailureRecord
from repro.records.trace import FailureTrace
from repro.store.manifest import (
    MANIFEST_NAME,
    SHARDS_DIR,
    Manifest,
    Predicate,
    ShardInfo,
    StoreError,
)
from repro.store.schema import (
    COLUMN_DTYPES,
    COLUMN_NAMES,
    NO_RECORD_ID,
    ColumnBatch,
    schema_digest,
)
from repro.store.writer import column_file_name

__all__ = ["ColumnarStore", "ScanStats", "verify_store"]

#: Default rows per read chunk (~2 MB across the full row footprint).
DEFAULT_BATCH_ROWS = 65536

#: Columns a predicate needs to evaluate its row mask.
_PREDICATE_COLUMNS = ("start_time", "system_id")


@dataclass
class ScanStats:
    """Pushdown accounting for one scan (and the CLI's proof of it)."""

    shards_scanned: int = 0
    shards_pruned: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0

    def describe(self) -> str:
        return (
            f"shards scanned={self.shards_scanned} "
            f"pruned={self.shards_pruned}; "
            f"rows scanned={self.rows_scanned} "
            f"matched={self.rows_matched}"
        )


@dataclass
class _ShardCursor:
    """Lazily-opened memory maps of one shard's column files."""

    shard: ShardInfo
    paths: Dict[str, Path]
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def column(self, name: str) -> np.ndarray:
        array = self.arrays.get(name)
        if array is None:
            array = np.load(self.paths[name], mmap_mode="r")
            self.arrays[name] = array
        return array


class ColumnarStore:
    """A read handle on a store directory.

    Opening validates the manifest's schema digest against the running
    code — a store whose categorical codes or dtypes mean something
    else is refused up front (:class:`StoreError`), not misdecoded.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.manifest = Manifest.load(self.root / MANIFEST_NAME)
        expected = schema_digest()
        if self.manifest.schema_sha256 != expected:
            raise StoreError(
                f"{self.root}: schema digest mismatch "
                f"(store {self.manifest.schema_sha256[:12]}…, "
                f"code {expected[:12]}…); the store was written by an "
                "incompatible version"
            )
        #: Cumulative pushdown counters across this handle's scans.
        self.scan = ScanStats()

    def __len__(self) -> int:
        return self.manifest.row_count

    def reset_scan_stats(self) -> None:
        """Zero the pushdown counters (e.g. before a measured scan)."""
        self.scan = ScanStats()

    def _cursor(self, shard: ShardInfo) -> _ShardCursor:
        shards_dir = self.root / SHARDS_DIR
        return _ShardCursor(
            shard=shard,
            paths={
                column: shards_dir / column_file_name(shard.name, column)
                for column in COLUMN_NAMES
            },
        )

    def _admitted(self, predicate: Optional[Predicate]) -> List[ShardInfo]:
        """Shards surviving pushdown; updates counters and metrics."""
        admitted: List[ShardInfo] = []
        for shard in self.manifest.shards:
            if predicate is not None and not predicate.admits_shard(shard):
                self.scan.shards_pruned += 1
            else:
                admitted.append(shard)
        self.scan.shards_scanned += len(admitted)
        registry = obs.metrics()
        registry.counter("store.shards_scanned").add(len(admitted))
        registry.counter("store.shards_pruned").add(
            len(self.manifest.shards) - len(admitted)
        )
        return admitted

    # ------------------------------------------------------------------
    # Batch iteration (the analytics path)
    # ------------------------------------------------------------------

    def iter_batches(
        self,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Predicate] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> Iterator[ColumnBatch]:
        """Yield bounded column chunks, shard by shard.

        ``columns`` projects (default: all); the predicate's own
        columns are read regardless so the row mask can be applied.
        Chunks arrive in shard order — per-shard sorted, *not* globally
        merged (use :meth:`iter_records` for global order).
        """
        if batch_rows < 1:
            raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
        wanted = tuple(columns) if columns is not None else COLUMN_NAMES
        unknown = set(wanted) - set(COLUMN_NAMES)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        needed = tuple(
            dict.fromkeys(
                tuple(wanted)
                + (_PREDICATE_COLUMNS if predicate is not None else ())
            )
        )
        for shard in self._admitted(predicate):
            cursor = self._cursor(shard)
            for offset in range(0, shard.rows, batch_rows):
                chunk = ColumnBatch(
                    {
                        column: np.asarray(
                            cursor.column(column)[offset:offset + batch_rows]
                        )
                        for column in needed
                    }
                )
                self.scan.rows_scanned += len(chunk)
                if predicate is not None:
                    mask = predicate.mask(chunk)
                    matched = int(np.count_nonzero(mask))
                    self.scan.rows_matched += matched
                    if not matched:
                        continue
                    chunk = chunk.take(mask)
                else:
                    self.scan.rows_matched += len(chunk)
                if set(wanted) != set(needed):
                    chunk = ColumnBatch(
                        {column: chunk[column] for column in wanted}
                    )
                yield chunk

    # ------------------------------------------------------------------
    # Record iteration (the equivalence path)
    # ------------------------------------------------------------------

    def _shard_tuples(
        self,
        seq: int,
        shard: ShardInfo,
        predicate: Optional[Predicate],
        batch_rows: int,
    ) -> Iterator[Tuple]:
        """One shard's rows as sortable key/value tuples, in order."""
        cursor = self._cursor(shard)
        for offset in range(0, shard.rows, batch_rows):
            chunk = {
                column: np.asarray(
                    cursor.column(column)[offset:offset + batch_rows]
                )
                for column in COLUMN_NAMES
            }
            n = len(chunk["start_time"])
            self.scan.rows_scanned += n
            indices = range(n)
            if predicate is not None:
                mask = predicate.mask(
                    ColumnBatch(
                        {c: chunk[c] for c in _PREDICATE_COLUMNS}
                    )
                )
                matched = int(np.count_nonzero(mask))
                self.scan.rows_matched += matched
                if not matched:
                    continue
                indices = np.nonzero(mask)[0]
            else:
                self.scan.rows_matched += n
            starts = chunk["start_time"].tolist()
            ends = chunk["end_time"].tolist()
            systems = chunk["system_id"].tolist()
            nodes = chunk["node_id"].tolist()
            causes = chunk["root_cause"].tolist()
            details = chunk["low_level_cause"].tolist()
            workloads = chunk["workload"].tolist()
            record_ids = chunk["record_id"].tolist()
            for i in indices:
                yield (
                    (starts[i], systems[i], nodes[i], seq, offset + i),
                    ends[i],
                    causes[i],
                    details[i],
                    workloads[i],
                    record_ids[i],
                )

    def iter_records(
        self,
        predicate: Optional[Predicate] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> Iterator[FailureRecord]:
        """Yield records in global trace order, lazily.

        Record IDs: an ``explicit`` store yields the stored IDs; an
        ``implicit`` store yields the global read position — identical
        to the generator's numbering — unless a predicate filters rows,
        in which case IDs are ``None`` (positions in the *filtered*
        stream would silently disagree with the full trace's).
        """
        if predicate is not None and predicate.is_null():
            predicate = None
        admitted = self._admitted(predicate)
        streams = [
            self._shard_tuples(seq, shard, predicate, batch_rows)
            for seq, shard in enumerate(admitted)
        ]
        implicit = self.manifest.record_ids == "implicit"
        number_rows = implicit and predicate is None
        for position, item in enumerate(heapq.merge(*streams)):
            key, end, cause, detail, workload, record_id = item
            start, system_id, node_id = key[0], key[1], key[2]
            if number_rows:
                resolved: Optional[int] = position
            elif implicit:
                resolved = None
            else:
                resolved = None if record_id == NO_RECORD_ID else record_id
            yield FailureRecord(
                start_time=start,
                end_time=end,
                system_id=system_id,
                node_id=node_id,
                root_cause=CAUSE_VOCAB[cause],
                low_level_cause=DETAIL_VOCAB[detail] if detail >= 0 else None,
                workload=WORKLOAD_VOCAB[workload],
                record_id=resolved,
            )

    def to_trace(self, predicate: Optional[Predicate] = None) -> FailureTrace:
        """Materialize a :class:`FailureTrace` (the list-backed bridge)."""
        return FailureTrace(
            list(self.iter_records(predicate)),
            systems=self.manifest.systems or None,
            data_start=self.manifest.data_start,
            data_end=self.manifest.data_end,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def info(self) -> Dict[str, object]:
        """A JSON-able summary for ``repro store info``."""
        manifest = self.manifest
        size = 0
        for shard in manifest.shards:
            for column in COLUMN_NAMES:
                path = (
                    self.root / SHARDS_DIR / column_file_name(shard.name, column)
                )
                if path.exists():
                    size += path.stat().st_size
        return {
            "root": str(self.root),
            "rows": manifest.row_count,
            "shards": len(manifest.shards),
            "columns": list(manifest.columns),
            "record_ids": manifest.record_ids,
            "schema_sha256": manifest.schema_sha256,
            "format_version": manifest.format_version,
            "systems": sorted(manifest.systems),
            "data_start": manifest.data_start,
            "data_end": manifest.data_end,
            "bytes": size,
            "meta": dict(sorted(manifest.meta.items())),
        }

    def verify(self, deep: bool = True) -> List[str]:
        """Check the store against its manifest; return problems.

        Shallow: every column file exists with the manifest's row count
        and the schema dtype (catches truncation — a torn ``.npy`` has
        the wrong byte length for its header, or a header shorter than
        the manifest's rows).  Deep adds content sha256 verification,
        min/max statistics recomputation, and the per-shard sort
        invariant.
        """
        problems: List[str] = []
        total = 0
        for shard in self.manifest.shards:
            total += shard.rows
            cursor = self._cursor(shard)
            for column in COLUMN_NAMES:
                path = cursor.paths[column]
                if not path.exists():
                    problems.append(f"shard {shard.name}: missing {path.name}")
                    continue
                try:
                    array = np.load(path, mmap_mode="r")
                except Exception as exc:
                    problems.append(
                        f"shard {shard.name}: unreadable {path.name}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    continue
                if array.shape != (shard.rows,):
                    problems.append(
                        f"shard {shard.name}: {path.name} has shape "
                        f"{array.shape}, manifest says ({shard.rows},)"
                    )
                    continue
                if array.dtype != COLUMN_DTYPES[column]:
                    problems.append(
                        f"shard {shard.name}: {path.name} has dtype "
                        f"{array.dtype}, schema says {COLUMN_DTYPES[column]}"
                    )
                    continue
                if deep:
                    digest = hashlib.sha256(path.read_bytes()).hexdigest()
                    expected = shard.checksums.get(column)
                    if expected is not None and digest != expected:
                        problems.append(
                            f"shard {shard.name}: {path.name} content "
                            "sha256 mismatch (torn or modified)"
                        )
            if deep and not problems:
                starts = np.asarray(cursor.column("start_time"))
                nodes = np.asarray(cursor.column("node_id"))
                systems = np.asarray(cursor.column("system_id"))
                for column, array in (
                    ("start_time", starts),
                    ("end_time", np.asarray(cursor.column("end_time"))),
                    ("system_id", systems),
                    ("node_id", nodes),
                ):
                    low, high = shard.stats[column]
                    if len(array) and (
                        array.min() != low or array.max() != high
                    ):
                        problems.append(
                            f"shard {shard.name}: {column} bounds "
                            f"[{array.min()}, {array.max()}] disagree with "
                            f"manifest [{low}, {high}]"
                        )
                if len(systems) and systems.min() != systems.max():
                    problems.append(
                        f"shard {shard.name}: spans multiple systems "
                        f"({systems.min()}..{systems.max()})"
                    )
                if len(starts) > 1:
                    order = np.lexsort((nodes, starts))
                    if not np.array_equal(order, np.arange(len(starts))):
                        problems.append(
                            f"shard {shard.name}: rows are not sorted by "
                            "(start_time, node_id)"
                        )
        if total != self.manifest.row_count:
            problems.append(
                f"manifest row_count {self.manifest.row_count} != "
                f"sum of shard rows {total}"
            )
        return problems


def verify_store(root, deep: bool = True) -> List[str]:
    """Open-and-verify helper that also catches manifest-level damage."""
    try:
        store = ColumnarStore(root)
    except StoreError as exc:
        return [str(exc)]
    return store.verify(deep=deep)
