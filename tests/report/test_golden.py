"""Golden-artifact regression tests for the paper's tables and figures.

The default-seed synthetic trace is deterministic, so the headline
numbers behind Table 2/3 and Figures 1-7 are frozen as JSON under
``tests/report/golden/``.  Any change to the generator, the RNG stream
layout, or an analysis that shifts these artifacts must show up as an
explicit golden diff — not slip through the statistical range checks.

Comparison is tolerance-based, not exact: counts may drift up to 1%
and derived statistics up to 2% (platform float differences can move a
handful of events across bin or threshold boundaries), while structural
facts — fit rankings, lifecycle classes, rendered Table 3 — must match
exactly.

To regenerate after an intentional change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/report/test_golden.py

then commit the rewritten files with a note on why the numbers moved.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.interarrival import (
    node_interarrivals,
    split_eras,
    system_interarrivals,
)
from repro.analysis.lifecycle import classify_lifecycle, monthly_failures
from repro.analysis.pernode import node_count_study, node_share
from repro.analysis.periodicity import periodicity_study
from repro.analysis.rates import failure_rates
from repro.analysis.repair import repair_fit_study, repair_statistics_by_cause
from repro.analysis.rootcause import (
    breakdown_by_hardware_type,
    downtime_breakdown_by_hardware_type,
)
from repro.records.record import HIGH_LEVEL_CAUSES
from repro.report import render_table3
from repro.report.paper import ERA_BOUNDARY
from repro.resilience import atomic_write_text
from repro.synth import TraceGenerator

GOLDEN_SEED = 1
GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_JSON = GOLDEN_DIR / f"paper_artifacts_seed{GOLDEN_SEED}.json"
GOLDEN_TABLE3 = GOLDEN_DIR / "table3.txt"

#: Relative tolerances by kind; see module docstring.
COUNT_RTOL = 0.01
STAT_RTOL = 0.02
#: Percentages and ratios near zero need an absolute escape hatch.
ABS_TOL = 0.25


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(seed=GOLDEN_SEED).generate()


def compute_artifacts(trace) -> dict:
    """The golden summary statistics of every table/figure artifact."""
    table2 = [
        {
            "label": row.label,
            "n": row.n,
            "mean_min": row.mean,
            "median_min": row.median,
            "squared_cv": row.squared_cv,
        }
        for row in repair_statistics_by_cause(trace)
    ]
    fig1 = {
        panel: {
            label: {
                cause.value: breakdown.percent(cause)
                for cause in HIGH_LEVEL_CAUSES
            }
            for label, breakdown in breakdowns.items()
        }
        for panel, breakdowns in (
            ("failures", breakdown_by_hardware_type(trace)),
            ("downtime", downtime_breakdown_by_hardware_type(trace)),
        )
    }
    fig2 = {
        str(rate.system_id): {
            "per_year": rate.per_year,
            "per_year_per_proc": rate.per_year_per_proc,
        }
        for rate in failure_rates(trace)
    }
    count_study = node_count_study(trace, 20)
    fig3 = {
        "graphics_share": node_share(trace, 20, (21, 22, 23)),
        "fit_ranking": [fit.name for fit in count_study.fits],
    }
    fig4 = {
        str(system_id): {
            "classified": str(classify_lifecycle(monthly_failures(trace, system_id))),
            "total_failures": sum(monthly_failures(trace, system_id).totals),
        }
        for system_id in (5, 19)
    }
    periodicity = periodicity_study(trace)
    fig5 = {
        "peak_trough_ratio": periodicity.peak_trough_ratio,
        "weekday_weekend_ratio": periodicity.weekday_weekend_ratio,
        "peak_hour": periodicity.peak_hour,
        "trough_hour": periodicity.trough_hour,
        "monday_spike": periodicity.monday_spike,
    }
    system20 = trace.filter_systems([20])
    early, late = split_eras(system20, ERA_BOUNDARY)
    fig6 = {}
    for panel, study in (
        ("node_early", node_interarrivals(early, 20, 22)),
        ("node_late", node_interarrivals(late, 20, 22)),
        ("system_early", system_interarrivals(early, 20)),
        ("system_late", system_interarrivals(late, 20)),
    ):
        fig6[panel] = {
            "n": study.n,
            "squared_cv": study.summary.squared_cv,
            "best_fit": study.fits[0].name,
        }
    fig7 = {"fit_ranking": [fit.name for fit in repair_fit_study(trace)]}
    return {
        "seed": GOLDEN_SEED,
        "n_records": len(trace),
        "table2": table2,
        "fig1": fig1,
        "fig2": fig2,
        "fig3": fig3,
        "fig4": fig4,
        "fig5": fig5,
        "fig6": fig6,
        "fig7": fig7,
    }


def _assert_close(path: str, got, want) -> None:
    """Recursive golden comparison with kind-appropriate tolerances."""
    if isinstance(want, dict):
        assert isinstance(got, dict), f"{path}: expected mapping"
        assert set(got) == set(want), (
            f"{path}: keys changed {sorted(set(got) ^ set(want))}"
        )
        for key in want:
            _assert_close(f"{path}.{key}", got[key], want[key])
    elif isinstance(want, list):
        assert isinstance(got, list) and len(got) == len(want), (
            f"{path}: length {len(got)} != golden {len(want)}"
        )
        for index, (g, w) in enumerate(zip(got, want)):
            _assert_close(f"{path}[{index}]", g, w)
    elif isinstance(want, bool) or isinstance(want, str):
        assert got == want, f"{path}: {got!r} != golden {want!r}"
    elif isinstance(want, int):
        # Counts: integer-valued, allowed to drift by COUNT_RTOL.
        limit = max(abs(want) * COUNT_RTOL, 1.0)
        assert abs(got - want) <= limit, (
            f"{path}: count {got} outside golden {want} +- {limit:.0f}"
        )
    elif isinstance(want, float):
        assert got == pytest.approx(want, rel=STAT_RTOL, abs=ABS_TOL), (
            f"{path}: {got} outside golden {want} (rel {STAT_RTOL}, abs {ABS_TOL})"
        )
    else:
        assert got == want, f"{path}: {got!r} != golden {want!r}"


def _regen_requested() -> bool:
    return bool(os.environ.get("REPRO_REGEN_GOLDEN"))


def test_paper_artifacts_match_golden(trace):
    artifacts = compute_artifacts(trace)
    if _regen_requested():
        GOLDEN_DIR.mkdir(exist_ok=True)
        # Atomic write: an interrupted regen must not leave a truncated
        # golden file that every later run silently diffs against.
        atomic_write_text(
            GOLDEN_JSON, json.dumps(artifacts, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {GOLDEN_JSON}")
    assert GOLDEN_JSON.exists(), (
        f"missing golden file {GOLDEN_JSON}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_JSON.read_text(encoding="utf-8"))
    _assert_close("artifacts", artifacts, golden)


def test_table3_matches_golden():
    # Table 3 is literature metadata — static text, compared exactly.
    rendered = render_table3()
    if _regen_requested():
        GOLDEN_DIR.mkdir(exist_ok=True)
        atomic_write_text(GOLDEN_TABLE3, rendered + "\n")
        pytest.skip(f"regenerated {GOLDEN_TABLE3}")
    assert GOLDEN_TABLE3.exists(), (
        f"missing golden file {GOLDEN_TABLE3}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    assert rendered + "\n" == GOLDEN_TABLE3.read_text(encoding="utf-8")
