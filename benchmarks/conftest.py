"""Shared bench fixtures.

Every bench consumes the same full synthetic LANL trace (seed
:data:`BENCH_SEED`), generated once per session.  Benches print the
reproduced paper artifact (run with ``-s`` to see it) and assert the
paper's *shape* claims — fit rankings, hazard directions, ratios — not
absolute counts.

The whole directory is skipped when ``pytest-benchmark`` is not
installed (e.g. a minimal CI image): the ``benchmark`` fixture comes
from that plugin, so nothing here can run without it.
"""

from __future__ import annotations

import pytest

pytest.importorskip(
    "pytest_benchmark", reason="benchmarks require pytest-benchmark"
)

from repro.synth import TraceGenerator

#: One seed for every bench, shared so the session-scoped trace and the
#: per-bench generator workloads measure the same records.
BENCH_SEED = 1


@pytest.fixture(scope="session")
def bench_seed():
    """The shared generator seed for all benchmarks."""
    return BENCH_SEED


@pytest.fixture(scope="session")
def trace(bench_seed):
    """The full 22-system synthetic LANL trace."""
    return TraceGenerator(seed=bench_seed).generate()


@pytest.fixture(scope="session")
def system20(trace):
    """System 20, the paper's reference system for Figures 3 and 6."""
    return trace.filter_systems([20])
