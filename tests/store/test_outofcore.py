"""Out-of-core analytics: a million-record store under a hard memory cap.

The store's reason to exist: analysis over traces that do not fit in
memory.  These tests generate a scaled LANL inventory (>= 1M failure
records), then run the streaming analytics in a *subprocess* whose
address space is capped with ``resource.setrlimit(RLIMIT_AS, ...)`` —
an enforced ceiling, not an honor-system assertion.  A negative
control proves the cap is binding: materializing the same store into
``FailureRecord`` objects dies with ``MemoryError`` under the very
limit the streaming path sails through.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.store import ColumnarStore, Predicate, summarize_store
from repro.synth import TraceGenerator
from repro.synth.scenario import scaled_lanl_systems

REPO_ROOT = Path(__file__).resolve().parents[2]
# Node counts x38 pushes the 27.8k-record LANL trace past one million
# records (~33 MB on disk) while keeping generation under ~20 s.
SCALE = float(os.environ.get("REPRO_OUTOFCORE_SCALE", "38"))
SEED = 7
# Streaming analytics peak near ~90 MB RSS regardless of store size;
# materializing 1M records needs >400 MB.  384 MB separates the two
# with margin on both sides.
CAP_MB = 384

pytestmark = pytest.mark.skipif(
    sys.platform != "linux", reason="RLIMIT_AS semantics are Linux-specific"
)


@pytest.fixture(scope="module")
def big_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("outofcore") / "store"
    generator = TraceGenerator(seed=SEED, systems=scaled_lanl_systems(SCALE))
    manifest = generator.generate_store(root)
    assert manifest.row_count >= 1_000_000, (
        f"scale {SCALE} produced only {manifest.row_count} records; "
        "raise REPRO_OUTOFCORE_SCALE"
    )
    return root


def _run_capped(store_root: Path, body: str) -> subprocess.CompletedProcess:
    """Run ``body`` in a child python with RLIMIT_AS capped."""
    script = textwrap.dedent(
        f"""
        import resource, sys
        cap = {CAP_MB} * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
        sys.path.insert(0, {str(REPO_ROOT / "src")!r})
        root = {str(store_root)!r}
        """
    ) + textwrap.dedent(body)
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )


class TestUnderMemoryCap:
    def test_full_summary_streams_under_cap(self, big_store):
        result = _run_capped(
            big_store,
            """
            import json
            from repro.store import ColumnarStore, summarize_store
            summary = summarize_store(ColumnarStore(root))
            print(json.dumps(summary.to_dict()))
            """,
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["rows"] >= 1_000_000
        assert payload["scan"]["shards_pruned"] == 0

    def test_pushdown_analysis_under_cap(self, big_store):
        result = _run_capped(
            big_store,
            """
            import json
            from repro.store import ColumnarStore, Predicate, summarize_store
            store = ColumnarStore(root)
            summary = summarize_store(
                store, predicate=Predicate.build(systems=[19, 20])
            )
            print(json.dumps(summary.to_dict()))
            """,
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert set(payload["counts_by_system"]) == {"19", "20"}
        # single-system shards: every other system's shards get pruned
        assert payload["scan"]["shards_pruned"] >= 1
        assert (
            payload["scan"]["shards_scanned"]
            + payload["scan"]["shards_pruned"]
            == len(ColumnarStore(big_store).manifest.shards)
        )
        # capped-subprocess numbers must equal the uncapped in-process
        # ones: the cap changes nothing but peak memory
        reference = summarize_store(
            ColumnarStore(big_store),
            predicate=Predicate.build(systems=[19, 20]),
        )
        assert payload == reference.to_dict()

    def test_streaming_export_under_cap(self, big_store, tmp_path):
        out = tmp_path / "slice.csv"
        result = _run_capped(
            big_store,
            f"""
            from repro.store import ColumnarStore, Predicate, export_store
            count = export_store(
                ColumnarStore(root), {str(out)!r},
                predicate=Predicate.build(systems=[19]),
            )
            print(count)
            """,
        )
        assert result.returncode == 0, result.stderr
        exported = int(result.stdout)
        assert exported > 0
        with open(out, "r", encoding="utf-8") as handle:
            lines = sum(1 for _ in handle)
        assert lines == exported + 1  # header


class TestCapIsBinding:
    def test_materializing_records_dies_under_same_cap(self, big_store):
        """Negative control: the limit streaming passes is one the
        materializing path cannot."""
        result = _run_capped(
            big_store,
            """
            from repro.store import ColumnarStore
            trace = ColumnarStore(root).to_trace()
            print(len(trace.records))
            """,
        )
        assert result.returncode != 0
        assert "MemoryError" in result.stderr


class TestScaleCorrectness:
    def test_summary_consistent_with_manifest(self, big_store):
        store = ColumnarStore(big_store)
        summary = summarize_store(store)
        assert summary.rows == store.manifest.row_count
        assert sum(summary.counts_by_system.values()) == summary.rows
        assert sum(summary.counts_by_cause.values()) == summary.rows
        assert summary.start_min >= store.manifest.data_start
        assert summary.start_max < store.manifest.data_end

    def test_batch_rows_do_not_change_the_answer(self, big_store):
        store = ColumnarStore(big_store)
        predicate = Predicate.build(systems=[5])
        small = summarize_store(store, predicate=predicate, batch_rows=1_000)
        large = summarize_store(
            store, predicate=predicate, batch_rows=1_000_000
        )
        assert small.rows == large.rows
        assert small.counts_by_system == large.counts_by_system
        assert small.counts_by_cause == large.counts_by_cause
        assert small.start_min == large.start_min
        assert small.start_max == large.start_max
        # float accumulators are summed in chunk order, so allow for
        # reassociation at batch boundaries
        assert small.repair_mean == pytest.approx(
            large.repair_mean, rel=1e-9
        )
        for cause, hours in small.downtime_by_cause.items():
            assert hours == pytest.approx(
                large.downtime_by_cause[cause], rel=1e-9
            )
