"""Federation: crash-safe append and merge of columnar stores."""

from __future__ import annotations

import json

import pytest

from repro.store import (
    MANIFEST_NAME,
    PREV_MANIFEST_NAME,
    STAGING_DIR,
    ColumnarStore,
    StoreError,
    StoreWriter,
    append_trace,
    merge_stores,
    store_from_trace,
    verify_store,
)
from repro.store.federate import _merged_systems
from repro.store.schema import batch_from_records
from repro.synth import TraceGenerator


def _store_bytes(root):
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _record_set(root):
    return sorted(repr(r) for r in ColumnarStore(root).iter_records())


@pytest.fixture(scope="module")
def split(tmp_path_factory, small_trace):
    """The small trace split per system into two source stores."""
    base = tmp_path_factory.mktemp("federate")
    parts = {}
    for system_id in (2, 13):
        root = base / f"sys{system_id}"
        store_from_trace(
            small_trace.filter_systems([system_id]), root, shard_rows=100
        )
        parts[system_id] = root
    return parts


class TestAppend:
    def test_append_grows_the_store(self, tmp_path, split, small_trace):
        root = tmp_path / "st"
        sys2 = small_trace.filter_systems([2])
        sys13 = small_trace.filter_systems([13])
        store_from_trace(sys2, root, shard_rows=100)
        manifest = append_trace(root, sys13)
        assert manifest.row_count == len(small_trace)
        assert verify_store(root, deep=True) == []
        assert not (root / STAGING_DIR).exists()
        assert manifest.meta["appends"] == 1
        assert (root / PREV_MANIFEST_NAME).exists()

    def test_appended_records_all_read_back(self, tmp_path, split, small_trace):
        root = tmp_path / "st"
        store_from_trace(small_trace.filter_systems([2]), root, shard_rows=100)
        append_trace(root, small_trace.filter_systems([13]))
        expected = sorted(repr(r) for r in small_trace.records)
        assert _record_set(root) == expected

    def test_append_accepts_a_store_directory(self, tmp_path, split):
        root = tmp_path / "st"
        store_from_trace(
            ColumnarStore(split[2]).to_trace(), root, shard_rows=100
        )
        manifest = append_trace(root, split[13])
        assert manifest.row_count == len(ColumnarStore(split[2])) + len(
            ColumnarStore(split[13])
        )
        assert verify_store(root, deep=True) == []

    def test_shard_rows_defaults_to_largest_existing(self, tmp_path, small_trace):
        root = tmp_path / "st"
        store_from_trace(small_trace.filter_systems([2]), root, shard_rows=60)
        manifest = append_trace(root, small_trace.filter_systems([13]))
        new = [s for s in manifest.shards if int(s.stats["system_id"][0]) == 13]
        assert new and max(s.rows for s in new) <= 60

    def test_empty_source_is_a_no_op(self, tmp_path, small_trace):
        root = tmp_path / "st"
        store_from_trace(small_trace, root, shard_rows=100)
        before = _store_bytes(root)
        append_trace(root, small_trace.filter_systems([99]))
        assert _store_bytes(root) == before

    def test_window_extends(self, tmp_path, small_trace):
        root = tmp_path / "st"
        sys2 = small_trace.filter_systems([2])
        store_from_trace(sys2, root, shard_rows=100)
        manifest = append_trace(root, small_trace.filter_systems([13]))
        assert manifest.data_start == min(
            sys2.data_start, small_trace.data_start
        )
        assert manifest.data_end >= sys2.data_end


class TestMerge:
    def test_disjoint_merge_matches_single_import(
        self, tmp_path, split, small_trace
    ):
        reference = tmp_path / "reference"
        store_from_trace(small_trace, reference, shard_rows=100)
        merged = tmp_path / "merged"
        merge_stores(merged, [split[2], split[13]], shard_rows=100)
        # shard files are byte-identical to the single-pass import;
        # only the manifests' meta provenance differs
        ref = _store_bytes(reference)
        got = _store_bytes(merged)
        assert got.keys() == ref.keys()
        diff = {k for k in ref if ref[k] != got[k]}
        assert diff <= {MANIFEST_NAME}
        ref_manifest = json.loads(ref[MANIFEST_NAME])
        got_manifest = json.loads(got[MANIFEST_NAME])
        ref_manifest["meta"] = got_manifest["meta"] = {}
        assert got_manifest == ref_manifest
        assert verify_store(merged, deep=True) == []

    def test_merge_accepts_trace_files(self, tmp_path, split, small_trace):
        from repro.io import write_lanl_csv

        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        write_lanl_csv(small_trace.filter_systems([2]), a)
        write_lanl_csv(small_trace.filter_systems([13]), b)
        from_files = tmp_path / "from-files"
        from_stores = tmp_path / "from-stores"
        merge_stores(from_files, [str(a), str(b)], shard_rows=100)
        merge_stores(from_stores, [split[2], split[13]], shard_rows=100)
        files = _store_bytes(from_files)
        stores = _store_bytes(from_stores)
        assert {k: v for k, v in files.items() if k != MANIFEST_NAME} == {
            k: v for k, v in stores.items() if k != MANIFEST_NAME
        }

    def test_merge_refuses_existing_store(self, tmp_path, split, small_trace):
        out = tmp_path / "out"
        store_from_trace(small_trace, out, shard_rows=100)
        with pytest.raises(StoreError, match="store append"):
            merge_stores(out, [split[2], split[13]])

    def test_merge_refuses_mixed_record_id_modes(
        self, tmp_path, split, small_trace
    ):
        implicit = tmp_path / "implicit"
        writer = StoreWriter(
            implicit,
            systems=small_trace.systems,
            data_start=small_trace.data_start,
            data_end=small_trace.data_end,
            record_ids="implicit",
            shard_rows=100,
        )
        sys13 = small_trace.filter_systems([13])
        writer.append_group(batch_from_records(sys13.records))
        writer.finalize()
        with pytest.raises(StoreError, match="mixed record-id modes"):
            merge_stores(tmp_path / "out", [split[2], implicit])

    def test_merge_needs_a_source(self, tmp_path):
        with pytest.raises(StoreError, match="at least one source"):
            merge_stores(tmp_path / "out", [])

    def test_merged_systems_refuses_conflicts(self, small_trace):
        import dataclasses

        from repro.records.system import HardwareType

        systems = dict(small_trace.systems)
        other_type = (
            HardwareType.A
            if systems[2].hardware_type != HardwareType.A
            else HardwareType.B
        )
        conflicting = {
            2: dataclasses.replace(systems[2], hardware_type=other_type)
        }
        with pytest.raises(StoreError, match="defined differently"):
            _merged_systems(systems, conflicting)

    def test_degraded_source_merge_skips_damage(self, tmp_path, split):
        import shutil

        damaged = tmp_path / "damaged-source"
        shutil.copytree(split[2], damaged)
        victim = next((damaged / "shards").glob("*-node_id.npy"))
        victim.unlink()
        with pytest.raises(StoreError):
            merge_stores(tmp_path / "strict", [damaged, split[13]])
        source = ColumnarStore(damaged, on_damage="skip")
        manifest = merge_stores(
            tmp_path / "lenient", [source, split[13]], shard_rows=100
        )
        assert source.degraded
        assert manifest.row_count == (
            ColumnarStore(split[2]).manifest.row_count
            - source.degraded.rows_skipped
            + ColumnarStore(split[13]).manifest.row_count
        )
        assert verify_store(tmp_path / "lenient", deep=True) == []
