"""CSV reader/writer for failure traces.

See :mod:`repro.io.schema` for the column definitions.  The reader is
tolerant of column order (it uses the header) but strict about values
by default: a malformed row raises
:class:`~repro.io.schema.SchemaError` with the row number, rather than
silently skewing downstream statistics.  Pass an
:class:`~repro.io.policy.IngestPolicy` to quarantine or repair bad rows
instead (dirty real-world exports).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

import csv

from repro.io.common import PathLike, atomic_open_text, open_text
from repro.io.policy import IngestPolicy, IngestReport, RowPipeline
from repro.io.schema import CSV_COLUMNS, SchemaError
from repro.resilience.atomic import fs_fault_hook
from repro.records.inventory import DATA_END, DATA_START, LANL_SYSTEMS
from repro.records.record import FailureRecord, LowLevelCause, RootCause, Workload
from repro.records.system import SystemConfig
from repro.records.trace import FailureTrace

__all__ = ["read_lanl_csv", "write_lanl_csv"]

_WORKLOADS = {workload.value: workload for workload in Workload}
_CAUSES = {cause.value: cause for cause in RootCause}
_LOW_LEVEL = {cause.value: cause for cause in LowLevelCause}


def _parse_fields(row: Mapping[str, str], line: int) -> Dict[str, Any]:
    """Parse one CSV row into FailureRecord field values.

    Every :class:`SchemaError` carries the ``line N:`` prefix — the
    vocabulary errors included, so a bad row is always locatable.
    """
    workload_text = (row.get("workload") or "compute").strip().lower()
    cause_text = (row.get("root_cause") or "unknown").strip().lower()
    low_text = (row.get("low_level_cause") or "").strip().lower()
    if workload_text not in _WORKLOADS:
        raise SchemaError(
            f"line {line}: unknown workload {workload_text!r}",
            error_class="unknown-enum",
            line=line,
        )
    if cause_text not in _CAUSES:
        raise SchemaError(
            f"line {line}: unknown root cause {cause_text!r}",
            error_class="unknown-enum",
            line=line,
        )
    low_level = None
    if low_text:
        if low_text not in _LOW_LEVEL:
            raise SchemaError(
                f"line {line}: unknown low-level cause {low_text!r}",
                error_class="unknown-enum",
                line=line,
            )
        low_level = _LOW_LEVEL[low_text]
    try:
        record_id_text = row.get("record_id", "") or ""
        return dict(
            start_time=float(row["start_time"]),
            end_time=float(row["end_time"]),
            system_id=int(row["system_id"]),
            node_id=int(row["node_id"]),
            workload=_WORKLOADS[workload_text],
            root_cause=_CAUSES[cause_text],
            low_level_cause=low_level,
            record_id=int(record_id_text) if record_id_text else None,
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise SchemaError(
            f"line {line}: malformed row: {exc}",
            error_class="malformed-value",
            line=line,
        ) from exc


def read_lanl_csv(
    path: PathLike,
    systems: Optional[Mapping[int, SystemConfig]] = None,
    data_start: Optional[float] = None,
    data_end: Optional[float] = None,
    policy: Optional[IngestPolicy] = None,
    report: Optional[IngestReport] = None,
) -> FailureTrace:
    """Load a failure trace from a CSV file (``.csv`` or ``.csv.gz``).

    Parameters
    ----------
    path:
        The CSV file.  The first row must be a header naming at least
        ``system_id, node_id, start_time, end_time``.
    systems:
        Inventory to attach; defaults to the LANL Table 1 inventory.
    data_start / data_end:
        Observation window; defaults to the LANL data window.
    policy:
        Optional :class:`~repro.io.policy.IngestPolicy`; without one
        the reader is strict and performs no cross-row checks (the
        historical behavior).
    report:
        Optional :class:`~repro.io.policy.IngestReport` filled in
        place, for callers that want row accounting from this function
        directly (:func:`repro.io.ingest.ingest_trace` wraps this).

    Raises
    ------
    SchemaError
        On a missing header, any malformed row (strict mode), or a
        blown error budget (lenient/repair modes).
    """
    path = Path(path)
    pipeline = RowPipeline(
        policy,
        source=str(path),
        systems=dict(systems) if systems is not None else LANL_SYSTEMS,
        data_start=data_start if data_start is not None else DATA_START,
        data_end=data_end if data_end is not None else DATA_END,
        report=report,
    )
    records = []
    try:
        with open_text(path, "r") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise SchemaError(
                    f"{path}: empty file (no header)", error_class="empty-file"
                )
            missing = {"system_id", "node_id", "start_time", "end_time"} - set(
                reader.fieldnames
            )
            if missing:
                raise SchemaError(
                    f"{path}: header missing required columns {sorted(missing)}",
                    error_class="bad-header",
                )
            for line, row in enumerate(reader, start=2):
                record = pipeline.submit(
                    line, row, lambda row=row, line=line: _parse_fields(row, line)
                )
                if record is not None:
                    records.append(record)
    finally:
        pipeline.close()
    pipeline.finish()
    kwargs = {}
    if data_start is not None:
        kwargs["data_start"] = data_start
    if data_end is not None:
        kwargs["data_end"] = data_end
    if systems is not None:
        kwargs["systems"] = systems
    return FailureTrace(records, **kwargs)


def write_lanl_csv(trace: Union[FailureTrace, Iterable[FailureRecord]], path: PathLike) -> int:
    """Write a trace to a CSV file; returns the number of rows written.

    Timestamps are serialized with ``repr`` so floats round-trip
    exactly; a ``.gz`` suffix writes gzip-compressed text.  The write
    is atomic: an interrupt leaves the previous file (or nothing), not
    a truncated trace.

    A non-trace iterable is consumed lazily, one record at a time —
    exporting a million-record columnar store never materializes the
    records (the RSS-capped out-of-core tests rely on this).
    """
    path = Path(path)
    records = trace.records if isinstance(trace, FailureTrace) else trace
    fs_fault_hook("io.csv", path)
    count = 0
    with atomic_open_text(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for index, record in enumerate(records):
            writer.writerow(
                (
                    record.record_id if record.record_id is not None else index,
                    record.system_id,
                    record.node_id,
                    repr(record.start_time),
                    repr(record.end_time),
                    record.workload.value,
                    record.root_cause.value,
                    record.low_level_cause.value if record.low_level_cause else "",
                )
            )
            count += 1
    return count
