"""Mergeable-sketch laws: merge == single pass, for every sketch type.

The out-of-core report's correctness rests on one algebraic property:
folding a sample chunk-by-chunk (in any grouping) and merging the
partial sketches must equal accumulating the whole sample at once.
Hypothesis drives arbitrary samples and split points through each
sketch; integer-state sketches must agree exactly, float moments to
rounding.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.errors import DegenerateSampleError
from repro.stats.sketch import (
    GroupedCounts,
    GroupedSums,
    LogBucketSketch,
    MomentSketch,
    SampleSketch,
    WindowedCounts,
)

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
nonnegative = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite, min_size=0, max_size=60)
nonneg_samples = st.lists(nonnegative, min_size=0, max_size=60)
keys = st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=60)


def _split(values, fraction):
    cut = int(len(values) * fraction)
    return values[:cut], values[cut:]


def _assert_moments_equal(a: MomentSketch, b: MomentSketch) -> None:
    assert a.count == b.count
    assert a.minimum == b.minimum
    assert a.maximum == b.maximum
    assert math.isclose(a.total, b.total, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(a.mean, b.mean, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(a.m2, b.m2, rel_tol=1e-6, abs_tol=1e-3)


class TestMomentSketch:
    @settings(max_examples=100, deadline=None)
    @given(values=samples, fraction=st.floats(0.0, 1.0))
    def test_merge_equals_single_pass(self, values, fraction):
        left, right = _split(values, fraction)
        a = MomentSketch()
        a.observe(np.asarray(left))
        b = MomentSketch()
        b.observe(np.asarray(right))
        a.merge(b)
        whole = MomentSketch()
        whole.observe(np.asarray(values))
        _assert_moments_equal(a, whole)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(finite, min_size=1, max_size=40), seed=st.integers(0, 2**16))
    def test_order_invariance(self, values, seed):
        shuffled = list(values)
        np.random.Generator(np.random.PCG64(seed)).shuffle(shuffled)
        a = MomentSketch()
        a.observe(np.asarray(values))
        b = MomentSketch()
        b.observe(np.asarray(shuffled))
        _assert_moments_equal(a, b)

    @settings(max_examples=50, deadline=None)
    @given(values=samples)
    def test_empty_merge_is_identity(self, values):
        a = MomentSketch()
        a.observe(np.asarray(values))
        before = a.to_dict()
        a.merge(MomentSketch())
        assert a.to_dict() == before

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(finite, min_size=2, max_size=60))
    def test_matches_numpy_population_moments(self, values):
        sketch = MomentSketch()
        sketch.observe(np.asarray(values))
        data = np.asarray(values)
        assert math.isclose(
            sketch.mean, float(data.mean()), rel_tol=1e-9, abs_tol=1e-9
        )
        assert math.isclose(
            sketch.variance, float(data.var(ddof=0)),
            rel_tol=1e-6, abs_tol=1e-3,
        )

    def test_round_trips(self):
        sketch = MomentSketch()
        sketch.observe(np.asarray([1.0, 2.0, 5.0]))
        assert MomentSketch.from_dict(sketch.to_dict()).to_dict() == sketch.to_dict()
        assert pickle.loads(pickle.dumps(sketch)).to_dict() == sketch.to_dict()


class TestLogBucketSketch:
    @settings(max_examples=100, deadline=None)
    @given(values=nonneg_samples, fraction=st.floats(0.0, 1.0))
    def test_merge_equals_single_pass_exactly(self, values, fraction):
        left, right = _split(values, fraction)
        a = LogBucketSketch()
        a.observe(np.asarray(left))
        b = LogBucketSketch()
        b.observe(np.asarray(right))
        a.merge(b)
        whole = LogBucketSketch()
        whole.observe(np.asarray(values))
        assert np.array_equal(a.counts, whole.counts)
        assert a.minimum == whole.minimum
        assert a.maximum == whole.maximum

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=1e-3, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=60,
    ), q=st.floats(0.0, 1.0))
    def test_quantile_within_pinned_relative_error(self, values, q):
        sketch = LogBucketSketch()
        sketch.observe(np.asarray(values))
        exact = float(np.percentile(np.asarray(values), 100.0 * q))
        got = sketch.quantile(q)
        assert got == pytest.approx(exact, rel=sketch.relative_error * 2 + 1e-12)

    def test_empty_quantile_raises(self):
        with pytest.raises(DegenerateSampleError):
            LogBucketSketch().median

    def test_rejects_negative_values_and_mixed_resolutions(self):
        sketch = LogBucketSketch()
        with pytest.raises(ValueError):
            sketch.observe(np.asarray([-1.0]))
        with pytest.raises(ValueError):
            sketch.merge(LogBucketSketch(buckets_per_decade=8))


class TestGroupedCounts:
    @settings(max_examples=100, deadline=None)
    @given(systems=keys, causes=keys, fraction=st.floats(0.0, 1.0))
    def test_merge_equals_single_pass(self, systems, causes, fraction):
        n = min(len(systems), len(causes))
        systems, causes = systems[:n], causes[:n]
        cut = int(n * fraction)
        a = GroupedCounts()
        a.observe(np.asarray(systems[:cut]), np.asarray(causes[:cut]))
        b = GroupedCounts()
        b.observe(np.asarray(systems[cut:]), np.asarray(causes[cut:]))
        a.merge(b)
        whole = GroupedCounts()
        whole.observe(np.asarray(systems), np.asarray(causes))
        assert a.counts == whole.counts
        assert a.total() == n

    @settings(max_examples=50, deadline=None)
    @given(systems=keys)
    def test_empty_merge_is_identity(self, systems):
        a = GroupedCounts()
        a.observe(np.asarray(systems))
        before = dict(a.counts)
        a.merge(GroupedCounts())
        assert a.counts == before


class TestGroupedSums:
    @settings(max_examples=100, deadline=None)
    @given(weights=nonneg_samples, groups=keys, fraction=st.floats(0.0, 1.0))
    def test_merge_equals_single_pass(self, weights, groups, fraction):
        n = min(len(weights), len(groups))
        weights, groups = weights[:n], groups[:n]
        cut = int(n * fraction)
        a = GroupedSums()
        a.observe(np.asarray(weights[:cut]), np.asarray(groups[:cut]))
        b = GroupedSums()
        b.observe(np.asarray(weights[cut:]), np.asarray(groups[cut:]))
        a.merge(b)
        whole = GroupedSums()
        whole.observe(np.asarray(weights), np.asarray(groups))
        assert set(a.sums) == set(whole.sums)
        for key in whole.sums:
            assert a.sums[key] == pytest.approx(
                whole.sums[key], rel=1e-9, abs=1e-6
            )


class TestWindowedCounts:
    times = st.lists(
        st.floats(min_value=0.0, max_value=999.0,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=60,
    )

    @settings(max_examples=100, deadline=None)
    @given(values=times, fraction=st.floats(0.0, 1.0))
    def test_merge_equals_single_pass_exactly(self, values, fraction):
        left, right = _split(values, fraction)
        a = WindowedCounts(0.0, 100.0, 10)
        a.observe(np.asarray(left))
        b = WindowedCounts(0.0, 100.0, 10)
        b.observe(np.asarray(right))
        a.merge(b)
        whole = WindowedCounts(0.0, 100.0, 10)
        whole.observe(np.asarray(values))
        assert np.array_equal(a.counts, whole.counts)
        assert a.total() == len(values)

    def test_rejects_preorigin_times_and_mismatched_merge(self):
        windows = WindowedCounts(100.0, 10.0, 5)
        with pytest.raises(ValueError, match="precedes origin"):
            windows.observe(np.asarray([99.0]))
        with pytest.raises(ValueError):
            windows.merge(WindowedCounts(0.0, 10.0, 5))

    def test_overflow_clamps_to_last_window(self):
        windows = WindowedCounts(0.0, 10.0, 3)
        windows.observe(np.asarray([1e6]))
        assert windows.counts[-1] == 1


class TestSampleSketch:
    @settings(max_examples=100, deadline=None)
    @given(values=nonneg_samples, fraction=st.floats(0.0, 1.0))
    def test_merge_equals_single_pass(self, values, fraction):
        left, right = _split(values, fraction)
        a = SampleSketch(clamp_epsilon=0.1)
        a.observe(np.asarray(left))
        b = SampleSketch(clamp_epsilon=0.1)
        b.observe(np.asarray(right))
        a.merge(b)
        whole = SampleSketch(clamp_epsilon=0.1)
        whole.observe(np.asarray(values))
        assert a.count == whole.count == len(values)
        assert a.nonpositive == whole.nonpositive
        assert np.array_equal(a.histogram.counts, whole.histogram.counts)
        _assert_moments_equal(a.raw, whole.raw)
        _assert_moments_equal(a.log_clamped, whole.log_clamped)

    @settings(max_examples=50, deadline=None)
    @given(values=nonneg_samples)
    def test_zero_fraction_counts_nonpositive(self, values):
        sketch = SampleSketch(clamp_epsilon=1.0)
        sketch.observe(np.asarray(values))
        if not values:
            with pytest.raises(DegenerateSampleError):
                sketch.zero_fraction
        else:
            expected = sum(1 for v in values if v <= 0) / len(values)
            assert sketch.zero_fraction == expected

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError, match="non-negative"):
            SampleSketch(clamp_epsilon=0.1).observe(np.asarray([-1.0]))

    def test_round_trips(self):
        sketch = SampleSketch(clamp_epsilon=0.1)
        sketch.observe(np.asarray([0.0, 1.0, 250.0]))
        clone = SampleSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        assert pickle.loads(pickle.dumps(sketch)).to_dict() == sketch.to_dict()
