"""The failure record and its categorical vocabulary.

A record mirrors one row of LANL's remedy database as described in
Section 2.3 of the paper: start time, end time, system and node
affected, workload type, and root cause (a high-level category plus an
optional low-level detail such as the hardware component).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = [
    "RootCause",
    "LowLevelCause",
    "Workload",
    "HIGH_LEVEL_CAUSES",
    "FailureRecord",
]


class RootCause(enum.Enum):
    """High-level root-cause categories (Section 2.3).

    The failure classification was developed jointly by LANL hardware
    engineers, administrators and operations staff; a failure whose
    cause was never determined is recorded as UNKNOWN.
    """

    HARDWARE = "hardware"
    SOFTWARE = "software"
    NETWORK = "network"
    ENVIRONMENT = "environment"
    HUMAN = "human"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


#: Display/iteration order used by the paper's figures.
HIGH_LEVEL_CAUSES: Tuple[RootCause, ...] = (
    RootCause.HARDWARE,
    RootCause.SOFTWARE,
    RootCause.NETWORK,
    RootCause.ENVIRONMENT,
    RootCause.HUMAN,
    RootCause.UNKNOWN,
)


class LowLevelCause(enum.Enum):
    """Detailed root-cause information (Section 4, detailed breakdown).

    The real data distinguishes 99 hardware categories; we model the
    ones the paper's analysis names plus coarse catch-alls.  Values are
    grouped by their high-level parent.
    """

    # Hardware details -------------------------------------------------------
    MEMORY = "memory"                    # DIMMs; >10% of ALL failures everywhere
    CPU = "cpu"                          # >50% on type E (design flaw)
    NODE_INTERCONNECT = "node interconnect"
    DISK = "disk"
    POWER_SUPPLY = "power supply"
    FAN = "fan"
    NODE_BOARD = "node board"
    OTHER_HARDWARE = "other hardware"
    # Software details -------------------------------------------------------
    PARALLEL_FILESYSTEM = "parallel filesystem"   # dominant SW cause on type F
    SCHEDULER_SOFTWARE = "scheduler software"     # dominant SW cause on type H
    OPERATING_SYSTEM = "operating system"         # dominant SW cause on type E
    USER_CODE = "user code"
    UNSPECIFIED_SOFTWARE = "unspecified software" # dominant on types D and G
    # Network details --------------------------------------------------------
    SWITCH = "switch"
    CABLE = "cable"
    NIC = "nic"
    # Environment details ----------------------------------------------------
    POWER_OUTAGE = "power outage"
    AC_FAILURE = "a/c failure"
    # Human details ----------------------------------------------------------
    CONFIGURATION = "configuration"
    PROCEDURE = "procedure"

    def __str__(self) -> str:
        return self.value


#: Mapping from a low-level cause to its high-level parent category.
LOW_LEVEL_PARENT = {
    LowLevelCause.MEMORY: RootCause.HARDWARE,
    LowLevelCause.CPU: RootCause.HARDWARE,
    LowLevelCause.NODE_INTERCONNECT: RootCause.HARDWARE,
    LowLevelCause.DISK: RootCause.HARDWARE,
    LowLevelCause.POWER_SUPPLY: RootCause.HARDWARE,
    LowLevelCause.FAN: RootCause.HARDWARE,
    LowLevelCause.NODE_BOARD: RootCause.HARDWARE,
    LowLevelCause.OTHER_HARDWARE: RootCause.HARDWARE,
    LowLevelCause.PARALLEL_FILESYSTEM: RootCause.SOFTWARE,
    LowLevelCause.SCHEDULER_SOFTWARE: RootCause.SOFTWARE,
    LowLevelCause.OPERATING_SYSTEM: RootCause.SOFTWARE,
    LowLevelCause.USER_CODE: RootCause.SOFTWARE,
    LowLevelCause.UNSPECIFIED_SOFTWARE: RootCause.SOFTWARE,
    LowLevelCause.SWITCH: RootCause.NETWORK,
    LowLevelCause.CABLE: RootCause.NETWORK,
    LowLevelCause.NIC: RootCause.NETWORK,
    LowLevelCause.POWER_OUTAGE: RootCause.ENVIRONMENT,
    LowLevelCause.AC_FAILURE: RootCause.ENVIRONMENT,
    LowLevelCause.CONFIGURATION: RootCause.HUMAN,
    LowLevelCause.PROCEDURE: RootCause.HUMAN,
}


class Workload(enum.Enum):
    """Workload type running on the affected node (Section 2.3)."""

    COMPUTE = "compute"
    GRAPHICS = "graphics"
    FRONTEND = "fe"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class FailureRecord:
    """One failure that required a system administrator's attention.

    Records order by ``(start_time, system_id, node_id)``, so a sorted
    list of records is a chronological trace.

    Attributes
    ----------
    start_time:
        When the failure started (seconds since the toolkit epoch;
        see :mod:`repro.records.timeutils`).
    end_time:
        When the node returned to the job mix.  Must be >= start_time.
    system_id:
        The paper's system ID, 1-22.
    node_id:
        Zero-based node index within the system.
    root_cause:
        High-level root-cause category.
    low_level_cause:
        Optional detailed cause (e.g. memory); when present, must be a
        child of ``root_cause``.
    workload:
        Workload type running on the node at failure time.
    record_id:
        Optional stable identifier (assigned by the generator or
        loaded from a file); not used in comparisons beyond ordering.
    """

    start_time: float
    system_id: int = field(compare=True)
    node_id: int = field(compare=True)
    end_time: float = field(compare=False, default=0.0)
    root_cause: RootCause = field(compare=False, default=RootCause.UNKNOWN)
    low_level_cause: Optional[LowLevelCause] = field(compare=False, default=None)
    workload: Workload = field(compare=False, default=Workload.COMPUTE)
    record_id: Optional[int] = field(compare=False, default=None)

    def __post_init__(self) -> None:
        # Coerce to plain Python scalars so numpy types never leak into
        # serialization (repr of np.float64 is not a CSV-safe number).
        object.__setattr__(self, "start_time", float(self.start_time))
        object.__setattr__(self, "end_time", float(self.end_time))
        object.__setattr__(self, "system_id", int(self.system_id))
        object.__setattr__(self, "node_id", int(self.node_id))
        if self.end_time < self.start_time:
            raise ValueError(
                f"end_time {self.end_time} precedes start_time {self.start_time}"
            )
        if self.system_id < 1:
            raise ValueError(f"system_id must be >= 1, got {self.system_id}")
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        if self.low_level_cause is not None:
            parent = LOW_LEVEL_PARENT[self.low_level_cause]
            if parent is not self.root_cause:
                raise ValueError(
                    f"low-level cause {self.low_level_cause} belongs to "
                    f"{parent}, not {self.root_cause}"
                )

    @property
    def repair_time(self) -> float:
        """Downtime in seconds (end_time - start_time)."""
        return self.end_time - self.start_time

    @property
    def repair_minutes(self) -> float:
        """Downtime in minutes — the unit Table 2 and Figure 7 use."""
        return self.repair_time / 60.0

    def with_end_time(self, end_time: float) -> "FailureRecord":
        """A copy of this record with a different end time."""
        return replace(self, end_time=end_time)

    def with_cause(
        self, root_cause: RootCause, low_level_cause: Optional[LowLevelCause] = None
    ) -> "FailureRecord":
        """A copy with an amended root cause (remedy-DB follow-up flow)."""
        return replace(self, root_cause=root_cause, low_level_cause=low_level_cause)
