"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import read_jsonl, read_lanl_csv, write_lanl_csv


@pytest.fixture(scope="module")
def trace_csv(tmp_path_factory):
    """A small trace written to disk once for the read-side commands."""
    from repro.synth import TraceGenerator

    path = tmp_path_factory.mktemp("cli") / "trace.csv"
    trace = TraceGenerator(seed=5).generate([2, 13])
    write_lanl_csv(trace, path)
    return str(path)


class TestGenerate:
    def test_csv_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "out.csv"
        code = main(["generate", "--seed", "5", "--systems", "2,13", "--out", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        loaded = read_lanl_csv(out)
        assert len(loaded) > 50
        assert {record.system_id for record in loaded} == {2, 13}

    def test_jsonl_format(self, tmp_path):
        out = tmp_path / "out.jsonl"
        code = main(["generate", "--seed", "5", "--systems", "2",
                     "--format", "jsonl", "--out", str(out)])
        assert code == 0
        assert len(read_jsonl(out)) > 10

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--seed", "9", "--systems", "13", "--out", str(a)])
        main(["generate", "--seed", "9", "--systems", "13", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestReadSideCommands:
    def test_summary(self, trace_csv, capsys):
        assert main(["summary", trace_csv]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "root causes:" in out
        assert "TTR:" in out

    def test_report_table2(self, trace_csv, capsys):
        assert main(["report", trace_csv, "--artifact", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_report_fig5(self, trace_csv, capsys):
        assert main(["report", trace_csv, "--artifact", "fig5"]) == 0
        assert "peak/trough" in capsys.readouterr().out

    def test_availability(self, trace_csv, capsys):
        assert main(["availability", trace_csv]) == 0
        out = capsys.readouterr().out
        assert "MTBF (h)" in out

    def test_validate_ok(self, trace_csv, capsys):
        assert main(["validate", trace_csv]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_validate_bad_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "system_id,node_id,start_time,end_time\n20,4000,1e8,1.1e8\n"
            "20,4001,1.0e8,1.2e8\n"
        )
        assert main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_missing_trace_and_no_synthetic(self, trace_csv):
        with pytest.raises(SystemExit):
            main(["summary"])

    def test_schema(self, capsys):
        assert main(["schema"]) == 0
        assert "system_id" in capsys.readouterr().out


class TestOutliersAndCompare:
    def test_outliers_on_synthetic_system20(self, tmp_path, capsys):
        from repro.synth import TraceGenerator

        path = tmp_path / "s20.csv"
        write_lanl_csv(TraceGenerator(seed=1).generate([20]), path)
        assert main(["outliers", str(path), "--system", "20"]) == 0
        out = capsys.readouterr().out
        assert "Outlier nodes of system 20" in out
        assert "22" in out  # a graphics node is flagged

    def test_outliers_clean_system(self, trace_csv, capsys):
        assert main(["outliers", trace_csv, "--system", "13",
                     "--threshold", "0.9999"]) == 0
        out = capsys.readouterr().out
        assert "bulk model" in out

    def test_compare(self, tmp_path, capsys):
        from repro.synth import TraceGenerator

        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        write_lanl_csv(TraceGenerator(seed=1).generate([13]), a)
        write_lanl_csv(TraceGenerator(seed=2).generate([13]), b)
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "share[hardware]" in out
        assert "largest relative difference" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_report_defaults_to_all_artifacts(self, trace_csv, capsys):
        # Exit 1: this 2-system trace cannot render the system-20
        # figures, and `--artifact all` reports success only when
        # every section is ok.  The report still renders end to end.
        assert main(["report", trace_csv]) == 1
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 3" in out
        assert "fig3     DEGRADED" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
