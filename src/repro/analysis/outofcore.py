"""Out-of-core paper analysis: one streaming pass, mergeable state.

:class:`PaperAccumulator` folds bounded column chunks from
:meth:`~repro.store.reader.ColumnarStore.iter_batches` into the
mergeable sketches of :mod:`repro.stats.sketch`, carrying *everything*
the full paper report needs — per-system/per-cause counts and downtime
(Figures 1-2), per-node counts and first-seen workloads for system 20
(Figure 3), monthly lifecycle grids (Figure 4), hour/weekday bins
(Figure 5), interarrival-gap segments for the node/system x early/late
panels (Figure 6), and repair-time sample sketches per cause and per
system (Table 2, Figure 7).  Peak memory is one chunk plus this fixed
state, independent of the trace size.

Exactness: everything held as integer counts is exact, so the sections
derived from counts alone render byte-identical to the materialized
path.  Float sums (downtime, moments) are exact in the counting sense
but follow chunk/merge order, agreeing to last-ulp rounding; sketched
quantiles carry the histogram's pinned relative-error bound
(:data:`~repro.stats.sketch.QUANTILE_RELATIVE_ERROR`).

Two accumulators over *adjacent* row ranges combine with
:meth:`PaperAccumulator.merge_ordered` — order matters only for the
order-sensitive state (first-seen workloads, boundary interarrival
gaps), which is why the parallel scan hands each worker a contiguous
slice of the manifest and folds results back in manifest order.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.analysis.errors import DegenerateSampleError
from repro.analysis.lifecycle import LifecycleCurve
from repro.analysis.pernode import NodeCountStudy, node_count_study_from_counts
from repro.analysis.periodicity import PeriodicityStudy
from repro.analysis.rates import SystemRate, variability_from_rates
from repro.analysis.repair import RepairByCauseRow
from repro.analysis.rootcause import FIGURE1_TYPES, CauseBreakdown, _breakdown
from repro.records.codes import CAUSE_CODE, CAUSE_VOCAB, WORKLOAD_VOCAB
from repro.records.record import HIGH_LEVEL_CAUSES, RootCause, Workload
from repro.records.timeutils import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MONTH,
    _EPOCH_WEEKDAY,
    from_datetime,
)
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.supervisor import supervised_map
from repro.stats.sketch import GroupedCounts, GroupedSums, SampleSketch
from repro.stats.streamfit import sketch_empirical
from repro.store.manifest import StoreError
from repro.store.reader import DEFAULT_BATCH_ROWS, ColumnarStore

__all__ = [
    "PaperAccumulator",
    "GapSegment",
    "scan_store",
    "DEFAULT_ERA_BOUNDARY",
    "REPORT_COLUMNS",
]

#: Columns one report pass needs per chunk.
REPORT_COLUMNS = (
    "start_time", "end_time", "system_id", "node_id", "root_cause",
    "workload",
)

#: The paper's era split for Figure 6 (2000-01-01, as in repro.report.paper).
DEFAULT_ERA_BOUNDARY = from_datetime(_dt.datetime(2000, 1, 1))

#: Clamp epsilons matching the materialized fits (fit_all zero_policy
#: "clamp"): 1 s for interarrival gaps, 0.1 min for repair times.
GAP_CLAMP_SECONDS = 1.0
REPAIR_CLAMP_MINUTES = 0.1

_N_CAUSES = len(CAUSE_VOCAB)

#: Table 2's column order (paper order, aggregate last).
_TABLE2_ORDER = (
    RootCause.UNKNOWN,
    RootCause.HUMAN,
    RootCause.ENVIRONMENT,
    RootCause.NETWORK,
    RootCause.SOFTWARE,
    RootCause.HARDWARE,
)


class GapSegment:
    """Streaming interarrival gaps of one ordered record stream.

    Feed it each chunk's (already sorted) start times for one Figure 6
    panel; it tracks the first/last timestamp and sketches every
    consecutive gap, including the gaps that straddle chunk — and,
    via :meth:`merge_after` — worker boundaries.
    """

    def __init__(self) -> None:
        self.count = 0
        self.first: Optional[float] = None
        self.last: Optional[float] = None
        self.gaps = SampleSketch(clamp_epsilon=GAP_CLAMP_SECONDS)

    def observe_sorted(self, starts: np.ndarray) -> None:
        """Fold one chunk's sorted start times for this stream."""
        starts = np.asarray(starts, dtype=float)
        if starts.size == 0:
            return
        if self.count:
            self.gaps.observe(np.asarray([float(starts[0]) - self.last]))
        else:
            self.first = float(starts[0])
        if starts.size > 1:
            self.gaps.observe(np.diff(starts))
        self.last = float(starts[-1])
        self.count += int(starts.size)

    def merge_after(self, other: "GapSegment") -> None:
        """Append a segment covering strictly later rows."""
        if other.count == 0:
            return
        if self.count:
            self.gaps.observe(np.asarray([other.first - self.last]))
        else:
            self.first = other.first
        self.gaps.merge(other.gaps)
        self.last = other.last
        self.count += other.count


class _LifecycleState:
    """Monthly (window x cause) counts for one Figure 4 system."""

    def __init__(self, origin: float, end: float) -> None:
        self.origin = float(origin)
        self.months = int((end - origin) // SECONDS_PER_MONTH) + 1
        self.grid = np.zeros((self.months, _N_CAUSES), dtype=np.int64)
        #: Smallest start time seen; a value before ``origin`` makes the
        #: finisher raise exactly as month_index would mid-iteration.
        self.min_start = np.inf

    def observe(self, starts: np.ndarray, causes: np.ndarray) -> None:
        if starts.size == 0:
            return
        low = float(starts.min())
        if low < self.min_start:
            self.min_start = low
        keep = starts >= self.origin
        if not keep.all():
            starts = starts[keep]
            causes = causes[keep]
        if starts.size == 0:
            return
        months = np.minimum(
            ((starts - self.origin) // SECONDS_PER_MONTH).astype(np.int64),
            self.months - 1,
        )
        flat = months * _N_CAUSES + causes
        self.grid += np.bincount(flat, minlength=self.grid.size).reshape(
            self.grid.shape
        )

    def merge(self, other: "_LifecycleState") -> None:
        self.grid += other.grid
        self.min_start = min(self.min_start, other.min_start)


class PaperAccumulator:
    """Mergeable bounded-memory state for the full paper report.

    Build with :meth:`from_store`, feed chunks to :meth:`observe`, and
    read the analysis objects off the ``*_rows``/``*_study`` finishers.
    The constructor parameters pin the figure targets (system 20's
    per-node view, systems 5/19's lifecycle curves, the node-22 era
    split) to the paper's defaults.
    """

    def __init__(
        self,
        systems,
        data_start: float,
        data_end: float,
        era_boundary: float = DEFAULT_ERA_BOUNDARY,
        fig3_system: int = 20,
        fig4_systems: Tuple[int, ...] = (5, 19),
        fig6_system: int = 20,
        fig6_node: int = 22,
    ) -> None:
        self.systems = dict(systems)
        self.data_start = float(data_start)
        self.data_end = float(data_end)
        self.era_boundary = float(era_boundary)
        self.fig3_system = int(fig3_system)
        self.fig4_systems = tuple(int(s) for s in fig4_systems)
        self.fig6_system = int(fig6_system)
        self.fig6_node = int(fig6_node)

        self.rows = 0
        # Figure 5: hour-of-day / day-of-week bins (exact ints).
        self.hourly = np.zeros(24, dtype=np.int64)
        self.weekday = np.zeros(7, dtype=np.int64)
        # Figures 1-2: counts and downtime per (system, cause).
        self.cause_counts = GroupedCounts()
        self.cause_downtime = GroupedSums()
        # Table 2 / Figure 7: repair-minute sketches.
        self.repairs = SampleSketch(clamp_epsilon=REPAIR_CLAMP_MINUTES)
        self.repair_by_cause: Dict[int, SampleSketch] = {}
        self.repair_by_system: Dict[int, SampleSketch] = {}
        # Figure 3: per-node counts + first-seen workloads (system 20).
        self.node_counts = GroupedCounts()
        self.node_workloads: Dict[int, int] = {}
        # Figure 4: monthly grids for the systems present in inventory.
        self.lifecycle: Dict[int, _LifecycleState] = {}
        for system_id in self.fig4_systems:
            config = self.systems.get(system_id)
            if config is not None:
                start, end = config.production_window(
                    self.data_start, self.data_end
                )
                self.lifecycle[system_id] = _LifecycleState(start, end)
        # Figure 6: four gap segments (node/system x early/late).
        self.gap_node_early = GapSegment()
        self.gap_node_late = GapSegment()
        self.gap_system_early = GapSegment()
        self.gap_system_late = GapSegment()

    @classmethod
    def from_store(
        cls, store: ColumnarStore, era_boundary: float = DEFAULT_ERA_BOUNDARY
    ) -> "PaperAccumulator":
        """An empty accumulator configured from a store's manifest."""
        return cls(
            store.manifest.systems,
            store.manifest.data_start,
            store.manifest.data_end,
            era_boundary=era_boundary,
        )

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------

    def observe(self, chunk) -> None:
        """Fold one column chunk (in row order) into the state."""
        n = len(chunk)
        if not n:
            return
        starts = np.asarray(chunk["start_time"], dtype=float)
        ends = np.asarray(chunk["end_time"], dtype=float)
        systems = np.asarray(chunk["system_id"], dtype=np.int64)
        nodes = np.asarray(chunk["node_id"], dtype=np.int64)
        causes = np.asarray(chunk["root_cause"], dtype=np.int64)
        workloads = np.asarray(chunk["workload"], dtype=np.int64)
        self.rows += n

        # Figure 5: same modular arithmetic as timeutils.hour_of_day /
        # day_of_week, vectorized.
        hours = ((starts % SECONDS_PER_DAY) // SECONDS_PER_HOUR).astype(
            np.int64
        )
        self.hourly += np.bincount(hours, minlength=24)
        days = (
            (starts // SECONDS_PER_DAY).astype(np.int64) + _EPOCH_WEEKDAY
        ) % 7
        self.weekday += np.bincount(days, minlength=7)

        # Figures 1-2.
        self.cause_counts.observe(systems, causes)
        repairs = ends - starts
        self.cause_downtime.observe(repairs, systems, causes)

        # Table 2 / Figure 7 (minutes, the paper's repair unit).
        minutes = repairs / 60.0
        self.repairs.observe(minutes)
        for code in np.unique(causes).tolist():
            sketch = self.repair_by_cause.get(int(code))
            if sketch is None:
                sketch = SampleSketch(clamp_epsilon=REPAIR_CLAMP_MINUTES)
                self.repair_by_cause[int(code)] = sketch
            sketch.observe(minutes[causes == code])
        for system_id in np.unique(systems).tolist():
            sketch = self.repair_by_system.get(int(system_id))
            if sketch is None:
                sketch = SampleSketch(clamp_epsilon=REPAIR_CLAMP_MINUTES)
                self.repair_by_system[int(system_id)] = sketch
            sketch.observe(minutes[systems == system_id])

        # Figure 3: per-node counts and first-seen workload, system 20.
        mask3 = systems == self.fig3_system
        if mask3.any():
            fig3_nodes = nodes[mask3]
            self.node_counts.observe(fig3_nodes)
            fig3_workloads = workloads[mask3]
            unique_nodes, first_index = np.unique(
                fig3_nodes, return_index=True
            )
            for node_id, index in zip(
                unique_nodes.tolist(), first_index.tolist()
            ):
                self.node_workloads.setdefault(
                    int(node_id), int(fig3_workloads[index])
                )

        # Figure 4.
        for system_id, state in self.lifecycle.items():
            mask4 = systems == system_id
            if mask4.any():
                state.observe(starts[mask4], causes[mask4])

        # Figure 6: the four era/view segments.
        mask6 = systems == self.fig6_system
        if mask6.any():
            seg_starts = starts[mask6]
            seg_nodes = nodes[mask6]
            early = (seg_starts >= self.data_start) & (
                seg_starts < self.era_boundary
            )
            late = (seg_starts >= self.era_boundary) & (
                seg_starts < self.data_end
            )
            node_mask = seg_nodes == self.fig6_node
            self.gap_node_early.observe_sorted(seg_starts[node_mask & early])
            self.gap_node_late.observe_sorted(seg_starts[node_mask & late])
            self.gap_system_early.observe_sorted(seg_starts[early])
            self.gap_system_late.observe_sorted(seg_starts[late])

    def merge_ordered(self, other: "PaperAccumulator") -> None:
        """Fold in an accumulator covering strictly *later* rows.

        The order-sensitive state — first-seen workloads (left wins)
        and the interarrival gap that straddles the boundary — assumes
        ``other`` scanned a later contiguous slice of the manifest.
        """
        if (
            other.data_start != self.data_start
            or other.data_end != self.data_end
            or other.era_boundary != self.era_boundary
        ):
            raise ValueError(
                "cannot merge accumulators configured over different "
                "data windows or era boundaries"
            )
        self.rows += other.rows
        self.hourly += other.hourly
        self.weekday += other.weekday
        self.cause_counts.merge(other.cause_counts)
        self.cause_downtime.merge(other.cause_downtime)
        self.repairs.merge(other.repairs)
        for code, sketch in other.repair_by_cause.items():
            mine = self.repair_by_cause.get(code)
            if mine is None:
                self.repair_by_cause[code] = sketch.copy()
            else:
                mine.merge(sketch)
        for system_id, sketch in other.repair_by_system.items():
            mine = self.repair_by_system.get(system_id)
            if mine is None:
                self.repair_by_system[system_id] = sketch.copy()
            else:
                mine.merge(sketch)
        self.node_counts.merge(other.node_counts)
        for node_id, code in other.node_workloads.items():
            self.node_workloads.setdefault(node_id, code)
        for system_id, state in self.lifecycle.items():
            state.merge(other.lifecycle[system_id])
        self.gap_node_early.merge_after(other.gap_node_early)
        self.gap_node_late.merge_after(other.gap_node_late)
        self.gap_system_early.merge_after(other.gap_system_early)
        self.gap_system_late.merge_after(other.gap_system_late)

    # ------------------------------------------------------------------
    # Finishers: exact analysis objects from the streamed state
    # ------------------------------------------------------------------

    def system_failures(self, system_id: int) -> int:
        """Exact failure count for one system."""
        return sum(
            self.cause_counts.get(system_id, code)
            for code in range(_N_CAUSES)
        )

    def failure_rates(self) -> List[SystemRate]:
        """Figure 2 rates — same floats as the materialized path."""
        rates: List[SystemRate] = []
        for system_id in sorted(self.systems.keys()):
            config = self.systems[system_id]
            years = config.production_years(self.data_start, self.data_end)
            failures = self.system_failures(system_id)
            per_year = failures / years
            rates.append(
                SystemRate(
                    system_id=system_id,
                    hardware_type=config.hardware_type,
                    failures=failures,
                    production_years=years,
                    per_year=per_year,
                    per_year_per_proc=per_year / config.processor_count,
                    processors=config.processor_count,
                    nodes=config.node_count,
                )
            )
        return rates

    def variability(self) -> Dict[str, float]:
        """Figure 2's CV footer from the exact rates."""
        return variability_from_rates(self.failure_rates())

    def cause_breakdowns(
        self,
    ) -> Tuple[Dict[str, CauseBreakdown], Dict[str, CauseBreakdown]]:
        """Figure 1's (failure-count, downtime) breakdown mappings."""
        by_count: Dict[str, CauseBreakdown] = {}
        by_downtime: Dict[str, CauseBreakdown] = {}
        for hardware_type in FIGURE1_TYPES:
            group = sorted(
                system_id
                for system_id, config in self.systems.items()
                if config.hardware_type == hardware_type
            )
            counts = {
                cause: float(
                    sum(
                        self.cause_counts.get(system_id, CAUSE_CODE[cause])
                        for system_id in group
                    )
                )
                for cause in HIGH_LEVEL_CAUSES
            }
            if sum(counts.values()) == 0:  # mirrors len(sub) == 0 skip
                continue
            downtime = {
                cause: sum(
                    self.cause_downtime.get(system_id, CAUSE_CODE[cause])
                    for system_id in group
                )
                for cause in HIGH_LEVEL_CAUSES
            }
            by_count[hardware_type.value] = _breakdown(
                hardware_type.value, counts
            )
            by_downtime[hardware_type.value] = _breakdown(
                hardware_type.value, downtime
            )
        everything = sorted(
            {key[0] for key in self.cause_counts.counts}
            | set(self.systems.keys())
        )
        overall_counts = {
            cause: float(
                sum(
                    self.cause_counts.get(system_id, CAUSE_CODE[cause])
                    for system_id in everything
                )
            )
            for cause in HIGH_LEVEL_CAUSES
        }
        overall_downtime = {
            cause: sum(
                self.cause_downtime.get(system_id, CAUSE_CODE[cause])
                for system_id in everything
            )
            for cause in HIGH_LEVEL_CAUSES
        }
        by_count["All systems"] = _breakdown("All systems", overall_counts)
        by_downtime["All systems"] = _breakdown(
            "All systems", overall_downtime
        )
        return by_count, by_downtime

    def failures_per_node(self) -> Dict[int, int]:
        """Figure 3(a) counts, zero-filled over the inventory."""
        config = self.systems.get(self.fig3_system)
        if config is None:
            raise KeyError(f"system {self.fig3_system} not in inventory")
        counts = {node_id: 0 for node_id in range(config.node_count)}
        for (node_id,), count in self.node_counts.counts.items():
            counts[node_id] = counts.get(node_id, 0) + count
        return counts

    def node_share(self, node_ids: Sequence[int]) -> float:
        """Figure 3(a)'s graphics-node share of system failures."""
        counts = self.failures_per_node()
        total = sum(counts.values())
        if total == 0:
            raise DegenerateSampleError(
                f"system {self.fig3_system} has no failures"
            )
        return sum(counts.get(node_id, 0) for node_id in node_ids) / total

    def node_count_study(self) -> NodeCountStudy:
        """Figure 3(b)'s compute-node count study (bit-identical)."""
        config = self.systems.get(self.fig3_system)
        if config is None:
            raise KeyError(f"system {self.fig3_system} not in inventory")
        workloads: Dict[int, Workload] = {
            node_id: WORKLOAD_VOCAB[code]
            for node_id, code in self.node_workloads.items()
        }
        return node_count_study_from_counts(
            config,
            self.data_start,
            self.data_end,
            self.fig3_system,
            self.failures_per_node(),
            workloads,
        )

    def lifecycle_curves(self) -> List[Tuple[int, LifecycleCurve]]:
        """Figure 4's per-system monthly curves (exact ints)."""
        curves: List[Tuple[int, LifecycleCurve]] = []
        for system_id in self.fig4_systems:
            state = self.lifecycle.get(system_id)
            if state is None:
                raise KeyError(system_id)
            if state.min_start < state.origin:
                # The record iteration of monthly_failures would have
                # hit this record first (traces are start-sorted).
                raise ValueError(
                    f"timestamp {state.min_start} precedes origin "
                    f"{state.origin}"
                )
            totals = state.grid.sum(axis=1)
            curves.append(
                (
                    system_id,
                    LifecycleCurve(
                        system_id=system_id,
                        months=state.months,
                        totals=tuple(int(v) for v in totals),
                        by_cause={
                            cause: tuple(
                                int(v)
                                for v in state.grid[:, CAUSE_CODE[cause]]
                            )
                            for cause in HIGH_LEVEL_CAUSES
                        },
                    ),
                )
            )
        return curves

    def periodicity(self) -> PeriodicityStudy:
        """Figure 5's study from the exact hour/weekday bins."""
        hourly = self.hourly
        weekday = self.weekday
        if hourly.min() == 0 or weekday.min() == 0:
            raise DegenerateSampleError(
                "trace too small for a periodicity study (empty bins)"
            )
        weekday_mean = float(np.mean(weekday[:5]))
        weekend_mean = float(np.mean(weekday[5:]))
        return PeriodicityStudy(
            hourly=tuple(int(v) for v in hourly),
            weekday=tuple(int(v) for v in weekday),
            peak_trough_ratio=float(hourly.max() / hourly.min()),
            weekday_weekend_ratio=weekday_mean / weekend_mean,
            monday_spike=float(weekday[0] / np.mean(weekday[1:5])),
        )

    def _repair_row(
        self, cause: Optional[RootCause], sketch: SampleSketch
    ) -> RepairByCauseRow:
        summary = sketch_empirical(sketch)
        return RepairByCauseRow(
            cause=cause,
            n=summary.count,
            mean=summary.mean,
            median=summary.median,
            std=summary.std,
            squared_cv=summary.squared_cv,
        )

    def repair_rows(self) -> List[RepairByCauseRow]:
        """Table 2's rows (paper cause order, aggregate last)."""
        rows: List[RepairByCauseRow] = []
        for cause in _TABLE2_ORDER:
            sketch = self.repair_by_cause.get(CAUSE_CODE[cause])
            if sketch is not None and sketch.count >= 2:
                rows.append(self._repair_row(cause, sketch))
        if self.repairs.count < 2:
            raise DegenerateSampleError(
                "trace has too few records for repair statistics"
            )
        rows.append(self._repair_row(None, self.repairs))
        return rows

    def repairs_by_system(
        self, minimum_records: int = 5
    ) -> Dict[int, RepairByCauseRow]:
        """Figure 7(b,c)'s per-system repair rows."""
        result: Dict[int, RepairByCauseRow] = {}
        for system_id in sorted(self.repair_by_system):
            sketch = self.repair_by_system[system_id]
            if sketch.count >= minimum_records:
                result[system_id] = self._repair_row(None, sketch)
        return result

    def interarrival_segments(self) -> List[Tuple[str, str, GapSegment]]:
        """Figure 6's panels as ``(panel, label, segment)``, in order.

        Mirrors ``split_eras``'s window validation before returning.
        """
        if self.era_boundary <= self.data_start:
            raise ValueError(
                f"empty window [{self.data_start}, {self.era_boundary})"
            )
        if self.data_end <= self.era_boundary:
            raise ValueError(
                f"empty window [{self.era_boundary}, {self.data_end})"
            )
        node_label = f"system {self.fig6_system} node {self.fig6_node}"
        system_label = f"system {self.fig6_system} (system-wide)"
        return [
            ("(a) node view, early era", node_label, self.gap_node_early),
            ("(b) node view, late era", node_label, self.gap_node_late),
            ("(c) system view, early era", system_label,
             self.gap_system_early),
            ("(d) system view, late era", system_label, self.gap_system_late),
        ]


def _scan_shard_group(payload) -> PaperAccumulator:
    """Worker task: fold one contiguous manifest slice (picklable)."""
    root, indices, batch_rows, era_boundary = payload
    store = ColumnarStore(root, on_damage="raise")
    accumulator = PaperAccumulator.from_store(store, era_boundary=era_boundary)
    for chunk in store.iter_batches(
        columns=REPORT_COLUMNS, batch_rows=batch_rows, shards=list(indices)
    ):
        accumulator.observe(chunk)
    return accumulator


def scan_store(
    store: ColumnarStore,
    *,
    deadline: Optional[Deadline] = None,
    on_deadline: str = "raise",
    workers: Optional[int] = None,
    batch_rows: int = DEFAULT_BATCH_ROWS,
    era_boundary: float = DEFAULT_ERA_BOUNDARY,
) -> Tuple[PaperAccumulator, Optional[dict]]:
    """One report pass over ``store``; returns ``(accumulator, partial)``.

    Serial by default.  ``workers > 1`` (without a deadline) splits the
    healthy shards into contiguous manifest slices, folds each in a
    supervised worker process via
    :func:`~repro.resilience.supervisor.supervised_map`, and merges the
    partial accumulators back in manifest order — the associative-merge
    step that keeps order-sensitive state correct.  A deadline forces
    the serial path (chunk-boundary budget checks need one scan loop);
    with ``on_deadline="partial"`` a blown budget stops the scan cleanly
    and the second element describes the truncation, mirroring
    :func:`repro.store.analytics.summarize_store`.
    """
    if on_deadline not in ("raise", "partial"):
        raise ValueError(
            f"on_deadline must be 'raise' or 'partial', got {on_deadline!r}"
        )
    store.reset_scan_stats()
    accumulator = PaperAccumulator.from_store(store, era_boundary=era_boundary)
    if workers is not None and workers > 1 and deadline is None:
        healthy = store._healthy(store._admitted(None))
        if healthy:
            position = {
                shard.name: index
                for index, shard in enumerate(store.manifest.shards)
            }
            indices = np.asarray([position[shard.name] for shard in healthy])
            groups = [
                group for group in np.array_split(
                    indices, min(int(workers), len(healthy))
                )
                if group.size
            ]
            keys = [f"group-{index}" for index in range(len(groups))]
            with obs.span("report.scan", mode="parallel", groups=len(groups)):
                results = supervised_map(
                    _scan_shard_group,
                    [
                        (
                            str(store.root),
                            tuple(int(i) for i in group),
                            batch_rows,
                            era_boundary,
                        )
                        for group in groups
                    ],
                    workers=len(groups),
                    keys=keys,
                )
            for key in keys:
                part = results.get(key)
                if part is None:
                    raise StoreError(
                        f"parallel report scan failed for shard {key}"
                    )
                accumulator.merge_ordered(part)
        obs.metrics().counter("report.rows_scanned").add(accumulator.rows)
        return accumulator, None
    partial: Optional[dict] = None
    with obs.span("report.scan", mode="serial"):
        try:
            for chunk in store.iter_batches(
                columns=REPORT_COLUMNS,
                batch_rows=batch_rows,
                deadline=deadline,
            ):
                accumulator.observe(chunk)
        except DeadlineExceeded:
            if on_deadline == "raise":
                raise
            partial = {
                "reason": "deadline-exceeded",
                "rows_seen": accumulator.rows,
                "rows_total": store.manifest.row_count,
            }
            obs.metrics().counter("report.scans_deadline_partial").add(1)
    obs.metrics().counter("report.rows_scanned").add(accumulator.rows)
    return accumulator, partial
