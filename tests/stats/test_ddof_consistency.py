"""ddof=0 (population/MLE) variance convention across repro.stats.

Every standard deviation in the stats package is the population form:
``np.std`` with its default ``ddof=0``, matching the maximum-likelihood
scale estimators.  Mixing in a Bessel-corrected ``ddof=1`` anywhere
would silently skew empirical-vs-fitted comparisons, so these tests
pin the convention numerically and scan the package source so a future
edit cannot drift one call site without tripping CI.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.stats.censoring import fit_lognormal_censored, fit_weibull_censored
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.fitting import fit_lognormal, fit_normal

STATS_DIR = Path(__file__).resolve().parents[2] / "src" / "repro" / "stats"

SAMPLE = np.array([1.0, 2.0, 2.5, 4.0, 7.5, 11.0, 30.0])


class TestNumericalConvention:
    def test_empirical_std_is_population_form(self):
        summary = EmpiricalDistribution.from_data(SAMPLE)
        assert summary.std == pytest.approx(np.std(SAMPLE, ddof=0))
        assert summary.std != pytest.approx(np.std(SAMPLE, ddof=1))
        assert summary.variance == pytest.approx(np.var(SAMPLE, ddof=0))

    def test_fit_normal_sigma_is_mle(self):
        result = fit_normal(SAMPLE)
        assert result.distribution.sigma == pytest.approx(
            np.std(SAMPLE, ddof=0)
        )

    def test_fit_lognormal_sigma_is_mle(self):
        result = fit_lognormal(SAMPLE)
        assert result.distribution.sigma == pytest.approx(
            np.std(np.log(SAMPLE), ddof=0)
        )

    def test_censored_initializers_use_population_std(self):
        # The censored fitters seed their numeric search from the
        # uncensored MLE moments; with no censored observations the
        # lognormal answer stays at (mean, population std) of the logs.
        result = fit_lognormal_censored(SAMPLE, censored=())
        assert result.distribution.sigma == pytest.approx(
            np.std(np.log(SAMPLE), ddof=0), rel=1e-3
        )
        # The Weibull shape initializer 1.2/std(ln x) must not blow up
        # on the population form either.
        assert fit_weibull_censored(SAMPLE).distribution.shape > 0

    def test_empirical_matches_fitted_normal_exactly(self):
        # The apples-to-apples contract: empirical std equals the MLE
        # sigma for the same data with no correction-factor mismatch.
        summary = EmpiricalDistribution.from_data(SAMPLE)
        fitted = fit_normal(SAMPLE)
        assert summary.std == pytest.approx(fitted.distribution.sigma)


class TestSourceDriftCatcher:
    _CALL = re.compile(r"\bnp\.(?:std|var)\s*\(")

    def _call_sites(self):
        for path in sorted(STATS_DIR.glob("*.py")):
            source = path.read_text(encoding="utf-8")
            for match in self._CALL.finditer(source):
                # Capture the full call's argument text (to the
                # matching close paren) so multi-line calls scan too.
                depth, end = 1, match.end()
                while depth and end < len(source):
                    if source[end] == "(":
                        depth += 1
                    elif source[end] == ")":
                        depth -= 1
                    end += 1
                yield path.name, source[match.start():end]

    def test_stats_package_has_std_call_sites(self):
        # The scan must actually be scanning something.
        names = {name for name, _ in self._call_sites()}
        assert {"empirical.py", "fitting.py", "censoring.py"} <= names

    def test_no_call_site_overrides_ddof(self):
        offenders = [
            (name, call)
            for name, call in self._call_sites()
            if "ddof" in call and "ddof=0" not in call.replace(" ", "")
        ]
        assert not offenders, (
            "repro.stats uses the population (ddof=0) convention "
            f"everywhere; these call sites drifted: {offenders}"
        )
