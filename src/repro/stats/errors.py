"""Typed sample-quality errors shared by the stats and analysis layers.

:class:`DegenerateSampleError` is the single vocabulary for "this data
is too thin/flat/empty for the requested statistic" across the stack —
distribution fitting (:mod:`repro.stats.fitting`), the analysis studies
(:mod:`repro.analysis`), and the text charts (:mod:`repro.report.charts`)
all raise it, and the report layer maps it to a *degraded* (not
*failed*) section so robustness scorecards can distinguish thin data
from genuine bugs.

It lives in ``repro.stats`` because that is the lowest layer that needs
it; :mod:`repro.analysis.errors` re-exports it for backward
compatibility, so ``except DegenerateSampleError`` catches the same
class no matter which module it was imported from.
"""

from __future__ import annotations

__all__ = ["DegenerateSampleError", "DegenerateStatisticError"]


class DegenerateSampleError(ValueError):
    """The input sample is too degenerate for the requested statistic.

    Raised for zero-mean samples (undefined coefficient of variation /
    variance-to-mean ratio), single-observation or otherwise
    too-small samples, all-equal samples (zero spread), and slices
    where a required participant never appears.  The message always
    states the requirement that failed.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers
    (including the report layer's per-section isolation) keep working,
    while remaining catchable specifically.
    """


class DegenerateStatisticError(DegenerateSampleError, ZeroDivisionError):
    """A ratio statistic is undefined because its denominator is zero.

    Raised by :class:`~repro.stats.empirical.EmpiricalDistribution` for
    C² of a zero-mean sample and mean/median of a zero-median sample.
    These used to surface as plain :class:`ZeroDivisionError`, escaping
    the typed :class:`DegenerateSampleError` classification — a report
    section hitting one was recorded CRASHED instead of DEGRADED.
    Subclassing both keeps ``except ZeroDivisionError`` callers working
    (the same dual-parent pattern as
    :class:`~repro.stats.fitting.DegenerateFitError`).
    """
