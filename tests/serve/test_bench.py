"""serve-bench: the load generator and its regression gate."""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig, run_serve_bench
from repro.serve.bench import check_serve_report, percentile


class TestPercentile:
    def test_nearest_rank(self):
        samples = [40.0, 10.0, 30.0, 20.0]
        assert percentile(samples, 0.5) == 30.0
        assert percentile(samples, 0.99) == 40.0
        assert percentile(samples, 0.0) == 10.0

    def test_empty(self):
        assert percentile([], 0.5) == 0.0


class TestServeBench:
    @pytest.fixture(scope="class")
    def report(self, store_root):
        return run_serve_bench(
            store_root,
            requests=24,
            clients=4,
            config=ServeConfig(port=0, max_concurrency=2, max_queue=8),
        )

    def test_report_shape(self, report):
        assert report["requests"] == 24
        assert report["clients"] == 4
        assert report["throughput_rps"] > 0
        latency = report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]
        assert sum(report["status_counts"].values()) == 24

    def test_healthy_store_serves_clean(self, report):
        assert report["error_rate"] == 0.0
        assert report["status_counts"].get("200", 0) + report[
            "status_counts"
        ].get(200, 0) == 24 - report["outcomes"].get("shed", 0)

    def test_server_stats_captured(self, report):
        assert report["server_stats"]["requests"] >= 24

    def test_check_passes_generous_gate(self, report):
        assert check_serve_report(
            report, p99_ms=60000.0, max_error_rate=0.0
        ) == []

    def test_check_flags_violations(self, report):
        violations = check_serve_report(
            report, p99_ms=0.000001, max_error_rate=0.0
        )
        assert violations
        assert any("p99" in violation for violation in violations)
