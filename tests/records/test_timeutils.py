"""Tests for repro.records.timeutils."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.records import timeutils as tu


class TestConversions:
    def test_epoch_is_zero(self):
        assert tu.from_datetime(tu.EPOCH) == 0.0

    def test_roundtrip(self):
        when = dt.datetime(2003, 7, 15, 13, 45, 30)
        assert tu.to_datetime(tu.from_datetime(when)) == when

    @given(st.floats(min_value=0, max_value=3.2e8))
    def test_roundtrip_hypothesis(self, timestamp):
        recovered = tu.from_datetime(tu.to_datetime(timestamp))
        assert abs(recovered - timestamp) < 1e-3

    def test_format(self):
        assert tu.format_timestamp(0.0) == "1996-01-01 00:00:00"


class TestCalendarFields:
    def test_epoch_hour(self):
        assert tu.hour_of_day(0.0) == 0

    def test_hour_of_day(self):
        # 1996-01-01 13:30
        assert tu.hour_of_day(13.5 * 3600) == 13

    def test_epoch_weekday_is_monday(self):
        # 1996-01-01 was a Monday.
        assert tu.EPOCH.weekday() == 0
        assert tu.day_of_week(0.0) == 0

    def test_day_of_week_progression(self):
        for offset in range(14):
            timestamp = offset * tu.SECONDS_PER_DAY + 100.0
            assert tu.day_of_week(timestamp) == offset % 7

    def test_weekday_matches_datetime(self):
        when = dt.datetime(2004, 3, 17, 9, 0)  # a Wednesday
        assert tu.day_of_week(tu.from_datetime(when)) == when.weekday() == 2

    @given(st.floats(min_value=0, max_value=3.2e8))
    def test_ranges(self, timestamp):
        assert 0 <= tu.hour_of_day(timestamp) <= 23
        assert 0 <= tu.day_of_week(timestamp) <= 6

    def test_month_index(self):
        assert tu.month_index(0.0) == 0
        assert tu.month_index(tu.SECONDS_PER_MONTH + 1) == 1
        assert tu.month_index(100.0, origin=50.0) == 0

    def test_month_index_before_origin_rejected(self):
        with pytest.raises(ValueError):
            tu.month_index(10.0, origin=20.0)


class TestParseMonthYear:
    def test_basic(self):
        assert tu.parse_month_year("04/01") == tu.from_datetime(dt.datetime(2001, 4, 1))

    def test_nineties(self):
        assert tu.parse_month_year("12/96") == tu.from_datetime(dt.datetime(1996, 12, 1))

    def test_na_and_now_return_none(self):
        assert tu.parse_month_year("N/A") is None
        assert tu.parse_month_year("now") is None

    def test_end_of_month(self):
        end = tu.parse_month_year("12/99", end_of_month=True)
        assert end == tu.from_datetime(dt.datetime(2000, 1, 1))

    def test_bad_month_rejected(self):
        with pytest.raises(ValueError):
            tu.parse_month_year("13/01")


class TestProductionWindow:
    DATA_START = tu.from_datetime(dt.datetime(1996, 6, 1))
    DATA_END = tu.from_datetime(dt.datetime(2005, 12, 1))

    def test_na_clamps_to_data_start(self):
        start, end = tu.production_window("N/A", "12/99", self.DATA_START, self.DATA_END)
        assert start == self.DATA_START
        assert end == tu.from_datetime(dt.datetime(2000, 1, 1))

    def test_now_clamps_to_data_end(self):
        start, end = tu.production_window("04/01", "now", self.DATA_START, self.DATA_END)
        assert start == tu.from_datetime(dt.datetime(2001, 4, 1))
        assert end == self.DATA_END

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            tu.production_window("06/05", "01/05", self.DATA_START, self.DATA_END)

    def test_end_month_inclusive(self):
        # A window ending 11/05 includes all of November 2005.
        __, end = tu.production_window("01/97", "11/05", self.DATA_START, self.DATA_END)
        assert end == self.DATA_END
