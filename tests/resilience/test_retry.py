"""RetryPolicy: deterministic exponential backoff with jitter."""

from __future__ import annotations

import pytest

from repro.resilience import RetryPolicy


class TestBackoff:
    def test_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff("system-20", 2) == policy.backoff("system-20", 2)
        assert policy.schedule("system-20") == policy.schedule("system-20")

    def test_jitter_varies_by_key_attempt_and_seed(self):
        policy = RetryPolicy(seed=0, jitter=0.2)
        assert policy.backoff("a", 1) != policy.backoff("b", 1)
        assert policy.backoff("a", 1) != RetryPolicy(seed=1, jitter=0.2).backoff("a", 1)

    def test_exponential_growth_within_jitter_band(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=100.0, jitter=0.1
        )
        for attempt in range(1, 6):
            raw = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.backoff("k", attempt)
            assert raw * 0.9 <= delay < raw * 1.1

    def test_max_delay_caps_every_attempt(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0
        )
        assert policy.backoff("k", 5) == 2.0

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, jitter=0.0)
        assert policy.backoff("k", 1) == 0.5
        assert policy.backoff("k", 2) == 1.0

    def test_schedule_has_one_delay_per_retry(self):
        policy = RetryPolicy(max_attempts=4)
        assert len(policy.schedule("k")) == 3


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"max_delay": -0.1},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"deadline": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_bad_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().backoff("k", 0)


class TestSleepHooks:
    """Sync and async sleep helpers share the deterministic schedule."""

    def test_sleep_returns_backoff_delay(self, monkeypatch):
        slept = []
        import time as _time

        monkeypatch.setattr(_time, "sleep", lambda s: slept.append(s))
        policy = RetryPolicy(seed=3, base_delay=0.25, jitter=0.0)
        delay = policy.sleep("k", 2)
        assert delay == policy.backoff("k", 2)
        assert slept == [delay]

    def test_sleep_async_awaits_same_delay(self, monkeypatch):
        import asyncio

        slept = []

        async def fake_sleep(seconds):
            slept.append(seconds)

        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        policy = RetryPolicy(seed=3, base_delay=0.25, jitter=0.1)

        async def main():
            return await policy.sleep_async("k", 3)

        delay = asyncio.run(main())
        assert delay == policy.backoff("k", 3)
        assert slept == [delay]

    def test_zero_delay_skips_sleeping(self, monkeypatch):
        import time as _time

        calls = []
        monkeypatch.setattr(_time, "sleep", lambda s: calls.append(s))
        policy = RetryPolicy(base_delay=0.0, jitter=0.0)
        assert policy.sleep("k", 1) == 0.0
        assert calls == []

    def test_sync_backoff_unchanged_by_hooks(self):
        # The jittered schedule is the PR-4 contract; adding sleep
        # helpers must not perturb it.
        policy = RetryPolicy(seed=7)
        assert policy.backoff("system-20", 2) == policy.backoff("system-20", 2)
