"""Reading a sharded columnar store out-of-core.

:class:`ColumnarStore` memory-maps per-shard column files and yields
bounded-size :class:`~repro.store.schema.ColumnBatch` chunks, pruning
whole shards whose manifest statistics cannot satisfy the predicate
(*pushdown*).  Peak memory is one chunk's worth of columns, never the
trace — the out-of-core contract the RSS-capped tests enforce.

Record order: shards hold one system each, sorted by
``(start_time, node_id)``.  :meth:`ColumnarStore.iter_records` k-way
merges the admitted shards on ``(start_time, system_id, node_id,
shard, row)``, which reproduces the generator's global
``lexsort((node, system, start))`` order exactly — including the
stable tie-breaks — so a store round-trip is record-for-record
``repr``-identical to the list-backed path.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.records.codes import CAUSE_VOCAB, DETAIL_VOCAB, WORKLOAD_VOCAB
from repro.records.record import FailureRecord
from repro.records.trace import FailureTrace
from repro.resilience.atomic import fs_fault_hook
from repro.resilience.deadline import Deadline
from repro.store.manifest import (
    MANIFEST_NAME,
    PREV_MANIFEST_NAME,
    SHARDS_DIR,
    Manifest,
    Predicate,
    ShardInfo,
    StoreError,
    load_ledger,
)
from repro.store.schema import (
    COLUMN_DTYPES,
    COLUMN_NAMES,
    NO_RECORD_ID,
    ColumnBatch,
    schema_digest,
)
from repro.store.writer import column_file_name

__all__ = [
    "ColumnarStore",
    "DegradedReadReport",
    "ScanStats",
    "diagnose_shard",
    "verify_store",
]

#: Default rows per read chunk (~2 MB across the full row footprint).
DEFAULT_BATCH_ROWS = 65536

#: Columns a predicate needs to evaluate its row mask.
_PREDICATE_COLUMNS = ("start_time", "system_id")


@dataclass
class ScanStats:
    """Pushdown accounting for one scan (and the CLI's proof of it)."""

    shards_scanned: int = 0
    shards_pruned: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0

    def describe(self) -> str:
        return (
            f"shards scanned={self.shards_scanned} "
            f"pruned={self.shards_pruned}; "
            f"rows scanned={self.rows_scanned} "
            f"matched={self.rows_matched}"
        )


@dataclass
class DegradedReadReport:
    """What a degraded (``on_damage="skip"``) read had to skip.

    ``system_rows_total`` is pre-populated from the manifest when the
    store opens, so :meth:`coverage` is meaningful even before any
    shard is skipped; skipped shards accumulate via :meth:`record`,
    which deduplicates by shard name across repeated scans on the same
    handle.
    """

    shards_skipped: List[str] = field(default_factory=list)
    rows_skipped: int = 0
    reasons: Dict[str, str] = field(default_factory=dict)
    system_rows_total: Dict[int, int] = field(default_factory=dict)
    system_rows_skipped: Dict[int, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.shards_skipped)

    def record(self, shard: ShardInfo, reason: str) -> bool:
        """Note a skipped shard; returns False if already recorded."""
        if shard.name in self.reasons:
            return False
        self.reasons[shard.name] = reason
        self.shards_skipped.append(shard.name)
        self.rows_skipped += shard.rows
        system_id = int(shard.stats["system_id"][0])
        self.system_rows_skipped[system_id] = (
            self.system_rows_skipped.get(system_id, 0) + shard.rows
        )
        return True

    def coverage(self) -> Dict[int, float]:
        """Fraction of each system's manifest rows still readable."""
        out: Dict[int, float] = {}
        for system_id in sorted(self.system_rows_total):
            total = self.system_rows_total[system_id]
            skipped = self.system_rows_skipped.get(system_id, 0)
            out[system_id] = 1.0 if not total else (total - skipped) / total
        return out

    def to_dict(self) -> dict:
        return {
            "shards_skipped": sorted(self.shards_skipped),
            "rows_skipped": self.rows_skipped,
            "reasons": dict(sorted(self.reasons.items())),
            "coverage": {
                str(system_id): fraction
                for system_id, fraction in self.coverage().items()
            },
        }

    def describe(self) -> str:
        if not self:
            return "degraded read: nothing skipped"
        partial = [
            f"system {system_id} {fraction:.1%}"
            for system_id, fraction in self.coverage().items()
            if fraction < 1.0
        ]
        return (
            f"degraded read: skipped {len(self.shards_skipped)} shard(s), "
            f"{self.rows_skipped} row(s)"
            + (f"; coverage {', '.join(partial)}" if partial else "")
        )


@dataclass
class _ShardCursor:
    """Lazily-opened memory maps of one shard's column files."""

    shard: ShardInfo
    paths: Dict[str, Path]
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def column(self, name: str) -> np.ndarray:
        array = self.arrays.get(name)
        if array is None:
            # Read-path fault site: lets chaos drills model slow or
            # failing disks on the *serving* path (one hook per shard
            # per column — the mmap'd reads themselves stay hook-free).
            fs_fault_hook("store.read.column", self.paths[name])
            array = np.load(self.paths[name], mmap_mode="r")
            self.arrays[name] = array
        return array


def diagnose_shard(root, shard: ShardInfo, deep: bool = True) -> List[Tuple[str, str]]:
    """Classify one shard's damage against its manifest entry.

    Returns ``(damage_class, message)`` pairs; an empty list means the
    shard is healthy at the requested depth.  File-level classes:
    ``missing-file``, ``unreadable``, ``truncated``, ``dtype-mismatch``,
    and (deep only) ``checksum-mismatch``.  When — and only when — the
    shard has no file-level damage, the deep pass also recomputes the
    manifest statistics and ordering invariants, adding ``stat-drift``,
    ``multi-system``, and ``sort-violation``.  The gate is per-shard:
    damage in one shard never suppresses diagnosis of another.
    """
    shards_dir = Path(root) / SHARDS_DIR
    findings: List[Tuple[str, str]] = []
    arrays: Dict[str, np.ndarray] = {}
    for column in COLUMN_NAMES:
        path = shards_dir / column_file_name(shard.name, column)
        if not path.exists():
            findings.append(
                ("missing-file", f"shard {shard.name}: missing {path.name}")
            )
            continue
        try:
            array = np.load(path, mmap_mode="r")
        except Exception as exc:
            findings.append(
                (
                    "unreadable",
                    f"shard {shard.name}: unreadable {path.name}: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        if array.shape != (shard.rows,):
            findings.append(
                (
                    "truncated",
                    f"shard {shard.name}: {path.name} has shape "
                    f"{array.shape}, manifest says ({shard.rows},)",
                )
            )
            continue
        if array.dtype != COLUMN_DTYPES[column]:
            findings.append(
                (
                    "dtype-mismatch",
                    f"shard {shard.name}: {path.name} has dtype "
                    f"{array.dtype}, schema says {COLUMN_DTYPES[column]}",
                )
            )
            continue
        if deep:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            expected = shard.checksums.get(column)
            if expected is not None and digest != expected:
                findings.append(
                    (
                        "checksum-mismatch",
                        f"shard {shard.name}: {path.name} content "
                        "sha256 mismatch (torn or modified)",
                    )
                )
                continue
        arrays[column] = array
    if deep and not findings:
        starts = np.asarray(arrays["start_time"])
        nodes = np.asarray(arrays["node_id"])
        systems = np.asarray(arrays["system_id"])
        for column, array in (
            ("start_time", starts),
            ("end_time", np.asarray(arrays["end_time"])),
            ("system_id", systems),
            ("node_id", nodes),
        ):
            low, high = shard.stats[column]
            if len(array) and (array.min() != low or array.max() != high):
                findings.append(
                    (
                        "stat-drift",
                        f"shard {shard.name}: {column} bounds "
                        f"[{array.min()}, {array.max()}] disagree with "
                        f"manifest [{low}, {high}]",
                    )
                )
        if len(systems) and systems.min() != systems.max():
            findings.append(
                (
                    "multi-system",
                    f"shard {shard.name}: spans multiple systems "
                    f"({systems.min()}..{systems.max()})",
                )
            )
        if len(starts) > 1:
            order = np.lexsort((nodes, starts))
            if not np.array_equal(order, np.arange(len(starts))):
                findings.append(
                    (
                        "sort-violation",
                        f"shard {shard.name}: rows are not sorted by "
                        "(start_time, node_id)",
                    )
                )
    return findings


class ColumnarStore:
    """A read handle on a store directory.

    Opening validates the manifest's schema digest against the running
    code — a store whose categorical codes or dtypes mean something
    else is refused up front (:class:`StoreError`), not misdecoded.

    ``on_damage`` governs reads over a damaged store: ``"raise"`` (the
    default) raises :class:`StoreError` the moment a quarantined or
    damaged shard would be read; ``"skip"`` reads around it and
    accounts for every skipped shard in :attr:`degraded`, a
    :class:`DegradedReadReport`.  The skip-mode probe catches missing,
    unreadable, truncated, and mis-typed column files plus anything
    already quarantined; silent bit rot needs the checksummed scrub
    pass (``repro store scrub``) to be detected.
    """

    def __init__(self, root, on_damage: str = "raise") -> None:
        if on_damage not in ("raise", "skip"):
            raise ValueError(
                f"on_damage must be 'raise' or 'skip', got {on_damage!r}"
            )
        self.root = Path(root)
        self.on_damage = on_damage
        self.manifest = Manifest.load(self.root / MANIFEST_NAME)
        expected = schema_digest()
        if self.manifest.schema_sha256 != expected:
            raise StoreError(
                f"{self.root}: schema digest mismatch "
                f"(store {self.manifest.schema_sha256[:12]}…, "
                f"code {expected[:12]}…); the store was written by an "
                "incompatible version"
            )
        self._ledger = load_ledger(self.root)
        #: Cumulative pushdown counters across this handle's scans.
        self.scan = ScanStats()
        #: Skipped-shard accounting for ``on_damage="skip"`` reads.
        self.degraded = self._new_degraded()

    def __len__(self) -> int:
        return self.manifest.row_count

    def _new_degraded(self) -> DegradedReadReport:
        report = DegradedReadReport()
        for shard in self.manifest.shards:
            system_id = int(shard.stats["system_id"][0])
            report.system_rows_total[system_id] = (
                report.system_rows_total.get(system_id, 0) + shard.rows
            )
        return report

    def reset_scan_stats(self) -> None:
        """Zero the pushdown counters (e.g. before a measured scan)."""
        self.scan = ScanStats()
        self.degraded = self._new_degraded()

    def _cursor(self, shard: ShardInfo) -> _ShardCursor:
        shards_dir = self.root / SHARDS_DIR
        return _ShardCursor(
            shard=shard,
            paths={
                column: shards_dir / column_file_name(shard.name, column)
                for column in COLUMN_NAMES
            },
        )

    def _admitted(
        self,
        predicate: Optional[Predicate],
        shards: Optional[Sequence[int]] = None,
    ) -> List[ShardInfo]:
        """Shards surviving pushdown; updates counters and metrics.

        ``shards`` restricts consideration to the given manifest
        positions (in the given order) — the hook the parallel scanner
        uses to hand each worker a contiguous slice of the manifest.
        """
        if shards is None:
            candidates = list(self.manifest.shards)
        else:
            total = len(self.manifest.shards)
            for index in shards:
                if not 0 <= index < total:
                    raise IndexError(
                        f"shard index {index} out of range "
                        f"(manifest has {total} shard(s))"
                    )
            candidates = [self.manifest.shards[index] for index in shards]
        admitted: List[ShardInfo] = []
        for shard in candidates:
            if predicate is not None and not predicate.admits_shard(shard):
                self.scan.shards_pruned += 1
            else:
                admitted.append(shard)
        self.scan.shards_scanned += len(admitted)
        registry = obs.metrics()
        registry.counter("store.shards_scanned").add(len(admitted))
        registry.counter("store.shards_pruned").add(
            len(candidates) - len(admitted)
        )
        return admitted

    def _shard_damage(self, shard: ShardInfo) -> Optional[str]:
        """Cheap pre-read probe: why this shard cannot be read, or None.

        Header-level only (existence, readability, shape, dtype) plus
        quarantine-ledger membership — no checksum work, so the probe
        stays O(shards) per scan.  Bit rot that keeps a valid header is
        invisible here by design; scrub's checksums own that class.
        """
        if shard.name in self._ledger:
            damage = self._ledger[shard.name].get("damage") or ["unknown"]
            return f"quarantined ({', '.join(damage)})"
        shards_dir = self.root / SHARDS_DIR
        for column in COLUMN_NAMES:
            path = shards_dir / column_file_name(shard.name, column)
            if not path.exists():
                return f"missing {path.name}"
            try:
                array = np.load(path, mmap_mode="r")
            except Exception as exc:
                return f"unreadable {path.name}: {type(exc).__name__}"
            if array.shape != (shard.rows,):
                return f"{path.name} has shape {array.shape}, expected ({shard.rows},)"
            if array.dtype != COLUMN_DTYPES[column]:
                return f"{path.name} has dtype {array.dtype}"
        return None

    def _healthy(self, shards: Sequence[ShardInfo]) -> List[ShardInfo]:
        """Filter damaged shards per ``on_damage``; skip-mode accounts."""
        healthy: List[ShardInfo] = []
        for shard in shards:
            damage = self._shard_damage(shard)
            if damage is None:
                healthy.append(shard)
                continue
            if self.on_damage == "raise":
                raise StoreError(
                    f"{self.root}: shard {shard.name} is damaged "
                    f"({damage}); run `repro store scrub` / "
                    "`repro store repair`, or open with "
                    "on_damage='skip' for a degraded read"
                )
            if self.degraded.record(shard, damage):
                registry = obs.metrics()
                registry.counter("store.shards_skipped_damaged").add(1)
                registry.counter("store.rows_skipped_damaged").add(shard.rows)
        return healthy

    # ------------------------------------------------------------------
    # Batch iteration (the analytics path)
    # ------------------------------------------------------------------

    def iter_batches(
        self,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Predicate] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        deadline: Optional[Deadline] = None,
        shards: Optional[Sequence[int]] = None,
    ) -> Iterator[ColumnBatch]:
        """Yield bounded column chunks, shard by shard.

        ``columns`` projects (default: all); the predicate's own
        columns are read regardless so the row mask can be applied.
        Chunks arrive in shard order — per-shard sorted, *not* globally
        merged (use :meth:`iter_records` for global order).

        ``shards`` restricts the scan to the given manifest positions,
        preserving the given order.  The parallel report scanner uses
        this to assign each worker a contiguous manifest slice whose
        partial accumulators merge back in manifest order.

        ``deadline`` bounds the scan's wall time: the budget is checked
        at every chunk boundary and a blown budget raises
        :class:`~repro.resilience.deadline.DeadlineExceeded` before the
        next chunk is read — a slow scan terminates promptly instead of
        hanging its caller.  The disabled path is a single ``is None``
        test per chunk.
        """
        if batch_rows < 1:
            raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
        wanted = tuple(columns) if columns is not None else COLUMN_NAMES
        unknown = set(wanted) - set(COLUMN_NAMES)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        needed = tuple(
            dict.fromkeys(
                tuple(wanted)
                + (_PREDICATE_COLUMNS if predicate is not None else ())
            )
        )
        for shard in self._healthy(self._admitted(predicate, shards)):
            cursor = self._cursor(shard)
            for offset in range(0, shard.rows, batch_rows):
                if deadline is not None:
                    deadline.check("store scan")
                chunk = ColumnBatch(
                    {
                        column: np.asarray(
                            cursor.column(column)[offset:offset + batch_rows]
                        )
                        for column in needed
                    }
                )
                self.scan.rows_scanned += len(chunk)
                if predicate is not None:
                    mask = predicate.mask(chunk)
                    matched = int(np.count_nonzero(mask))
                    self.scan.rows_matched += matched
                    if not matched:
                        continue
                    chunk = chunk.take(mask)
                else:
                    self.scan.rows_matched += len(chunk)
                if set(wanted) != set(needed):
                    chunk = ColumnBatch(
                        {column: chunk[column] for column in wanted}
                    )
                yield chunk

    # ------------------------------------------------------------------
    # Record iteration (the equivalence path)
    # ------------------------------------------------------------------

    def _shard_tuples(
        self,
        seq: int,
        shard: ShardInfo,
        predicate: Optional[Predicate],
        batch_rows: int,
    ) -> Iterator[Tuple]:
        """One shard's rows as sortable key/value tuples, in order."""
        cursor = self._cursor(shard)
        for offset in range(0, shard.rows, batch_rows):
            chunk = {
                column: np.asarray(
                    cursor.column(column)[offset:offset + batch_rows]
                )
                for column in COLUMN_NAMES
            }
            n = len(chunk["start_time"])
            self.scan.rows_scanned += n
            indices = range(n)
            if predicate is not None:
                mask = predicate.mask(
                    ColumnBatch(
                        {c: chunk[c] for c in _PREDICATE_COLUMNS}
                    )
                )
                matched = int(np.count_nonzero(mask))
                self.scan.rows_matched += matched
                if not matched:
                    continue
                indices = np.nonzero(mask)[0]
            else:
                self.scan.rows_matched += n
            starts = chunk["start_time"].tolist()
            ends = chunk["end_time"].tolist()
            systems = chunk["system_id"].tolist()
            nodes = chunk["node_id"].tolist()
            causes = chunk["root_cause"].tolist()
            details = chunk["low_level_cause"].tolist()
            workloads = chunk["workload"].tolist()
            record_ids = chunk["record_id"].tolist()
            for i in indices:
                yield (
                    (starts[i], systems[i], nodes[i], seq, offset + i),
                    ends[i],
                    causes[i],
                    details[i],
                    workloads[i],
                    record_ids[i],
                )

    def iter_records(
        self,
        predicate: Optional[Predicate] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ) -> Iterator[FailureRecord]:
        """Yield records in global trace order, lazily.

        Record IDs: an ``explicit`` store yields the stored IDs; an
        ``implicit`` store yields the global read position — identical
        to the generator's numbering — unless a predicate filters rows
        or a degraded read skips shards, in which case IDs are ``None``
        (positions in the *partial* stream would silently disagree
        with the full trace's).
        """
        if predicate is not None and predicate.is_null():
            predicate = None
        admitted = self._admitted(predicate)
        healthy = self._healthy(admitted)
        streams = [
            self._shard_tuples(seq, shard, predicate, batch_rows)
            for seq, shard in enumerate(healthy)
        ]
        implicit = self.manifest.record_ids == "implicit"
        number_rows = (
            implicit and predicate is None and len(healthy) == len(admitted)
        )
        for position, item in enumerate(heapq.merge(*streams)):
            key, end, cause, detail, workload, record_id = item
            start, system_id, node_id = key[0], key[1], key[2]
            if number_rows:
                resolved: Optional[int] = position
            elif implicit:
                resolved = None
            else:
                resolved = None if record_id == NO_RECORD_ID else record_id
            yield FailureRecord(
                start_time=start,
                end_time=end,
                system_id=system_id,
                node_id=node_id,
                root_cause=CAUSE_VOCAB[cause],
                low_level_cause=DETAIL_VOCAB[detail] if detail >= 0 else None,
                workload=WORKLOAD_VOCAB[workload],
                record_id=resolved,
            )

    def to_trace(self, predicate: Optional[Predicate] = None) -> FailureTrace:
        """Materialize a :class:`FailureTrace` (the list-backed bridge)."""
        return FailureTrace(
            list(self.iter_records(predicate)),
            systems=self.manifest.systems or None,
            data_start=self.manifest.data_start,
            data_end=self.manifest.data_end,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def info(self) -> Dict[str, object]:
        """A JSON-able summary for ``repro store info``.

        Includes the store's *self-healing state* — quarantined-shard
        count, the systems a degraded read would undercount, and
        whether a ``manifest.prev.json`` rollback generation exists —
        so readiness probes and operators see degradation without
        paying for a full scrub.
        """
        manifest = self.manifest
        size = 0
        for shard in manifest.shards:
            for column in COLUMN_NAMES:
                path = (
                    self.root / SHARDS_DIR / column_file_name(shard.name, column)
                )
                if path.exists():
                    size += path.stat().st_size
        by_name = {shard.name: shard for shard in manifest.shards}
        quarantined = sorted(name for name in self._ledger if name in by_name)
        affected_systems = sorted(
            {int(by_name[name].stats["system_id"][0]) for name in quarantined}
        )
        quarantined_rows = sum(by_name[name].rows for name in quarantined)
        healing = {
            "quarantined_shards": len(quarantined),
            "quarantined_rows": quarantined_rows,
            "affected_systems": affected_systems,
            "ledger_entries": len(self._ledger),
            "manifest_prev": (self.root / PREV_MANIFEST_NAME).exists(),
        }
        return {
            "healing": healing,
            "root": str(self.root),
            "rows": manifest.row_count,
            "shards": len(manifest.shards),
            "columns": list(manifest.columns),
            "record_ids": manifest.record_ids,
            "schema_sha256": manifest.schema_sha256,
            "format_version": manifest.format_version,
            "systems": sorted(manifest.systems),
            "data_start": manifest.data_start,
            "data_end": manifest.data_end,
            "bytes": size,
            "meta": dict(sorted(manifest.meta.items())),
        }

    def verify(self, deep: bool = True) -> List[str]:
        """Check the store against its manifest; return problems.

        Shallow: every column file exists with the manifest's row count
        and the schema dtype (catches truncation — a torn ``.npy`` has
        the wrong byte length for its header, or a header shorter than
        the manifest's rows).  Deep adds content sha256 verification
        and — per shard, gated only on *that shard's* file-level
        health — min/max statistics recomputation and the sort
        invariant, so one damaged shard never suppresses deep checks
        on its neighbours.  Quarantined shards are reported as a
        single problem each, pointing at ``store repair``.
        """
        problems: List[str] = []
        total = 0
        for shard in self.manifest.shards:
            total += shard.rows
            if shard.name in self._ledger:
                damage = self._ledger[shard.name].get("damage") or ["unknown"]
                problems.append(
                    f"shard {shard.name}: quarantined "
                    f"({', '.join(damage)}); run `repro store repair` "
                    "to re-materialize it from a reference"
                )
                continue
            problems.extend(
                message
                for _, message in diagnose_shard(self.root, shard, deep=deep)
            )
        if total != self.manifest.row_count:
            problems.append(
                f"manifest row_count {self.manifest.row_count} != "
                f"sum of shard rows {total}"
            )
        return problems


def verify_store(root, deep: bool = True) -> List[str]:
    """Open-and-verify helper that also catches manifest-level damage."""
    try:
        store = ColumnarStore(root)
    except StoreError as exc:
        return [str(exc)]
    return store.verify(deep=deep)
