"""Round-trip coverage: gzip transports and exact float timestamps."""

import gzip
import math

import pytest

from repro.io import read_jsonl, read_lanl_csv, write_jsonl, write_lanl_csv
from repro.records.record import FailureRecord, LowLevelCause, RootCause, Workload


def records_with_awkward_floats():
    """Timestamps that str() would round but repr() must preserve.

    Listed in ascending start order so readers (which sort) return them
    in the same sequence they were written.
    """
    t0 = 123456789.10111213
    return [
        FailureRecord(
            start_time=math.e * 1e7, end_time=math.pi * 1e7,
            system_id=5, node_id=0, record_id=0,
        ),
        FailureRecord(
            # The float closest to 1/3 of 1e8: a full 17-digit repr.
            start_time=1e8 / 3.0, end_time=1e8 / 3.0 + 1e-6,
            system_id=2, node_id=1, record_id=1,
        ),
        FailureRecord(
            start_time=t0, end_time=t0 + 0.1 + 0.2,  # ...40111212
            system_id=20, node_id=22,
            root_cause=RootCause.HARDWARE, low_level_cause=LowLevelCause.MEMORY,
            workload=Workload.GRAPHICS, record_id=2,
        ),
    ]


class TestGzipRoundtrip:
    def test_csv_gz_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv.gz"
        original = records_with_awkward_floats()
        assert write_lanl_csv(original, path) == 3
        # The file really is gzip, not plain text with a lying name.
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("record_id,")
        loaded = read_lanl_csv(path)
        assert len(loaded) == 3

    def test_jsonl_gz_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        original = records_with_awkward_floats()
        assert write_jsonl(original, path) == 3
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("{")
        loaded = read_jsonl(path)
        assert len(loaded) == 3

    def test_gz_and_plain_agree(self, tmp_path, small_trace):
        plain = tmp_path / "t.csv"
        packed = tmp_path / "t.csv.gz"
        write_lanl_csv(small_trace, plain)
        write_lanl_csv(small_trace, packed)
        assert plain.read_text() == gzip.open(packed, "rt").read()
        assert len(read_lanl_csv(packed)) == len(small_trace)


class TestFloatPrecision:
    @pytest.mark.parametrize("suffix", ["csv", "csv.gz"])
    def test_csv_repr_timestamps_roundtrip_exactly(self, tmp_path, suffix):
        path = tmp_path / f"trace.{suffix}"
        original = records_with_awkward_floats()
        write_lanl_csv(original, path)
        loaded = read_lanl_csv(path)
        for before, after in zip(original, loaded):
            # Bitwise equality, not approx: repr() must not lose ulps.
            assert after.start_time == before.start_time
            assert after.end_time == before.end_time

    def test_jsonl_timestamps_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        original = records_with_awkward_floats()
        write_jsonl(original, path)
        loaded = read_jsonl(path)
        for before, after in zip(original, loaded):
            assert after.start_time == before.start_time
            assert after.end_time == before.end_time

    def test_double_roundtrip_is_stable(self, tmp_path):
        # write -> read -> write must produce identical bytes (no drift).
        first = tmp_path / "first.csv"
        second = tmp_path / "second.csv"
        write_lanl_csv(records_with_awkward_floats(), first)
        write_lanl_csv(read_lanl_csv(first), second)
        assert first.read_text() == second.read_text()
