"""Hierarchical tracing spans over a flat JSONL event stream.

A :class:`Tracer` records **spans** — named, nested regions of work
with wall/CPU time, context attributes and counters.  Spans form a
tree (the currently open span is the parent of any span opened inside
it), but the on-disk representation is deliberately *flat*: one JSON
object per line, each carrying its own ``id``, ``parent`` and
``depth``, so the exact nesting is reconstructable from the stream
alone (:func:`repro.obs.profile.build_span_tree`) and streams from
several processes can be merged without rewriting structure.

Design constraints, in order:

* **Zero overhead when off.**  Instrumentation sites call
  :func:`repro.obs.span`, which returns the shared :data:`NULL_SPAN`
  singleton when no tracer is active — one module-global read and no
  allocation beyond the call's kwargs.  The generator bench guard
  (:func:`repro.benchmark.measure_obs_overhead`) asserts the disabled
  fast path costs <= 2% of a generation run.
* **Determinism.**  Span ids are ``"<stream>:<seq>"`` with ``seq``
  assigned in span *open* order, which is a pure function of the
  instrumented code path — never of wall-clock time or scheduling.
  Only the ``wall_s``/``cpu_s`` fields vary between runs.
* **Mergeable worker streams.**  A worker process traces into its own
  stream (named after its shard key) and spools the events to a file;
  the parent grafts each spool under the matching attempt span with
  :meth:`Tracer.graft`, keyed by shard — not by completion time — so
  the merged trace is stable across process schedules.

The module is dependency-free (stdlib only) and must stay importable
without pulling in the rest of the toolkit.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "TRACE_KIND",
    "SPOOL_ENV_VAR",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "spool_dir",
    "spool_path",
    "write_spool",
    "load_spool_events",
]

#: Version stamped into the trace header; bump on breaking schema change.
SCHEMA_VERSION = 1

#: The ``kind`` discriminator in the trace header line.
TRACE_KIND = "repro-trace"

#: Environment variable carrying the worker spool directory.  Worker
#: processes inherit the parent's environment, so arming tracing before
#: the pool spawns reaches every worker with no payload plumbing — the
#: same mechanism :mod:`repro.faults.process_ops` uses for chaos.
SPOOL_ENV_VAR = "REPRO_OBS_SPOOL"

_SAFE_KEY = re.compile(r"[^A-Za-z0-9._-]+")


class _NullSpan:
    """The shared no-op span returned while tracing is disabled.

    Supports the full :class:`Span` surface (context manager, ``set``,
    ``add``) so instrumentation sites never branch on whether tracing
    is on.  A single instance is reused for every call.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def add(self, key: str, amount: int = 1) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One open region of work; emits a single event when it closes.

    Obtained from :meth:`Tracer.span` (or :func:`repro.obs.span`) and
    used as a context manager.  Mutators return ``self`` so they chain.
    """

    __slots__ = (
        "_tracer", "name", "attrs", "counters",
        "span_id", "parent_id", "depth",
        "_wall0", "_cpu0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.depth = 0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) a context attribute."""
        self.attrs[key] = value
        return self

    def add(self, key: str, amount: int = 1) -> "Span":
        """Increment one of the span's counters."""
        self.counters[key] = self.counters.get(key, 0) + amount
        return self

    def __enter__(self) -> "Span":
        self._tracer._begin(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        error = ""
        if exc_type is not None:
            error = f"{exc_type.__name__}: {exc}"
        self._tracer._finish(self, wall, cpu, error)
        return False


class Tracer:
    """Collects span events for one process (one *stream*).

    Parameters
    ----------
    stream:
        Stream label prefixed onto every span id.  The parent process
        uses ``"main"``; worker processes use their shard key, which
        keeps ids globally unique after a merge.
    run_id:
        Free-form run identity stamped into the trace header.
    """

    def __init__(self, stream: str = "main", run_id: str = "") -> None:
        self.stream = stream
        self.run_id = run_id
        #: Completed span events, in close order (children before
        #: parents within a stream; grafted subtrees after the span
        #: they were grafted under).
        self.events: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._seq = 0
        self._depths: Dict[str, int] = {}

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; open it with ``with``."""
        return Span(self, name, attrs)

    def _begin(self, span: Span) -> None:
        span.span_id = f"{self.stream}:{self._seq}"
        self._seq += 1
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            span.depth = parent.depth + 1
        else:
            span.parent_id = None
            span.depth = 0
        self._depths[span.span_id] = span.depth
        self._stack.append(span)

    def _finish(self, span: Span, wall: float, cpu: float, error: str) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(open stack: {[s.name for s in self._stack]})"
            )
        self._stack.pop()
        self.events.append(_span_event(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            depth=span.depth,
            wall_s=wall,
            cpu_s=cpu,
            attrs=span.attrs,
            counters=span.counters,
            error=error,
        ))

    def emit(
        self,
        name: str,
        *,
        wall_s: float = 0.0,
        cpu_s: float = 0.0,
        attrs: Optional[Dict[str, Any]] = None,
        counters: Optional[Dict[str, float]] = None,
        status: str = "ok",
        error: str = "",
    ) -> str:
        """Record an already-measured span without opening a region.

        Used for work that happened elsewhere (a worker attempt timed
        by the supervisor).  The span nests under the currently open
        span, if any.  Returns the new span's id so subtrees can be
        grafted under it.
        """
        if self._stack:
            parent = self._stack[-1]
            parent_id: Optional[str] = parent.span_id
            depth = parent.depth + 1
        else:
            parent_id = None
            depth = 0
        span_id = f"{self.stream}:{self._seq}"
        self._seq += 1
        self._depths[span_id] = depth
        event = _span_event(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            depth=depth,
            wall_s=wall_s,
            cpu_s=cpu_s,
            attrs=dict(attrs or {}),
            counters=dict(counters or {}),
            error=error,
        )
        event["status"] = "error" if error else status
        self.events.append(event)
        return span_id

    def graft(self, events: Iterable[Dict[str, Any]], parent_id: str) -> None:
        """Merge a foreign stream's span events under ``parent_id``.

        Roots of the foreign stream (``parent: null``) are re-parented
        onto ``parent_id`` and every depth is shifted below it; other
        parent links and all ids are preserved (foreign streams carry
        their own id prefix, so ids cannot collide with this stream's).
        """
        if parent_id not in self._depths:
            raise KeyError(f"unknown graft parent {parent_id!r}")
        base_depth = self._depths[parent_id] + 1
        for event in events:
            if event.get("type") != "span":
                continue
            merged = dict(event)
            if merged.get("parent") is None:
                merged["parent"] = parent_id
            merged["depth"] = int(merged["depth"]) + base_depth
            self._depths[str(merged["id"])] = int(merged["depth"])
            self.events.append(merged)

    # -- output --------------------------------------------------------

    @property
    def open_spans(self) -> List[str]:
        """Names of the currently open (unfinished) spans, outermost first."""
        return [span.name for span in self._stack]

    def header(self) -> Dict[str, Any]:
        """The trace's header line (always the first event written)."""
        return {
            "type": "header",
            "kind": TRACE_KIND,
            "schema": SCHEMA_VERSION,
            "stream": self.stream,
            "run_id": self.run_id,
        }

    def to_events(self, metrics: Optional[Any] = None) -> List[Dict[str, Any]]:
        """Header + span events (+ metric events from a registry)."""
        events = [self.header()]
        events.extend(self.events)
        if metrics is not None:
            events.extend(metrics.to_events())
        return events

    def write(self, path: os.PathLike, metrics: Optional[Any] = None) -> int:
        """Write the trace as JSONL (atomically); returns the line count.

        The file starts with the header line, then span events in
        recorded order, then one ``metric`` line per registered metric.
        """
        from repro.resilience.atomic import atomic_write_bytes

        lines = [
            json.dumps(event, sort_keys=True, default=str)
            for event in self.to_events(metrics)
        ]
        blob = ("\n".join(lines) + "\n").encode("utf-8")
        atomic_write_bytes(Path(path), blob)
        return len(lines)


def _span_event(
    *,
    span_id: str,
    parent_id: Optional[str],
    name: str,
    depth: int,
    wall_s: float,
    cpu_s: float,
    attrs: Dict[str, Any],
    counters: Dict[str, float],
    error: str,
) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "type": "span",
        "id": span_id,
        "parent": parent_id,
        "name": name,
        "depth": depth,
        "wall_s": round(float(wall_s), 9),
        "cpu_s": round(float(cpu_s), 9),
        "status": "error" if error else "ok",
        "attrs": attrs,
        "counters": counters,
    }
    if error:
        event["error"] = error
    return event


# ---------------------------------------------------------------------------
# Worker spool: shard-keyed event files merged by the supervisor
# ---------------------------------------------------------------------------


def spool_dir() -> Optional[Path]:
    """The armed spool directory, or None when worker tracing is off."""
    value = os.environ.get(SPOOL_ENV_VAR, "")
    return Path(value) if value else None


def spool_path(directory: Path, key: str) -> Path:
    """Filesystem-safe, collision-free spool file for a shard key.

    Same scheme as the shard journal: sanitize for readability, append
    a digest of the raw key for uniqueness.
    """
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:8]
    return directory / f"{_SAFE_KEY.sub('_', key)}-{digest}.events.jsonl"


def write_spool(tracer: Tracer, key: str) -> Optional[Path]:
    """Atomically spool a worker tracer's span events for ``key``.

    A retried shard overwrites its earlier spool (atomic replace), so
    after the run each shard's file holds exactly the final attempt's
    events.  Returns the path, or None when spooling is not armed.
    """
    directory = spool_dir()
    if directory is None:
        return None
    from repro.resilience.atomic import atomic_write_bytes

    directory.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(event, sort_keys=True, default=str)
        for event in tracer.events
    ]
    blob = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
    path = spool_path(directory, key)
    atomic_write_bytes(path, blob)
    return path


def load_spool_events(key: str) -> List[Dict[str, Any]]:
    """Read a shard's spooled events; empty when absent or not armed."""
    directory = spool_dir()
    if directory is None:
        return []
    path = spool_path(directory, key)
    if not path.exists():
        return []
    events: List[Dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
