"""Tests for job-size scaling of the failure process."""

import numpy as np
import pytest

from repro.checkpoint.models import interval_vs_job_size, time_to_first_failure
from repro.stats.distributions import Exponential, Gamma, Weibull


class TestTimeToFirstFailure:
    def test_exponential_scales_inversely(self):
        node = Exponential(scale=1000.0)
        job = time_to_first_failure(node, 10)
        assert isinstance(job, Exponential)
        assert job.scale == pytest.approx(100.0)

    def test_weibull_preserves_shape(self):
        node = Weibull(shape=0.7, scale=1000.0)
        job = time_to_first_failure(node, 16)
        assert isinstance(job, Weibull)
        assert job.shape == 0.7
        assert job.scale == pytest.approx(1000.0 / 16 ** (1 / 0.7))

    def test_matches_sampled_minimum(self):
        node = Weibull(shape=0.8, scale=500.0)
        job = time_to_first_failure(node, 8)
        generator = np.random.Generator(np.random.PCG64(0))
        samples = node.sample(generator, (100_000 // 8) * 8).reshape(-1, 8).min(axis=1)
        assert np.mean(samples) == pytest.approx(job.mean, rel=0.03)
        assert np.median(samples) == pytest.approx(job.median, rel=0.03)

    def test_single_node_identity(self):
        node = Weibull(shape=0.7, scale=1000.0)
        job = time_to_first_failure(node, 1)
        assert job.scale == pytest.approx(node.scale)

    def test_validation(self):
        with pytest.raises(ValueError):
            time_to_first_failure(Exponential(scale=1.0), 0)
        with pytest.raises(TypeError):
            time_to_first_failure(Gamma(shape=2.0, scale=1.0), 4)


class TestIntervalVsJobSize:
    def test_bigger_jobs_checkpoint_more_often(self):
        node = Weibull(shape=0.7, scale=2e6)
        table = interval_vs_job_size(node, checkpoint_cost=600.0,
                                     node_counts=(1, 16, 256))
        intervals = [table[n][0] for n in (1, 16, 256)]
        assert intervals == sorted(intervals, reverse=True)
        # And efficiency degrades with size.
        efficiencies = [table[n][1] for n in (1, 16, 256)]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_table_keys(self):
        node = Exponential(scale=1e6)
        table = interval_vs_job_size(node, 600.0, (2, 4))
        assert set(table.keys()) == {2, 4}
        for interval, efficiency in table.values():
            assert interval > 0
            assert 0 < efficiency <= 1
