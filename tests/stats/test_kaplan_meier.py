"""Tests for the Kaplan-Meier estimator."""

import numpy as np
import pytest

from repro.stats.distributions import Exponential, Weibull
from repro.stats.kaplan_meier import kaplan_meier


class TestTextbookCase:
    """A small worked example checked by hand.

    Events at 1, 3, 3, 6; censored at 2, 5.
    n=6. At t=1: risk 6, S = 5/6.  At t=3: risk 4 (censor at 2 gone),
    2 deaths, S = 5/6 * 2/4 = 5/12.  At t=6: risk 1, S = 0.
    """

    def fit(self):
        return kaplan_meier([1.0, 3.0, 3.0, 6.0], [2.0, 5.0])

    def test_survival_steps(self):
        km = self.fit()
        assert km.times == (1.0, 3.0, 6.0)
        assert km.survival[0] == pytest.approx(5 / 6)
        assert km.survival[1] == pytest.approx(5 / 12)
        assert km.survival[2] == pytest.approx(0.0)

    def test_survival_at(self):
        km = self.fit()
        assert km.survival_at(0.5) == 1.0
        assert km.survival_at(1.0) == pytest.approx(5 / 6)
        assert km.survival_at(4.0) == pytest.approx(5 / 12)
        assert km.survival_at(100.0) == 0.0

    def test_median(self):
        assert self.fit().median() == 3.0

    def test_counts(self):
        km = self.fit()
        assert km.n_events == 4
        assert km.n_censored == 2

    def test_restricted_mean(self):
        km = self.fit()
        # Area: 1*[0,1) + 5/6*[1,3) + 5/12*[3,4) = 1 + 5/3 + 5/12.
        assert km.restricted_mean(4.0) == pytest.approx(1 + 5 / 3 + 5 / 12)

    def test_band_clipped(self):
        lower, upper = self.fit().confidence_band()
        assert np.all(lower >= 0) and np.all(upper <= 1)
        assert np.all(lower <= upper)


class TestAgainstTruth:
    def test_tracks_true_survival_without_censoring(self):
        dist = Weibull(shape=0.7, scale=100.0)
        generator = np.random.Generator(np.random.PCG64(0))
        sample = dist.sample(generator, 20_000)
        km = kaplan_meier(sample[sample > 0])
        for q in (0.25, 0.5, 0.75):
            t = float(dist.ppf(q))
            assert km.survival_at(t) == pytest.approx(1 - q, abs=0.02)

    def test_censoring_corrected(self):
        # Heavy type-I censoring at the true median: KM still recovers
        # survival below the cutoff.
        dist = Exponential(scale=100.0)
        generator = np.random.Generator(np.random.PCG64(1))
        sample = dist.sample(generator, 20_000)
        cutoff = dist.median
        observed = sample[sample <= cutoff]
        censored = np.full(int(np.sum(sample > cutoff)), cutoff)
        km = kaplan_meier(observed, censored)
        t = 50.0
        assert km.survival_at(t) == pytest.approx(float(dist.survival(t)), abs=0.02)

    def test_median_estimate(self):
        dist = Exponential(scale=100.0)
        generator = np.random.Generator(np.random.PCG64(2))
        km = kaplan_meier(dist.sample(generator, 20_000))
        assert km.median() == pytest.approx(dist.median, rel=0.05)


class TestValidation:
    def test_no_events_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier([], [1.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier([0.0, 1.0])
        with pytest.raises(ValueError):
            kaplan_meier([1.0], [-1.0])

    def test_restricted_mean_validation(self):
        km = kaplan_meier([1.0, 2.0])
        with pytest.raises(ValueError):
            km.restricted_mean(0.0)
