"""Compare two failure traces metric by metric.

The question behind the whole substitution argument (DESIGN.md §2):
*how close is trace A to trace B statistically?*  Typical uses:

* synthetic trace vs the real CFDR data (validate the generator),
* two eras of one system (did behaviour change?),
* two sites' logs (is my cluster like LANL?).

:func:`compare_traces` computes a panel of scale-free metrics on both
traces and reports relative differences plus a two-sample KS distance
on the repair-time and interarrival distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.periodicity import periodicity_study
from repro.records.record import HIGH_LEVEL_CAUSES
from repro.records.trace import FailureTrace
from repro.stats.empirical import EmpiricalDistribution

__all__ = ["MetricComparison", "compare_traces", "two_sample_ks"]


@dataclass(frozen=True)
class MetricComparison:
    """One metric measured on both traces."""

    name: str
    value_a: float
    value_b: float

    @property
    def relative_difference(self) -> float:
        """|a - b| / max(|a|, |b|); 0 for identical, <= 1 mostly."""
        denominator = max(abs(self.value_a), abs(self.value_b))
        if denominator == 0:
            return 0.0
        return abs(self.value_a - self.value_b) / denominator

    def describe(self) -> str:
        """One-line rendering."""
        return (
            f"{self.name:<36} {self.value_a:>12.4g} {self.value_b:>12.4g} "
            f"(diff {100 * self.relative_difference:5.1f}%)"
        )


def two_sample_ks(a, b) -> float:
    """Two-sample Kolmogorov-Smirnov distance sup |F_a - F_b|."""
    xa = np.sort(np.asarray(a, dtype=float))
    xb = np.sort(np.asarray(b, dtype=float))
    if xa.size == 0 or xb.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([xa, xb])
    fa = np.searchsorted(xa, grid, side="right") / xa.size
    fb = np.searchsorted(xb, grid, side="right") / xb.size
    return float(np.max(np.abs(fa - fb)))


def _safe_ratio(values: np.ndarray) -> Optional[EmpiricalDistribution]:
    if values.size < 2:
        return None
    return EmpiricalDistribution.from_data(values)


def compare_traces(
    trace_a: FailureTrace,
    trace_b: FailureTrace,
    label_a: str = "A",
    label_b: str = "B",
) -> List[MetricComparison]:
    """The comparison panel; see the module docstring.

    Both traces need at least ~10 records; periodicity metrics are
    skipped when either trace has empty hour/day bins.
    """
    if len(trace_a) < 10 or len(trace_b) < 10:
        raise ValueError("both traces need at least 10 records")
    rows: List[MetricComparison] = []

    def add(name: str, value_a: float, value_b: float) -> None:
        rows.append(MetricComparison(name=name, value_a=value_a, value_b=value_b))

    # Volume normalized by observation window.
    for_label = {}
    for label, trace in ((label_a, trace_a), (label_b, trace_b)):
        years = (trace.data_end - trace.data_start) / (365.25 * 86400.0)
        for_label[label] = len(trace) / years
    add("failures per year", for_label[label_a], for_label[label_b])

    # Root-cause shares.
    for cause in HIGH_LEVEL_CAUSES:
        share_a = trace_a.counts_by_cause().get(cause, 0) / len(trace_a)
        share_b = trace_b.counts_by_cause().get(cause, 0) / len(trace_b)
        add(f"share[{cause.value}]", share_a, share_b)

    # Repair-time distribution.
    repairs_a = trace_a.repair_minutes()
    repairs_b = trace_b.repair_minutes()
    summary_a = EmpiricalDistribution.from_data(repairs_a)
    summary_b = EmpiricalDistribution.from_data(repairs_b)
    add("repair median (min)", summary_a.median, summary_b.median)
    add("repair mean (min)", summary_a.mean, summary_b.mean)
    add("repair KS distance", two_sample_ks(repairs_a, repairs_b), 0.0)

    # Interarrival distribution, normalized by each trace's own mean so
    # the comparison is about *shape*, not absolute rate.
    gaps_a = trace_a.interarrival_times()
    gaps_b = trace_b.interarrival_times()
    if len(gaps_a) >= 10 and len(gaps_b) >= 10:
        add(
            "interarrival C^2",
            EmpiricalDistribution.from_data(gaps_a).squared_cv,
            EmpiricalDistribution.from_data(gaps_b).squared_cv,
        )
        add(
            "zero-gap fraction",
            float(np.mean(gaps_a == 0.0)),
            float(np.mean(gaps_b == 0.0)),
        )
        add(
            "interarrival KS (mean-normalized)",
            two_sample_ks(gaps_a / max(gaps_a.mean(), 1e-12),
                          gaps_b / max(gaps_b.mean(), 1e-12)),
            0.0,
        )

    # Periodicity ratios, when computable.
    try:
        periodicity_a = periodicity_study(trace_a)
        periodicity_b = periodicity_study(trace_b)
    except ValueError:
        pass
    else:
        add("peak/trough ratio", periodicity_a.peak_trough_ratio,
            periodicity_b.peak_trough_ratio)
        add("weekday/weekend ratio", periodicity_a.weekday_weekend_ratio,
            periodicity_b.weekday_weekend_ratio)
    return rows
