"""Tests for the parametric distributions."""

import numpy as np
import pytest

from repro.stats.distributions import (
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Weibull,
)

CONTINUOUS = [
    Exponential(scale=120.0),
    Weibull(shape=0.7, scale=50.0),
    Weibull(shape=2.5, scale=50.0),
    Gamma(shape=0.6, scale=30.0),
    Gamma(shape=4.0, scale=3.0),
    LogNormal(mu=2.0, sigma=1.5),
    Normal(mu=10.0, sigma=4.0),
]


@pytest.mark.parametrize("dist", CONTINUOUS, ids=lambda d: d.describe())
class TestContinuousCommon:
    def test_pdf_integrates_like_cdf(self, dist):
        # Integrate the pdf over [a, b] away from any x=0 singularity
        # (Weibull/gamma with shape < 1 have unbounded density at 0)
        # and compare with the CDF increment.
        a = dist.median / 10.0 if not isinstance(dist, Normal) else dist.mean - 2 * np.sqrt(dist.variance)
        b = dist.mean + 10 * np.sqrt(dist.variance)
        grid = np.linspace(a, b, 200_000)
        integral = np.trapezoid(dist.pdf(grid), grid)
        expected = float(dist.cdf(b) - dist.cdf(a))
        assert integral == pytest.approx(expected, abs=2e-3)

    def test_cdf_monotone_and_bounded(self, dist):
        grid = np.linspace(-10.0, dist.mean * 10 + 100, 1000)
        cdf = dist.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert np.all((cdf >= 0) & (cdf <= 1))

    def test_cdf_at_median_is_half(self, dist):
        assert dist.cdf(dist.median) == pytest.approx(0.5, abs=1e-6)

    def test_sample_moments_match(self, dist):
        generator = np.random.Generator(np.random.PCG64(42))
        sample = dist.sample(generator, 200_000)
        assert np.mean(sample) == pytest.approx(dist.mean, rel=0.05)
        if dist.squared_cv < 5.0:
            assert np.var(sample) == pytest.approx(dist.variance, rel=0.15)
        else:
            # Heavy tails make the sample variance wildly unstable;
            # check a robust quantile instead.
            assert np.median(sample) == pytest.approx(dist.median, rel=0.05)

    def test_survival_complements_cdf(self, dist):
        x = dist.mean
        assert dist.survival(x) == pytest.approx(1.0 - dist.cdf(x))

    def test_nll_matches_manual_sum(self, dist):
        generator = np.random.Generator(np.random.PCG64(1))
        sample = dist.sample(generator, 100)
        if not isinstance(dist, Normal):
            sample = np.maximum(sample, 1e-9)
        assert dist.nll(sample) == pytest.approx(-np.sum(dist.logpdf(sample)))


class TestExponential:
    def test_memoryless_constant_hazard(self):
        dist = Exponential(scale=100.0)
        hazards = dist.hazard(np.array([1.0, 50.0, 500.0]))
        assert np.allclose(hazards, 0.01)

    def test_squared_cv_is_one(self):
        assert Exponential(scale=7.0).squared_cv == pytest.approx(1.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Exponential(scale=0.0)

    def test_logpdf_negative_support(self):
        assert Exponential(scale=1.0).logpdf(-1.0) == -np.inf


class TestWeibull:
    def test_hazard_decreasing_for_small_shape(self):
        dist = Weibull(shape=0.7, scale=100.0)
        assert dist.hazard_decreasing
        xs = np.array([10.0, 100.0, 1000.0])
        hazards = dist.hazard(xs)
        assert np.all(np.diff(hazards) < 0)

    def test_hazard_increasing_for_large_shape(self):
        dist = Weibull(shape=2.0, scale=100.0)
        assert not dist.hazard_decreasing
        xs = np.array([10.0, 100.0, 1000.0])
        hazards = dist.hazard(xs)
        assert np.all(np.diff(hazards) > 0)

    def test_shape_one_is_exponential(self):
        weibull = Weibull(shape=1.0, scale=100.0)
        exponential = Exponential(scale=100.0)
        xs = np.array([1.0, 10.0, 100.0, 1000.0])
        assert np.allclose(weibull.pdf(xs), exponential.pdf(xs))
        assert np.allclose(weibull.cdf(xs), exponential.cdf(xs))

    def test_median_formula(self):
        dist = Weibull(shape=0.75, scale=200.0)
        assert dist.median == pytest.approx(200.0 * np.log(2.0) ** (1 / 0.75))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Weibull(shape=-1.0, scale=1.0)
        with pytest.raises(ValueError):
            Weibull(shape=1.0, scale=0.0)


class TestGamma:
    def test_mean_variance(self):
        dist = Gamma(shape=3.0, scale=2.0)
        assert dist.mean == 6.0
        assert dist.variance == 12.0

    def test_hazard_direction_flag(self):
        assert Gamma(shape=0.5, scale=1.0).hazard_decreasing
        assert not Gamma(shape=2.0, scale=1.0).hazard_decreasing

    def test_shape_one_is_exponential(self):
        gamma = Gamma(shape=1.0, scale=50.0)
        exponential = Exponential(scale=50.0)
        xs = np.array([1.0, 20.0, 200.0])
        assert np.allclose(gamma.pdf(xs), exponential.pdf(xs), rtol=1e-9)


class TestLogNormal:
    def test_median_is_exp_mu(self):
        assert LogNormal(mu=3.0, sigma=1.0).median == pytest.approx(np.exp(3.0))

    def test_mean_formula(self):
        dist = LogNormal(mu=0.0, sigma=2.0)
        assert dist.mean == pytest.approx(np.exp(2.0))

    def test_zero_density_at_nonpositive(self):
        dist = LogNormal(mu=0.0, sigma=1.0)
        assert dist.pdf(0.0) == 0.0
        assert dist.pdf(-5.0) == 0.0
        assert dist.cdf(0.0) == 0.0

    def test_heavy_tail_c2(self):
        # C2 = exp(sigma^2) - 1 grows fast with sigma.
        assert LogNormal(mu=0.0, sigma=2.0).squared_cv == pytest.approx(np.expm1(4.0))


class TestPoisson:
    def test_pmf_sums_to_one(self):
        dist = Poisson(rate=8.5)
        ks = np.arange(0, 200)
        assert np.sum(dist.pmf(ks)) == pytest.approx(1.0, abs=1e-9)

    def test_non_integer_support_zero(self):
        dist = Poisson(rate=3.0)
        assert dist.pmf(2.5) == 0.0

    def test_cdf_consistent_with_pmf(self):
        dist = Poisson(rate=4.2)
        ks = np.arange(0, 30)
        manual = np.cumsum(dist.pmf(ks))
        assert np.allclose(dist.cdf(ks), manual, atol=1e-9)

    def test_median_is_center(self):
        dist = Poisson(rate=10.0)
        median = dist.median
        assert dist.cdf(median) >= 0.5
        assert dist.cdf(median - 1) < 0.5

    def test_mean_variance_equal(self):
        dist = Poisson(rate=6.0)
        assert dist.mean == dist.variance == 6.0

    def test_sample_counts(self):
        generator = np.random.Generator(np.random.PCG64(0))
        sample = Poisson(rate=5.0).sample(generator, 100_000)
        assert np.mean(sample) == pytest.approx(5.0, rel=0.02)
