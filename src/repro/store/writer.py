"""Writing a sharded columnar store.

:class:`StoreWriter` turns column batches into per-shard ``.npy``
column files plus a trailing :class:`~repro.store.manifest.Manifest`.
Every file goes through the repo's atomic-write machinery (tmp + fsync
+ rename) behind the ``store.column`` / ``store.manifest`` fault
sites, and the manifest is written *last*: a crash mid-store leaves
orphan column files but never a manifest describing shards that don't
fully exist.  Re-running the writer over the same directory atomically
replaces every file, which is what makes a journaled
``generate --resume`` into a store byte-identical to an unfaulted run.

Ordering contract (what the reader's merge relies on): each *group*
appended holds one system's rows sorted by ``(start_time, node_id)``,
groups arrive in ascending system order, and a group is split into
consecutive shards of at most ``shard_rows`` rows — so every shard is
single-system and internally sorted.
"""

from __future__ import annotations

import hashlib
import io
from pathlib import Path
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.records.system import SystemConfig
from repro.resilience.atomic import atomic_write_bytes, fs_fault_hook
from repro.store.manifest import (
    MANIFEST_NAME,
    SHARDS_DIR,
    Manifest,
    ShardInfo,
    shard_stats_from_batch,
)
from repro.store.schema import (
    COLUMN_NAMES,
    FORMAT_VERSION,
    ColumnBatch,
    schema_digest,
)

__all__ = ["StoreWriter", "DEFAULT_SHARD_ROWS", "column_file_name"]

#: Default rows per shard (~3.6 MB across the 31-byte row footprint).
DEFAULT_SHARD_ROWS = 131072


def column_file_name(shard: str, column: str) -> str:
    """File name of one shard's column inside ``shards/``."""
    return f"{shard}-{column}.npy"


def _npy_bytes(array: np.ndarray) -> bytes:
    """Serialize an array to ``.npy`` bytes (written atomically later)."""
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


class StoreWriter:
    """Stream column batches into a store directory.

    Parameters
    ----------
    root:
        Store directory (created if missing; existing files replaced).
    systems:
        Inventory recorded into the manifest (analysis needs node
        counts and production windows for rates).
    data_start / data_end:
        Observation window recorded into the manifest.
    record_ids:
        ``"implicit"`` — the record_id column is all ``-1`` and IDs are
        assigned by global read position (generated stores);
        ``"explicit"`` — IDs are stored per row (imported traces).
    shard_rows:
        Maximum rows per shard.
    meta:
        Free-form provenance merged into the manifest's ``meta``.
    manifest_site:
        Fault-injection site fired when the manifest is written
        (``store.manifest`` by default; ``store.merge.manifest`` when
        the writer is publishing a federated merge).
    """

    def __init__(
        self,
        root,
        *,
        systems: Optional[Mapping[int, SystemConfig]] = None,
        data_start: float = 0.0,
        data_end: float = 0.0,
        record_ids: str = "implicit",
        shard_rows: int = DEFAULT_SHARD_ROWS,
        meta: Optional[Dict[str, object]] = None,
        manifest_site: str = "store.manifest",
    ) -> None:
        if shard_rows < 1:
            raise ValueError(f"shard_rows must be >= 1, got {shard_rows}")
        if record_ids not in ("implicit", "explicit"):
            raise ValueError(
                f"record_ids must be 'implicit' or 'explicit', "
                f"got {record_ids!r}"
            )
        self.root = Path(root)
        self.shards_dir = self.root / SHARDS_DIR
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self.shard_rows = int(shard_rows)
        self.record_ids = record_ids
        self._systems = dict(systems) if systems is not None else {}
        self._data_start = float(data_start)
        self._data_end = float(data_end)
        self._meta = dict(meta) if meta is not None else {}
        self._manifest_site = manifest_site
        self._shards: List[ShardInfo] = []
        self._rows = 0
        self._finalized = False

    def append_group(self, batch: ColumnBatch) -> None:
        """Write one group (a single system's sorted rows) as shards.

        The group boundary is a shard boundary: rows of different
        systems never share a shard, so per-shard ``system_id`` stats
        stay exact and the reader's per-shard iterators each yield a
        non-decreasing key sequence.
        """
        if self._finalized:
            raise RuntimeError("StoreWriter already finalized")
        if batch.names != COLUMN_NAMES:
            missing = set(COLUMN_NAMES) - set(batch.names)
            raise ValueError(f"group batch is missing columns {sorted(missing)}")
        for offset in range(0, len(batch), self.shard_rows):
            chunk = batch.slice(offset, offset + self.shard_rows)
            if len(chunk):
                self._write_shard(chunk)

    def _write_shard(self, batch: ColumnBatch) -> None:
        name = f"{len(self._shards):05d}"
        checksums: Dict[str, str] = {}
        for column in COLUMN_NAMES:
            payload = _npy_bytes(batch[column])
            path = self.shards_dir / column_file_name(name, column)
            fs_fault_hook("store.column", path)
            atomic_write_bytes(path, payload)
            checksums[column] = hashlib.sha256(payload).hexdigest()
        self._shards.append(
            ShardInfo(
                name=name,
                rows=len(batch),
                stats=shard_stats_from_batch(batch),
                checksums=checksums,
            )
        )
        self._rows += len(batch)

    def finalize(self) -> Manifest:
        """Write the manifest and return it (call exactly once)."""
        if self._finalized:
            raise RuntimeError("StoreWriter already finalized")
        manifest = Manifest(
            schema_sha256=schema_digest(),
            format_version=FORMAT_VERSION,
            columns=COLUMN_NAMES,
            record_ids=self.record_ids,
            row_count=self._rows,
            shards=tuple(self._shards),
            data_start=self._data_start,
            data_end=self._data_end,
            systems=self._systems,
            meta=self._meta,
        )
        # Drop stale shard files from an earlier, differently-sharded
        # write of this directory before publishing the manifest: a
        # finalized store contains exactly the files its manifest lists.
        expected = {
            column_file_name(shard.name, column)
            for shard in self._shards
            for column in COLUMN_NAMES
        }
        for path in self.shards_dir.glob("*.npy"):
            if path.name not in expected:
                path.unlink()
        manifest.save(self.root / MANIFEST_NAME, site=self._manifest_site)
        self._finalized = True
        return manifest
