"""Tests for the ingest policy layer: strict / lenient / repair."""

import json

import pytest

from repro.io import (
    ColumnMapping,
    IngestPolicy,
    SchemaError,
    ingest_trace,
    read_jsonl,
    read_lanl_csv,
    write_jsonl,
    write_lanl_csv,
)
from repro.io.policy import LEGACY_POLICY, IngestReport
from repro.records.record import FailureRecord, RootCause

HEADER = "record_id,system_id,node_id,start_time,end_time,workload,root_cause,low_level_cause\n"

# Rows are inside the LANL window (1.5e8..2.5e8 seconds past 1996).
GOOD_ROWS = (
    "0,20,1,150000000.0,150003600.0,compute,hardware,memory\n"
    "1,20,2,160000000.0,160000060.0,compute,software,\n"
    "2,5,0,170000000.0,170001000.0,fe,unknown,\n"
)


def write_csv(tmp_path, body, name="trace.csv"):
    path = tmp_path / name
    path.write_text(HEADER + body)
    return path


class TestPolicyValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown ingest mode"):
            IngestPolicy(mode="yolo")

    def test_bad_error_rate_rejected(self):
        with pytest.raises(ValueError, match="max_error_rate"):
            IngestPolicy(max_error_rate=1.5)


class TestStrictPolicy:
    def test_clean_file_reads_fully(self, tmp_path):
        path = write_csv(tmp_path, GOOD_ROWS)
        result = ingest_trace(path, IngestPolicy(mode="strict"))
        assert len(result.trace) == 3
        assert result.ok
        assert result.report.rows_read == 3
        assert result.report.rows_kept == 3

    def test_strict_checks_inventory(self, tmp_path):
        path = write_csv(tmp_path, GOOD_ROWS + "3,99,0,1.8e8,1.9e8,compute,unknown,\n")
        with pytest.raises(SchemaError, match="line 5: unknown system 99"):
            ingest_trace(path, IngestPolicy(mode="strict"))

    def test_strict_checks_window(self, tmp_path):
        path = write_csv(tmp_path, "0,20,1,1.0,100.0,compute,hardware,memory\n")
        with pytest.raises(SchemaError, match="outside observation window"):
            ingest_trace(path, IngestPolicy(mode="strict"))

    def test_strict_checks_duplicate_ids(self, tmp_path):
        path = write_csv(
            tmp_path, GOOD_ROWS + "0,20,3,1.8e8,1.81e8,compute,unknown,\n"
        )
        with pytest.raises(SchemaError, match="duplicate record_id 0"):
            ingest_trace(path, IngestPolicy(mode="strict"))

    def test_legacy_readers_skip_cross_row_checks(self, tmp_path):
        # Without a policy, the readers keep their historical behavior:
        # no inventory / window / duplicate checks.
        path = write_csv(
            tmp_path,
            "0,99,0,1.0,100.0,compute,unknown,\n"
            "0,98,0,2.0,100.0,compute,unknown,\n",
        )
        trace = read_lanl_csv(path)
        assert len(trace) == 2
        assert LEGACY_POLICY.check_inventory is False


class TestLenientPolicy:
    def test_quarantines_only_bad_rows(self, tmp_path):
        path = write_csv(
            tmp_path,
            GOOD_ROWS
            + "3,20,4,not-a-number,1.9e8,compute,unknown,\n"
            + "4,20,5,1.8e8,1.9e8,gaming,unknown,\n",
        )
        result = ingest_trace(
            path, IngestPolicy(mode="lenient", max_error_rate=0.5)
        )
        assert len(result.trace) == 3
        report = result.report
        assert report.rows_read == 5
        assert report.rows_kept == 3
        assert report.rows_quarantined == 2
        assert report.error_counts == {"malformed-value": 1, "unknown-enum": 1}
        assert report.error_rate == pytest.approx(0.4)

    def test_error_samples_are_bounded(self, tmp_path):
        bad = "".join(
            f"{i},20,1,bad,1.9e8,compute,unknown,\n" for i in range(10)
        )
        path = write_csv(tmp_path, bad)
        result = ingest_trace(
            path, IngestPolicy(mode="lenient", max_error_rate=1.0, max_samples=3)
        )
        assert result.report.error_counts["malformed-value"] == 10
        assert len(result.report.error_samples["malformed-value"]) == 3

    def test_error_budget_fails_loudly(self, tmp_path):
        bad = "".join(
            f"{i},20,1,bad,1.9e8,compute,unknown,\n" for i in range(9)
        )
        path = write_csv(tmp_path, GOOD_ROWS + bad)
        with pytest.raises(SchemaError, match="error budget exceeded"):
            ingest_trace(path, IngestPolicy(mode="lenient", max_error_rate=0.25))

    def test_quarantine_dead_letter_file(self, tmp_path):
        path = write_csv(
            tmp_path, GOOD_ROWS + "3,20,4,bad,1.9e8,compute,unknown,\n"
        )
        dead = tmp_path / "dead.jsonl"
        result = ingest_trace(
            path,
            IngestPolicy(mode="lenient", max_error_rate=0.5, quarantine=dead),
        )
        assert result.report.quarantine_path == str(dead)
        entries = [json.loads(line) for line in dead.read_text().splitlines()]
        assert len(entries) == 1
        assert entries[0]["error_class"] == "malformed-value"
        assert entries[0]["line"] == 5
        assert entries[0]["raw"]["start_time"] == "bad"

    def test_lenient_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = '{"system_id": 20, "node_id": 1, "start_time": 1.5e8, "end_time": 1.6e8}'
        path.write_text(good + "\nnot json\n")
        result = ingest_trace(
            path, IngestPolicy(mode="lenient", max_error_rate=0.5)
        )
        assert len(result.trace) == 1
        assert result.report.error_counts == {"invalid-json": 1}

    def test_lenient_mapped_csv(self, tmp_path):
        path = tmp_path / "foreign.csv"
        path.write_text(
            "sys,node,start,end\n"
            "20,1,150000000.0,150003600.0\n"
            "20,2,garbage,150003600.0\n"
        )
        mapping = ColumnMapping(
            system_id="sys", node_id="node", start_time="start", end_time="end"
        )
        result = ingest_trace(
            path,
            IngestPolicy(mode="lenient", max_error_rate=0.5),
            mapping=mapping,
        )
        assert len(result.trace) == 1
        assert result.report.error_counts == {"malformed-value": 1}


class TestRepairPolicy:
    def test_swapped_times_repaired_exactly(self, tmp_path):
        path = write_csv(
            tmp_path, "0,20,1,150003600.0,150000000.0,compute,hardware,memory\n"
        )
        result = ingest_trace(path, IngestPolicy(mode="repair"))
        assert len(result.trace) == 1
        record = result.trace[0]
        assert record.start_time == 150000000.0
        assert record.end_time == 150003600.0
        assert result.report.rows_repaired == 1
        assert result.report.repair_counts == {"swapped-start-end": 1}

    def test_duplicate_id_repaired(self, tmp_path):
        path = write_csv(
            tmp_path, GOOD_ROWS + "0,20,3,1.8e8,1.81e8,compute,unknown,\n"
        )
        result = ingest_trace(path, IngestPolicy(mode="repair"))
        assert len(result.trace) == 4
        assert result.report.repair_counts == {"dropped-duplicate-id": 1}
        # The colliding row lost its ID; the original keeps it.
        ids = [record.record_id for record in result.trace]
        assert ids.count(0) == 1
        assert None in ids

    def test_out_of_window_clamped_within_slack(self, tmp_path):
        # One day before the window with 30-day slack: clamp, keep duration.
        from repro.records.inventory import DATA_START

        early = DATA_START - 86400.0
        path = write_csv(
            tmp_path, f"0,20,1,{early!r},{early + 3600.0!r},compute,hardware,memory\n"
        )
        result = ingest_trace(path, IngestPolicy(mode="repair"))
        record = result.trace[0]
        assert record.start_time == DATA_START
        assert record.repair_time == pytest.approx(3600.0)
        assert result.report.repair_counts == {"clamped-to-window": 1}

    def test_far_out_of_window_quarantined(self, tmp_path):
        from repro.records.inventory import DATA_END

        late = DATA_END + 400 * 86400.0
        path = write_csv(
            tmp_path,
            GOOD_ROWS
            + f"3,20,4,{late!r},{late + 60.0!r},compute,unknown,\n",
        )
        result = ingest_trace(
            path, IngestPolicy(mode="repair", max_error_rate=0.5)
        )
        assert len(result.trace) == 3
        assert result.report.error_counts == {"out-of-window": 1}

    def test_unrepairable_rows_still_quarantined(self, tmp_path):
        path = write_csv(
            tmp_path, GOOD_ROWS + "3,20,4,bad,1.9e8,compute,unknown,\n"
        )
        result = ingest_trace(
            path, IngestPolicy(mode="repair", max_error_rate=0.5)
        )
        assert len(result.trace) == 3
        assert result.report.rows_quarantined == 1


class TestReportPlumbing:
    def test_report_out_param_on_plain_reader(self, tmp_path):
        path = write_csv(tmp_path, GOOD_ROWS)
        report = IngestReport()
        read_lanl_csv(path, policy=IngestPolicy(mode="lenient"), report=report)
        assert report.rows_read == 3
        assert report.rows_kept == 3
        assert report.mode == "lenient"

    def test_report_to_dict_roundtrips_json(self, tmp_path):
        path = write_csv(tmp_path, GOOD_ROWS + "3,20,4,bad,1.9e8,compute,unknown,\n")
        result = ingest_trace(
            path, IngestPolicy(mode="lenient", max_error_rate=0.5)
        )
        payload = json.loads(json.dumps(result.report.to_dict()))
        assert payload["rows_quarantined"] == 1
        assert payload["error_counts"]["malformed-value"] == 1

    def test_ingest_trace_format_detection(self, tmp_path):
        records = [
            FailureRecord(
                start_time=1.5e8, end_time=1.5e8 + 60.0, system_id=20, node_id=1,
                root_cause=RootCause.HARDWARE,
            )
        ]
        csv_path = tmp_path / "t.csv"
        jsonl_path = tmp_path / "t.jsonl"
        write_lanl_csv(records, csv_path)
        write_jsonl(records, jsonl_path)
        assert len(ingest_trace(csv_path).trace) == 1
        assert len(ingest_trace(jsonl_path).trace) == 1

    def test_jsonl_reader_accepts_policy(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [
            FailureRecord(
                start_time=1.5e8, end_time=1.5e8 + 60.0, system_id=20, node_id=1,
            )
        ]
        write_jsonl(records, path)
        report = IngestReport()
        trace = read_jsonl(path, policy=IngestPolicy(mode="strict"), report=report)
        assert len(trace) == 1
        assert report.rows_read == 1
