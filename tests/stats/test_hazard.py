"""Tests for hazard-rate analysis."""

import numpy as np
import pytest

from repro.stats.distributions import Exponential, Gamma, LogNormal, Poisson, Weibull
from repro.stats.hazard import HazardDirection, empirical_hazard, hazard_direction


class TestHazardDirection:
    def test_exponential_constant(self):
        assert hazard_direction(Exponential(scale=5.0)) is HazardDirection.CONSTANT

    def test_weibull_below_one_decreasing(self):
        # The paper's headline: shape 0.7-0.8 => decreasing hazard.
        assert hazard_direction(Weibull(shape=0.7, scale=1.0)) is HazardDirection.DECREASING

    def test_weibull_above_one_increasing(self):
        assert hazard_direction(Weibull(shape=1.5, scale=1.0)) is HazardDirection.INCREASING

    def test_weibull_near_one_constant(self):
        assert hazard_direction(Weibull(shape=1.01, scale=1.0)) is HazardDirection.CONSTANT

    def test_gamma_mirrors_weibull_rule(self):
        assert hazard_direction(Gamma(shape=0.5, scale=1.0)) is HazardDirection.DECREASING
        assert hazard_direction(Gamma(shape=3.0, scale=1.0)) is HazardDirection.INCREASING

    def test_lognormal_non_monotone(self):
        assert hazard_direction(LogNormal(mu=0.0, sigma=1.0)) is HazardDirection.NON_MONOTONE

    def test_unsupported_distribution(self):
        with pytest.raises(TypeError):
            hazard_direction(Poisson(rate=3.0))


class TestEmpiricalHazard:
    def test_decreasing_for_dfr_sample(self):
        generator = np.random.Generator(np.random.PCG64(0))
        data = Weibull(shape=0.5, scale=100.0).sample(generator, 100_000)
        data = data[data > 0]
        mid, hazard = empirical_hazard(data, bins=15)
        # Overall decreasing trend: first third mean > last third mean.
        third = len(hazard) // 3
        assert np.mean(hazard[:third]) > 2 * np.mean(hazard[-third:])

    def test_roughly_constant_for_exponential(self):
        generator = np.random.Generator(np.random.PCG64(0))
        data = Exponential(scale=100.0).sample(generator, 200_000)
        data = data[data > 0]
        mid, hazard = empirical_hazard(data, bins=10)
        # Middle bins hover near the true rate 0.01.
        middle = hazard[2:7]
        assert np.all((middle > 0.005) & (middle < 0.02))

    def test_requires_positive_durations(self):
        with pytest.raises(ValueError):
            empirical_hazard([0.0, 1.0, 2.0, 3.0])

    def test_requires_minimum_observations(self):
        with pytest.raises(ValueError):
            empirical_hazard([1.0, 2.0])

    def test_output_shapes_match(self):
        generator = np.random.Generator(np.random.PCG64(3))
        data = Exponential(scale=10.0).sample(generator, 1000)
        mid, hazard = empirical_hazard(data[data > 0], bins=12)
        assert len(mid) == len(hazard)
        assert np.all(mid > 0)
        assert np.all(hazard >= 0)
