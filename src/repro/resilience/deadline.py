"""Request deadlines: monotonic budgets checked at work boundaries.

The always-on analytics service (``repro serve``) promises that a slow
scan returns a *partial* result instead of a hung connection.  That
promise is kept by threading a :class:`Deadline` into the columnar
store's chunked scans — every chunk boundary calls :meth:`Deadline.check`
and a blown budget surfaces as :class:`DeadlineExceeded`, which the
caller converts into an explicit ``partial`` response.

The clock is injectable (default ``time.monotonic``) so tests drive
expiry deterministically without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Deadline", "DeadlineExceeded"]


class DeadlineExceeded(Exception):
    """A deadline budget was exhausted mid-operation.

    Deliberately *not* an ``OSError``: a blown deadline is a policy
    decision, not an I/O failure, and must never be confused with a
    damaged store by degraded-read machinery.
    """


class Deadline:
    """A monotonic time budget for one operation.

    Parameters
    ----------
    budget:
        Seconds allowed from construction (or the explicit ``start``).
        ``None`` means unbounded — every probe reports time remaining
        as infinite and :meth:`check` never raises, so call sites can
        thread a deadline unconditionally.
    clock:
        Monotonic clock returning seconds; injectable for tests.
    start:
        Override the start instant (defaults to ``clock()`` now).
    """

    __slots__ = ("budget", "clock", "start")

    def __init__(
        self,
        budget: Optional[float],
        clock: Callable[[], float] = time.monotonic,
        start: Optional[float] = None,
    ) -> None:
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be > 0 or None, got {budget}")
        self.budget = budget
        self.clock = clock
        self.start = clock() if start is None else start

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self.clock() - self.start

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unbounded)."""
        if self.budget is None:
            return float("inf")
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        """True once the budget is spent."""
        return self.budget is not None and self.elapsed() >= self.budget

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget:.3f}s deadline "
                f"({self.elapsed():.3f}s elapsed)"
            )
