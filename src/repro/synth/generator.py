"""The trace generator: orchestrates all synthetic components.

:class:`TraceGenerator` produces a :class:`~repro.records.trace.FailureTrace`
for any subset of the 22 LANL systems.  Generation is deterministic in
the seed and *compositional*: each (system, node) derives its own RNG
stream, so generating system 20 alone yields exactly the same records
for system 20 as generating the full trace — and generating systems in
parallel worker processes yields exactly the same trace as generating
them serially.

Pipeline per system:

1. expand Table 1 categories into nodes with production windows,
2. assign workloads (graphics / front-end / compute) and per-node rate
   multipliers,
3. sample each node's failure times from a modulated Weibull renewal
   process (lifecycle x weekly modulation via time rescaling),
4. draw root causes (age-dependent unknown era for types D/G) and
   repair durations,
5. inject correlated bursts for the early NUMA era,
6. sort, stamp record IDs, wrap in a FailureTrace.

Engines and the RNG-stream contract
-----------------------------------
Two engines share this pipeline: ``"vectorized"`` (the default; batched
NumPy hot path) and ``"scalar"`` (the per-event reference loop).  Each
(system, node) consumes two dedicated streams:

* ``("system", s, "node", n, "arrivals")`` — one equilibrium uniform,
  then Weibull interarrivals.  The vectorized engine over-draws past
  the window capacity, so this stream is never reused for anything
  else.
* ``("system", s, "node", n, "marks")`` — fixed block order:
  ``u_cause``, ``u_lost``, ``u_detail``, ``u_tail``, ``z`` (one array
  each, sized by the node's event count).  Untouched when the node has
  no failures.

System-level streams (``jitter``, ``bursts``) and the per-node rate
multiplier stream are unchanged from the per-record pipeline.  Because
every stream's seed is a pure function of (root seed, label path), the
engines — and serial vs. parallel execution — produce bit-identical
records.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs

from repro.records.codes import (
    CAUSE_CODE,
    CAUSE_VOCAB,
    DETAIL_CODE,
    DETAIL_VOCAB,
    NO_DETAIL,
    WORKLOAD_CODE,
    WORKLOAD_VOCAB,
)
from repro.records.inventory import DATA_END, DATA_START, LANL_SYSTEMS
from repro.records.record import FailureRecord, Workload
from repro.records.system import SystemConfig
from repro.records.timeutils import (
    SECONDS_PER_MONTH,
    SECONDS_PER_WEEK,
    SECONDS_PER_YEAR,
)
from repro.records.trace import FailureTrace
from repro.resilience import (
    CircuitBreaker,
    RetryPolicy,
    RunReport,
    ShardJournal,
    supervised_map,
)
from repro.resilience import report as report_mod
from repro.simulate.rng import RngStream
from repro.synth.arrivals import (
    ArrivalGrid,
    ModulatedWeibullArrivals,
    build_arrival_grid,
    invert_operational,
    week_grid,
)
from repro.synth.config import ENGINES, GeneratorConfig
from repro.synth.correlated import inject_bursts
from repro.synth.diurnal import WeeklyProfile
from repro.synth.jitter import MonthlyJitter
from repro.synth.lifecycle import lifecycle_levels, lifecycle_shape_for
from repro.synth.nodes import (
    assign_workload,
    node_rate_multipliers,
    workload_multiplier,
)
from repro.synth.repair import RepairModel
from repro.synth.rootcause import CauseModel

__all__ = ["TraceGenerator", "SupervisionConfig"]


@dataclass
class _SystemColumns:
    """One system's failures in columnar form (pre-record objects).

    The hot path works on arrays; :class:`FailureRecord` objects are
    only materialized lazily at emission time, which is what bounds
    memory for scaled-inventory runs.  Categorical columns are int8
    codes (:mod:`repro.records.codes`), never object arrays: worker
    handoff and journal payloads pickle six numeric buffers instead of
    per-element enum references, and the columnar store can write them
    straight to disk.
    """

    system_id: int
    start: np.ndarray          # float64, node-major order
    end: np.ndarray            # float64
    node_id: np.ndarray        # int64
    cause_code: np.ndarray     # int8, index into CAUSE_VOCAB
    detail_code: np.ndarray    # int8, index into DETAIL_VOCAB, -1 = None
    workload_code: np.ndarray  # int8, index into WORKLOAD_VOCAB

    def __len__(self) -> int:
        return len(self.start)


def _empty_columns(system_id: int) -> _SystemColumns:
    return _SystemColumns(
        system_id=system_id,
        start=np.empty(0),
        end=np.empty(0),
        node_id=np.empty(0, dtype=np.int64),
        cause_code=np.empty(0, dtype=np.int8),
        detail_code=np.empty(0, dtype=np.int8),
        workload_code=np.empty(0, dtype=np.int8),
    )


def _records_from_columns(columns: _SystemColumns) -> List[FailureRecord]:
    """Materialize a system's columns as (un-numbered) records."""
    # FailureRecord.__post_init__ coerces numeric fields, so NumPy
    # scalars can be passed straight through.
    records = []
    for i in range(len(columns)):
        detail = int(columns.detail_code[i])
        records.append(
            FailureRecord(
                start_time=columns.start[i],
                end_time=columns.end[i],
                system_id=columns.system_id,
                node_id=columns.node_id[i],
                root_cause=CAUSE_VOCAB[columns.cause_code[i]],
                low_level_cause=DETAIL_VOCAB[detail] if detail >= 0 else None,
                workload=WORKLOAD_VOCAB[columns.workload_code[i]],
            )
        )
    return records


def _columns_from_records(
    system_id: int, records: Sequence[FailureRecord]
) -> _SystemColumns:
    """Inverse of :func:`_records_from_columns` (burst adapter)."""
    if not records:
        return _empty_columns(system_id)
    return _SystemColumns(
        system_id=system_id,
        start=np.array([r.start_time for r in records]),
        end=np.array([r.end_time for r in records]),
        node_id=np.array([r.node_id for r in records], dtype=np.int64),
        cause_code=np.array(
            [CAUSE_CODE[r.root_cause] for r in records], dtype=np.int8
        ),
        detail_code=np.array(
            [
                NO_DETAIL if r.low_level_cause is None
                else DETAIL_CODE[r.low_level_cause]
                for r in records
            ],
            dtype=np.int8,
        ),
        workload_code=np.array(
            [WORKLOAD_CODE[r.workload] for r in records], dtype=np.int8
        ),
    )


def _shard_key(system_id: int) -> str:
    return f"system-{system_id}"


def _system_columns_task(payload: Tuple) -> _SystemColumns:
    """Worker entry point for ``workers > 1`` (module-level: picklable).

    Rebuilds the generator from its defining state; determinism comes
    from the (seed, label path) stream derivation, so the rebuilt
    generator's output is identical to the parent's — which is also
    what makes a *retried* shard byte-identical to a first-try one.
    """
    seed, config, systems, data_start, data_end, system_id, engine = payload
    generator = TraceGenerator(
        seed=seed,
        config=config,
        systems=systems,
        data_start=data_start,
        data_end=data_end,
    )
    # Worker-side tracing: a no-op unless the parent armed the spool
    # directory (repro.obs.SPOOL_ENV_VAR, inherited through the pool).
    # When armed, the shard's spans go to a stream named after the
    # shard key and are spooled for the supervisor to graft.
    key = _shard_key(system_id)
    with obs.worker_tracing(key):
        with obs.span("synth.system", system=system_id, engine=engine) as span:
            columns = generator._system_columns(system_id, engine)
            span.add("records", len(columns))
    return columns


@dataclass(frozen=True)
class SupervisionConfig:
    """How :class:`TraceGenerator` supervises multi-process generation.

    Parameters
    ----------
    policy:
        Retry/backoff policy for failed shards.
    shard_timeout:
        Hang detection: if no shard completes for this many seconds,
        the worker pool is terminated and respawned and the unfinished
        shards retried.  ``None`` disables hang detection.
    failure_threshold:
        Failures per degradation stage before the circuit breaker moves
        a shard down the ladder (vectorized → scalar → skip).
    degrade_to_scalar:
        Whether a repeatedly-failing vectorized shard falls back to the
        scalar reference engine (byte-identical output) before being
        skipped.
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    shard_timeout: Optional[float] = None
    failure_threshold: int = 3
    degrade_to_scalar: bool = True

    def stages(self, engine: str) -> Tuple[str, ...]:
        """The engine degradation ladder for a run on ``engine``."""
        if self.degrade_to_scalar and engine == "vectorized":
            return ("vectorized", "scalar")
        return (engine,)


class TraceGenerator:
    """Generate a synthetic LANL failure trace.

    Parameters
    ----------
    seed:
        Root seed; the trace is a deterministic function of it (plus
        the configuration).
    config:
        Calibration knobs; defaults reproduce the paper.
    systems:
        Inventory to generate for; defaults to all 22 LANL systems.
    data_start / data_end:
        Observation window; defaults to the LANL data window.

    Example
    -------
    >>> trace = TraceGenerator(seed=1).generate([2])
    >>> 0 < len(trace) < 400   # system 2 averages ~17.6 failures/year
    True
    """

    def __init__(
        self,
        seed: int = 0,
        config: Optional[GeneratorConfig] = None,
        systems: Optional[Dict[int, SystemConfig]] = None,
        data_start: float = DATA_START,
        data_end: float = DATA_END,
    ) -> None:
        self.seed = int(seed)
        self.config = config if config is not None else GeneratorConfig()
        self.systems = dict(systems if systems is not None else LANL_SYSTEMS)
        self.data_start = float(data_start)
        self.data_end = float(data_end)
        self._root = RngStream(seed)
        self._profile = WeeklyProfile(
            amplitude=self.config.diurnal_amplitude,
            peak_hour=self.config.diurnal_peak_hour,
            weekend_factor=self.config.weekend_factor,
            enabled=self.config.diurnal_enabled,
        )
        self._repair_model = RepairModel(self.config)
        #: The :class:`~repro.resilience.report.RunReport` of the most
        #: recent :meth:`generate`/:meth:`iter_records` call.
        self.last_run_report: Optional[RunReport] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def generate(
        self,
        system_ids: Optional[Sequence[int]] = None,
        *,
        workers: int = 1,
        engine: Optional[str] = None,
        supervision: Optional[SupervisionConfig] = None,
        journal: Optional[ShardJournal] = None,
    ) -> FailureTrace:
        """Generate the trace for the given systems (default: all).

        Parameters
        ----------
        workers:
            Number of worker processes for per-system generation; 1
            (default) runs in-process.  Output is identical for any
            worker count.  Values above ``os.cpu_count()`` or the
            number of systems are clamped (with a warning for the CPU
            case).
        engine:
            Override the config's ``default_engine`` ("vectorized" or
            "scalar"); both produce identical traces.
        supervision:
            Fault-tolerance knobs for the worker fan-out (retry policy,
            hang timeout, degradation ladder); defaults apply when
            omitted.  Graceful degradation is opt-in: when omitted, a
            shard that fails past every retry raises (serial and
            parallel alike) instead of being skipped, so a bare run
            never returns a silently incomplete trace.  The resulting
            :class:`~repro.resilience.report.RunReport` is available as
            :attr:`last_run_report`.
        journal:
            Optional :class:`~repro.resilience.journal.ShardJournal`:
            completed shards are durably recorded as they finish, and
            shards already in the journal are loaded instead of
            regenerated (crash-resumable runs).
        """
        records = list(
            self.iter_records(
                system_ids,
                workers=workers,
                engine=engine,
                supervision=supervision,
                journal=journal,
            )
        )
        return FailureTrace(
            records,
            systems=self.systems,
            data_start=self.data_start,
            data_end=self.data_end,
        )

    def iter_records(
        self,
        system_ids: Optional[Sequence[int]] = None,
        *,
        workers: int = 1,
        engine: Optional[str] = None,
        supervision: Optional[SupervisionConfig] = None,
        journal: Optional[ShardJournal] = None,
    ) -> Iterator[FailureRecord]:
        """Yield the trace's records in final order, lazily.

        Record objects are built one at a time from the columnar
        intermediate, so peak memory is the (numeric) columns plus one
        record — the streaming path for scaled-inventory runs where
        materializing millions of record objects would dominate memory.
        Ordering and record IDs match :meth:`generate` exactly.
        ``supervision`` and ``journal`` behave as in :meth:`generate`.
        """
        if system_ids is None:
            system_ids = sorted(self.systems.keys())
        system_ids = list(system_ids)
        engine = self._resolve_engine(engine)
        with obs.span(
            "generate",
            engine=engine,
            workers=workers,
            systems=len(system_ids),
            seed=self.seed,
        ) as gen_span:
            columns = self._all_columns(
                system_ids, workers, engine, supervision, journal
            )
            columns = [c for c in columns if len(c)]
            total = int(sum(len(c) for c in columns))
            gen_span.add("records", total)
        registry = obs.metrics()
        registry.counter("generate.records").add(total)
        registry.counter("generate.systems").add(len(columns))
        if not columns:
            return
        starts = np.concatenate([c.start for c in columns])
        ends = np.concatenate([c.end for c in columns])
        node_ids = np.concatenate([c.node_id for c in columns])
        cause_codes = np.concatenate([c.cause_code for c in columns])
        detail_codes = np.concatenate([c.detail_code for c in columns])
        workload_codes = np.concatenate([c.workload_code for c in columns])
        sys_ids = np.concatenate(
            [np.full(len(c), c.system_id, dtype=np.int64) for c in columns]
        )
        # Stable sort by (start, system, node) — identical to the
        # record-object sort the per-record pipeline used.
        with obs.span("generate.sort", records=int(starts.size)):
            order = np.lexsort((node_ids, sys_ids, starts))
        # __post_init__ coerces the NumPy scalars to Python floats/ints;
        # categorical codes decode through the canonical vocab tables.
        for record_id, i in enumerate(order):
            detail = int(detail_codes[i])
            yield FailureRecord(
                start_time=starts[i],
                end_time=ends[i],
                system_id=sys_ids[i],
                node_id=node_ids[i],
                root_cause=CAUSE_VOCAB[cause_codes[i]],
                low_level_cause=DETAIL_VOCAB[detail] if detail >= 0 else None,
                workload=WORKLOAD_VOCAB[workload_codes[i]],
                record_id=record_id,
            )

    def generate_system(
        self, system_id: int, engine: Optional[str] = None
    ) -> List[FailureRecord]:
        """Generate (unsorted, un-numbered) records for one system."""
        engine = self._resolve_engine(engine)
        return _records_from_columns(self._system_columns(system_id, engine))

    def generate_store(
        self,
        root: "os.PathLike",
        system_ids: Optional[Sequence[int]] = None,
        *,
        workers: int = 1,
        engine: Optional[str] = None,
        supervision: Optional[SupervisionConfig] = None,
        journal: Optional[ShardJournal] = None,
        shard_rows: Optional[int] = None,
        meta: Optional[Dict[str, object]] = None,
    ):
        """Generate straight into a columnar store directory.

        The engines' column batches are written to per-shard ``.npy``
        column files under ``root`` without ever materializing
        :class:`FailureRecord` objects — the out-of-core path for
        scaled-inventory runs.  ``workers``, ``supervision`` and
        ``journal`` behave exactly as in :meth:`generate`; reading the
        store back (:meth:`repro.store.ColumnarStore.iter_records`)
        yields the same records, in the same order, with the same
        record IDs as :meth:`iter_records`.

        Returns the store's :class:`~repro.store.manifest.Manifest`.
        """
        from repro.store.schema import ColumnBatch
        from repro.store.writer import DEFAULT_SHARD_ROWS, StoreWriter

        if system_ids is None:
            system_ids = sorted(self.systems.keys())
        system_ids = list(system_ids)
        engine = self._resolve_engine(engine)
        with obs.span(
            "store.generate",
            engine=engine,
            workers=workers,
            systems=len(system_ids),
            seed=self.seed,
        ) as span:
            columns = self._all_columns(
                system_ids, workers, engine, supervision, journal
            )
            columns = [c for c in columns if len(c)]
            total = int(sum(len(c) for c in columns))
            span.add("records", total)
            store_meta: Dict[str, object] = {
                "generator": "repro-synth",
                "seed": self.seed,
                "engine": engine,
            }
            if meta:
                store_meta.update(meta)
            writer = StoreWriter(
                root,
                systems=self.systems,
                data_start=self.data_start,
                data_end=self.data_end,
                record_ids="implicit",
                shard_rows=(
                    shard_rows if shard_rows is not None else DEFAULT_SHARD_ROWS
                ),
                meta=store_meta,
            )
            with obs.span("store.write", records=total):
                # One group per system, ascending: each shard holds one
                # system's rows sorted by (start, node) — the layout the
                # reader's k-way merge and predicate pushdown rely on.
                for c in sorted(columns, key=lambda c: c.system_id):
                    order = np.lexsort((c.node_id, c.start))
                    writer.append_group(
                        ColumnBatch(
                            {
                                "start_time": c.start[order],
                                "end_time": c.end[order],
                                "system_id": np.full(
                                    len(c), c.system_id, dtype=np.int32
                                ),
                                "node_id": c.node_id[order].astype(np.int32),
                                "root_cause": c.cause_code[order],
                                "low_level_cause": c.detail_code[order],
                                "workload": c.workload_code[order],
                                "record_id": np.full(
                                    len(c), -1, dtype=np.int64
                                ),
                            }
                        )
                    )
            manifest = writer.finalize()
        registry = obs.metrics()
        registry.counter("store.records_written").add(total)
        registry.counter("store.shards_written").add(len(manifest.shards))
        return manifest

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve_engine(self, engine: Optional[str]) -> str:
        engine = engine if engine is not None else self.config.default_engine
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        return engine

    def journal_meta(self, engine: Optional[str] = None) -> Dict[str, object]:
        """The run-identity dict pinned into a resumable run's journal.

        Shards are compositional — a system's records are a pure
        function of ``(seed, config, inventory, engine)`` — so the
        identity deliberately excludes *which* systems a run requested:
        a journaled shard is valid for any later run with the same
        identity.
        """
        engine = self._resolve_engine(engine)
        systems_digest = hashlib.sha256(
            repr(sorted(self.systems.items())).encode("utf-8")
        ).hexdigest()
        config_digest = hashlib.sha256(
            repr(self.config).encode("utf-8")
        ).hexdigest()
        return {
            "kind": "repro-generate",
            # Journal payloads are pickled _SystemColumns; bump when the
            # shard payload layout changes so a --resume against an old
            # run directory fails loudly instead of unpickling garbage.
            "payload": "columns-v2",
            "seed": self.seed,
            "engine": engine,
            "systems_sha256": systems_digest,
            "config_sha256": config_digest,
            "data_start": self.data_start,
            "data_end": self.data_end,
        }

    def _effective_workers(self, workers: int, n_shards: int) -> int:
        """Validate and clamp the worker count.

        * ``workers > len(shards)`` would spawn idle processes — clamp
          silently (it is an upper bound, not a demand);
        * ``workers > os.cpu_count()`` oversubscribes — warn and clamp.
          The cap has a floor of 2 so an explicit parallel request
          still exercises a real process pool on single-core hosts
          (two workers on one core is timesharing, not a fan-out bomb).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers == 1 or n_shards <= 1:
            return 1
        effective = min(workers, n_shards)
        cpu_cap = max(2, os.cpu_count() or 1)
        if effective > cpu_cap:
            warnings.warn(
                f"workers={workers} exceeds cpu_count()={os.cpu_count()}; "
                f"clamping to {cpu_cap} to avoid oversubscription",
                RuntimeWarning,
                stacklevel=3,
            )
            effective = cpu_cap
        return effective

    def _all_columns(
        self,
        system_ids: List[int],
        workers: int,
        engine: str,
        supervision: Optional[SupervisionConfig] = None,
        journal: Optional[ShardJournal] = None,
    ) -> List[_SystemColumns]:
        unknown = sorted(set(system_ids) - set(self.systems))
        if unknown:
            raise KeyError(
                f"unknown system id(s) {unknown}; inventory has "
                f"{sorted(self.systems)}"
            )
        # Degradation (structured skips) is opt-in on *every* path: a
        # bare run — serial or parallel — should raise on a genuine
        # bug, not hand back a silently incomplete trace.
        explicit_supervision = supervision is not None
        supervision = (
            supervision if supervision is not None else SupervisionConfig()
        )
        report = RunReport(
            meta={
                "seed": self.seed,
                "engine": engine,
                "requested_workers": workers,
                "systems": list(system_ids),
                "policy": {
                    "max_attempts": supervision.policy.max_attempts,
                    "base_delay": supervision.policy.base_delay,
                    "multiplier": supervision.policy.multiplier,
                    "max_delay": supervision.policy.max_delay,
                    "jitter": supervision.policy.jitter,
                    "deadline": supervision.policy.deadline,
                },
                "failure_threshold": supervision.failure_threshold,
                "shard_timeout": supervision.shard_timeout,
            },
        )
        self.last_run_report = report
        results: Dict[int, Optional[_SystemColumns]] = {}
        pending: List[int] = []
        for system_id in system_ids:
            key = _shard_key(system_id)
            if journal is not None and journal.has(key):
                columns = journal.load(key)
                results[system_id] = columns
                report.mark_resumed(key, records=len(columns))
            else:
                pending.append(system_id)
        effective = self._effective_workers(workers, len(pending))
        report.meta["workers"] = effective
        if pending and effective == 1:
            for system_id in pending:
                if explicit_supervision:
                    results[system_id] = self._serial_supervised(
                        system_id, engine, supervision, report, journal
                    )
                else:
                    key = _shard_key(system_id)
                    begin = time.perf_counter()
                    with obs.span(
                        "shard.attempt", shard=key, stage=engine, attempt=1
                    ) as span:
                        columns = self._system_columns(system_id, engine)
                        span.add("records", len(columns))
                    report.record_attempt(
                        key, engine, report_mod.OK,
                        wall_s=time.perf_counter() - begin,
                    )
                    report.finish_shard(
                        key, report_mod.STATUS_OK, records=len(columns)
                    )
                    self._journal_shard(journal, key, columns)
                    results[system_id] = columns
        elif pending:
            results.update(
                self._parallel_supervised(
                    pending, effective, engine, supervision, report, journal
                )
            )
            if not explicit_supervision and report.skipped_shards:
                # Mirror the bare serial path, where the exception
                # propagates directly: a caller who never asked for
                # graceful degradation gets an error, not a trace
                # missing systems (with silently renumbered records).
                raise RuntimeError(self._describe_skips(report))
        return [
            results[system_id]
            for system_id in system_ids
            if results[system_id] is not None
        ]

    @staticmethod
    def _describe_skips(report: RunReport) -> str:
        """Error message for shards that failed past every retry."""
        details = []
        for shard in report.skipped_shards:
            last_error = next(
                (a.error for a in reversed(shard.attempts) if a.error),
                "no attempt recorded",
            )
            details.append(f"{shard.shard} ({last_error})")
        return (
            f"generation failed for {len(details)} shard(s) despite "
            f"retries: {'; '.join(details)}; pass an explicit "
            "SupervisionConfig to degrade or skip failing shards "
            "instead of raising"
        )

    def _shard_payload(self, system_id: int, engine: str) -> Tuple:
        return (
            self.seed,
            self.config,
            self.systems,
            self.data_start,
            self.data_end,
            system_id,
            engine,
        )

    def _journal_shard(
        self,
        journal: Optional[ShardJournal],
        key: str,
        columns: _SystemColumns,
    ) -> None:
        if journal is not None:
            journal.record(key, columns, extra={"records": len(columns)})

    def _parallel_supervised(
        self,
        system_ids: List[int],
        workers: int,
        engine: str,
        supervision: SupervisionConfig,
        report: RunReport,
        journal: Optional[ShardJournal],
    ) -> Dict[int, Optional[_SystemColumns]]:
        """Supervised process fan-out: crashes, hangs and errors survive."""
        stages = supervision.stages(engine)
        breaker = CircuitBreaker(
            stages=stages, failure_threshold=supervision.failure_threshold
        )
        keys = [_shard_key(system_id) for system_id in system_ids]
        by_key = dict(zip(keys, system_ids))

        def stage_payload(payload: Tuple, stage: str) -> Tuple:
            return payload[:-1] + (stage,)

        def on_result(key: str, columns: _SystemColumns) -> None:
            self._journal_shard(journal, key, columns)

        shard_results = supervised_map(
            _system_columns_task,
            [self._shard_payload(system_id, engine) for system_id in system_ids],
            keys=keys,
            workers=workers,
            policy=supervision.policy,
            breaker=breaker,
            stage_payload=stage_payload,
            shard_timeout=supervision.shard_timeout,
            report=report,
            on_result=on_result,
        )
        return {by_key[key]: columns for key, columns in shard_results.items()}

    def _serial_supervised(
        self,
        system_id: int,
        engine: str,
        supervision: SupervisionConfig,
        report: RunReport,
        journal: Optional[ShardJournal],
    ) -> Optional[_SystemColumns]:
        """In-process generation with the same degradation ladder.

        In-process failures are deterministic (no crashed workers to
        respawn), so each ladder stage gets a single attempt:
        vectorized → scalar → structured skip.
        """
        key = _shard_key(system_id)
        for attempt, stage in enumerate(supervision.stages(engine), start=1):
            begin = time.perf_counter()
            try:
                with obs.span(
                    "shard.attempt", shard=key, stage=stage, attempt=attempt
                ) as span:
                    columns = self._system_columns(system_id, stage)
                    span.add("records", len(columns))
            except Exception as exc:
                report.record_attempt(
                    key, stage, report_mod.ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    wall_s=time.perf_counter() - begin,
                )
                continue
            report.record_attempt(
                key, stage, report_mod.OK,
                wall_s=time.perf_counter() - begin,
            )
            report.finish_shard(
                key,
                report_mod.STATUS_OK if attempt == 1
                else report_mod.STATUS_DEGRADED,
                records=len(columns),
            )
            self._journal_shard(journal, key, columns)
            return columns
        report.finish_shard(key, report_mod.STATUS_SKIPPED)
        return None

    def _system_columns(self, system_id: int, engine: str) -> _SystemColumns:
        """Generate one system's failures in columnar, node-major form."""
        # Chaos hook for the fault-injection drills (no-op unless armed
        # via the environment).  Placed here — the single per-shard
        # execution point — so serial drills inject exactly like worker
        # drills.  Imported lazily: repro.faults pulls in the report
        # stack, which must not load at generator import time.
        from repro.faults.process_ops import maybe_inject

        maybe_inject(_shard_key(system_id))
        system = self.systems[system_id]
        config = self.config
        hardware_type = system.hardware_type
        nodes = system.expand_nodes(self.data_start, self.data_end)
        system_start, system_end = system.production_window(
            self.data_start, self.data_end
        )
        shape = lifecycle_shape_for(
            hardware_type,
            system_id,
            ramp_types=config.ramp_types,
            ramp_exempt_systems=config.ramp_exempt_systems,
        )
        cause_model = CauseModel(config, hardware_type)
        repair_sampler = self._repair_model.batch_sampler(
            cause_model.causes, hardware_type
        )
        n_months = int((system_end - system_start) // SECONDS_PER_MONTH) + 2
        jitter = MonthlyJitter(
            self._root.child("system", str(system_id), "jitter"),
            n_months=n_months,
            shape=shape,
            sigma_early_ramp=config.jitter_sigma_early_ramp,
            sigma_early_decay=config.jitter_sigma_early_decay,
            sigma_late=config.jitter_sigma_late,
            era_months=config.jitter_era_months,
            enabled=config.jitter_enabled,
        )
        rate_per_proc_second = (
            config.rate_per_proc_year[hardware_type]
            * config.early_system_boost.get(system_id, 1.0)
            / SECONDS_PER_YEAR
        )
        workloads: Dict[int, Workload] = {
            node.node_id: assign_workload(system, node.node_id) for node in nodes
        }
        multipliers = node_rate_multipliers(
            system_id, len(nodes), self._root, config.node_sigma
        )
        # Weekly capacity grids, cached per production window (nodes of
        # one Table 1 category share their window, so a system needs
        # only a handful of distinct grids).
        grid_cache: Dict[Tuple[float, float], ArrivalGrid] = {}

        def node_grid(node_start: float, node_end: float) -> ArrivalGrid:
            key = (node_start, node_end)
            grid = grid_cache.get(key)
            if grid is None:
                mids = week_grid(node_start, node_end) + 0.5 * SECONDS_PER_WEEK
                # Lifecycle age is measured from *system* production
                # start: a node added later joins a matured system.
                ages = np.maximum(0.0, mids - node_start) + (
                    node_start - system_start
                )
                levels = lifecycle_levels(shape, ages) * jitter.at_ages(ages)
                grid = build_arrival_grid(
                    self._profile, node_start, node_end, levels
                )
                grid_cache[key] = grid
            return grid

        sys_label = str(system_id)

        def node_base_rate(position: int, node) -> float:
            multiplier = float(multipliers[position])
            multiplier *= workload_multiplier(
                workloads[node.node_id],
                graphics_multiplier=config.graphics_multiplier,
                frontend_multiplier=config.frontend_multiplier,
            )
            return rate_per_proc_second * node.procs * multiplier

        # --- Arrival stage: (node, starts) pairs in node order --------
        node_starts: List[Tuple[object, np.ndarray]] = []
        with obs.span(
            "synth.arrivals", system=system_id, engine=engine
        ) as arrivals_span:
            if engine == "vectorized":
                # Draw per node (each node owns its arrival stream), but
                # defer the time-rescaling inversion so all nodes sharing a
                # grid — a whole Table 1 category — invert in one call.
                pending: List[Tuple[object, np.ndarray, ArrivalGrid]] = []
                for position, node in enumerate(nodes):
                    sampler = ModulatedWeibullArrivals(
                        base_rate=node_base_rate(position, node),
                        shape=config.tbf_shape,
                        profile=self._profile,
                        start=node.production_start,
                        end=node.production_end,
                        grid=node_grid(node.production_start, node.production_end),
                    )
                    totals = sampler.sample_operational_totals(
                        self._root.spawn_generator(
                            "system", sys_label, "node", str(node.node_id), "arrivals"
                        )
                    )
                    if totals.size:
                        pending.append((node, totals, sampler._grid))
                groups: Dict[int, List[int]] = {}
                for i, (_node, _totals, grid) in enumerate(pending):
                    groups.setdefault(id(grid), []).append(i)
                starts_for: Dict[int, np.ndarray] = {}
                for members in groups.values():
                    grid = pending[members[0]][2]
                    merged = np.concatenate([pending[i][1] for i in members])
                    times = invert_operational(grid, self._profile, merged)
                    offset = 0
                    for i in members:
                        node, totals, _grid = pending[i]
                        segment = times[offset : offset + len(totals)]
                        offset += len(totals)
                        starts_for[i] = segment[segment < node.production_end]
                for i, (node, _totals, _grid) in enumerate(pending):
                    starts = starts_for[i]
                    if starts.size:
                        node_starts.append((node, starts))
            else:
                for position, node in enumerate(nodes):
                    sampler = ModulatedWeibullArrivals(
                        base_rate=node_base_rate(position, node),
                        shape=config.tbf_shape,
                        profile=self._profile,
                        start=node.production_start,
                        end=node.production_end,
                        grid=node_grid(node.production_start, node.production_end),
                    )
                    starts = np.asarray(
                        sampler.sample(
                            self._root.spawn_generator(
                                "system",
                                sys_label,
                                "node",
                                str(node.node_id),
                                "arrivals",
                            )
                        )
                    )
                    if starts.size:
                        node_starts.append((node, starts))
            arrivals_span.set("nodes", len(nodes))
            arrivals_span.add(
                "events", int(sum(len(starts) for _, starts in node_starts))
            )

        # --- Mark stage: per-node block draws, system-level resolve --
        with obs.span(
            "synth.marks", system=system_id, engine=engine
        ) as marks_span:
            parts_start: List[np.ndarray] = []
            parts_node: List[np.ndarray] = []
            parts_workload: List[np.ndarray] = []
            marks_u_cause: List[np.ndarray] = []
            marks_u_lost: List[np.ndarray] = []
            marks_u_detail: List[np.ndarray] = []
            marks_u_tail: List[np.ndarray] = []
            marks_z: List[np.ndarray] = []
            for node, starts in node_starts:
                n_events = len(starts)
                marks_generator = self._root.spawn_generator(
                    "system", sys_label, "node", str(node.node_id), "marks"
                )
                marks_u_cause.append(marks_generator.random(n_events))
                marks_u_lost.append(marks_generator.random(n_events))
                marks_u_detail.append(marks_generator.random(n_events))
                marks_u_tail.append(marks_generator.random(n_events))
                marks_z.append(marks_generator.standard_normal(n_events))
                parts_start.append(starts)
                parts_node.append(np.full(n_events, node.node_id, dtype=np.int64))
                parts_workload.append(
                    np.full(
                        n_events,
                        WORKLOAD_CODE[workloads[node.node_id]],
                        dtype=np.int8,
                    )
                )
            if not parts_start:
                columns = _empty_columns(system_id)
            else:
                starts_all = np.concatenate(parts_start)
                u_cause = np.concatenate(marks_u_cause)
                u_lost = np.concatenate(marks_u_lost)
                u_detail = np.concatenate(marks_u_detail)
                u_tail = np.concatenate(marks_u_tail)
                z = np.concatenate(marks_z)
                ages = starts_all - system_start
                if engine == "vectorized":
                    cause_idx, detail_idx = cause_model.resolve_batch(
                        u_cause, u_lost, u_detail, ages
                    )
                    repairs = repair_sampler.resolve_seconds(u_tail, z, cause_idx)
                else:
                    cause_idx, detail_idx = cause_model.resolve_batch_scalar(
                        u_cause, u_lost, u_detail, ages
                    )
                    repairs = repair_sampler.resolve_seconds_scalar(
                        u_tail, z, cause_idx
                    )
                columns = _SystemColumns(
                    system_id=system_id,
                    start=starts_all,
                    end=starts_all + repairs,
                    node_id=np.concatenate(parts_node),
                    cause_code=cause_model.resolve_cause_codes(cause_idx),
                    detail_code=cause_model.resolve_detail_codes(
                        cause_idx, detail_idx
                    ),
                    workload_code=np.concatenate(parts_workload),
                )
            marks_span.add("records", len(columns))
        if config.bursts_enabled and system_id in config.burst_systems:
            with obs.span("synth.bursts", system=system_id) as bursts_span:
                burst_stream = self._root.child("system", sys_label, "bursts")
                records = inject_bursts(
                    _records_from_columns(columns),
                    nodes,
                    workloads,
                    system_start,
                    hardware_type,
                    config,
                    self._repair_model,
                    burst_stream.generator,
                )
                bursts_span.add("added", len(records) - len(columns))
                columns = _columns_from_records(system_id, records)
        return columns
