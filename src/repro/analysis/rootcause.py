"""Root-cause breakdowns (Figure 1, Section 4).

Figure 1(a) breaks the *number* of failures into the six high-level
root-cause categories per hardware type; Figure 1(b) does the same for
*downtime*.  Section 4 additionally examines low-level causes: memory
is the most common low-level cause everywhere except type E (CPU design
flaw), and the dominant software cause differs per type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.errors import DegenerateSampleError
from repro.records.record import HIGH_LEVEL_CAUSES, LowLevelCause, RootCause
from repro.records.system import HardwareType
from repro.records.trace import FailureTrace

__all__ = [
    "CauseBreakdown",
    "breakdown_by_hardware_type",
    "downtime_breakdown_by_hardware_type",
    "low_level_shares",
    "memory_share",
    "top_software_cause",
]

#: The hardware types Figure 1 plots (A-C are single-node systems and
#: are shown only in the all-systems aggregate).
FIGURE1_TYPES: Tuple[HardwareType, ...] = (
    HardwareType.D,
    HardwareType.E,
    HardwareType.F,
    HardwareType.G,
    HardwareType.H,
)


@dataclass(frozen=True)
class CauseBreakdown:
    """Percentages per root cause for one group of systems.

    Attributes
    ----------
    label:
        Group label ("D" ... "H" or "All systems").
    total:
        Denominator: number of failures (Figure 1(a)) or total downtime
        in seconds (Figure 1(b)).
    percentages:
        Root cause -> percentage of the total (sums to 100).
    """

    label: str
    total: float
    percentages: Dict[RootCause, float]

    def percent(self, cause: RootCause) -> float:
        """The percentage for one cause (0 if absent)."""
        return self.percentages.get(cause, 0.0)


def _breakdown(label: str, weights: Dict[RootCause, float]) -> CauseBreakdown:
    total = sum(weights.values())
    if total <= 0:
        raise DegenerateSampleError(f"group {label!r} has no failures")
    percentages = {
        cause: 100.0 * weights.get(cause, 0.0) / total for cause in HIGH_LEVEL_CAUSES
    }
    return CauseBreakdown(label=label, total=total, percentages=percentages)


def breakdown_by_hardware_type(
    trace: FailureTrace,
    hardware_types: Sequence[HardwareType] = FIGURE1_TYPES,
) -> Dict[str, CauseBreakdown]:
    """Figure 1(a): failure-count breakdown per hardware type + overall.

    Returns a dict keyed by the type letter plus ``"All systems"``,
    each value holding percentages per root cause.
    """
    result: Dict[str, CauseBreakdown] = {}
    for hardware_type in hardware_types:
        sub = trace.filter_hardware(hardware_type)
        if len(sub) == 0:
            continue
        counts = {cause: float(n) for cause, n in sub.counts_by_cause().items()}
        result[hardware_type.value] = _breakdown(hardware_type.value, counts)
    overall = {cause: float(n) for cause, n in trace.counts_by_cause().items()}
    result["All systems"] = _breakdown("All systems", overall)
    return result


def downtime_breakdown_by_hardware_type(
    trace: FailureTrace,
    hardware_types: Sequence[HardwareType] = FIGURE1_TYPES,
) -> Dict[str, CauseBreakdown]:
    """Figure 1(b): downtime breakdown per hardware type + overall."""
    result: Dict[str, CauseBreakdown] = {}
    for hardware_type in hardware_types:
        sub = trace.filter_hardware(hardware_type)
        if len(sub) == 0:
            continue
        result[hardware_type.value] = _breakdown(
            hardware_type.value, sub.downtime_by_cause()
        )
    result["All systems"] = _breakdown("All systems", trace.downtime_by_cause())
    return result


def low_level_shares(
    trace: FailureTrace, hardware_type: Optional[HardwareType] = None
) -> Dict[LowLevelCause, float]:
    """Share of *all* failures per low-level cause (Section 4).

    Records without a low-level cause (all UNKNOWN records, plus any
    under-specified ones) are part of the denominator but appear under
    no key — matching the paper's "X% of all failures were due to
    memory" phrasing.
    """
    sub = trace if hardware_type is None else trace.filter_hardware(hardware_type)
    if len(sub) == 0:
        raise ValueError("no failures in the selected group")
    shares: Dict[LowLevelCause, float] = {}
    for record in sub:
        if record.low_level_cause is not None:
            shares[record.low_level_cause] = shares.get(record.low_level_cause, 0.0) + 1.0
    total = float(len(sub))
    return {cause: count / total for cause, count in shares.items()}


def memory_share(trace: FailureTrace, hardware_type: Optional[HardwareType] = None) -> float:
    """Fraction of all failures attributed to memory (Section 4)."""
    return low_level_shares(trace, hardware_type).get(LowLevelCause.MEMORY, 0.0)


def top_software_cause(
    trace: FailureTrace, hardware_type: HardwareType
) -> Tuple[LowLevelCause, float]:
    """The most common low-level *software* cause for a hardware type.

    Section 4: parallel filesystem for F, scheduler for H, OS for E,
    unspecified for D and G.

    Returns
    -------
    (cause, share):
        The winning software cause and its share of software failures.
    """
    sub = trace.filter_hardware(hardware_type).filter_cause(RootCause.SOFTWARE)
    if len(sub) == 0:
        raise ValueError(f"no software failures for type {hardware_type}")
    counts: Dict[LowLevelCause, int] = {}
    for record in sub:
        if record.low_level_cause is not None:
            counts[record.low_level_cause] = counts.get(record.low_level_cause, 0) + 1
    if not counts:
        raise ValueError(f"software failures for type {hardware_type} lack detail")
    winner = max(counts, key=lambda cause: counts[cause])
    return winner, counts[winner] / len(sub)
