"""Tests for the text-mode table and chart renderers."""

import numpy as np
import pytest

from repro.report.charts import bar_chart, cdf_plot, series_plot, stacked_bars
from repro.report.tables import format_table
from repro.stats.distributions import Exponential, LogNormal


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ("name", "value"),
            [("alpha", 1), ("beta", 22)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]
        # Right-aligned numbers: 1 and 22 end at the same column.
        assert lines[3].rstrip().endswith("1")
        assert lines[4].rstrip().endswith("22")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only one",)])

    def test_align_string_validation(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [], align="lx")
        with pytest.raises(ValueError):
            format_table(("a", "b"), [], align="l")

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table((), [])

    def test_left_alignment(self):
        text = format_table(("a", "b"), [("x", "y")], align="ll")
        row = text.splitlines()[-1]
        assert row.startswith("x")


class TestBarChart:
    def test_longest_bar_for_max(self):
        text = bar_chart(["a", "b"], [1.0, 10.0], width=20)
        lines = text.splitlines()
        assert lines[1].count("#") == 20
        assert lines[0].count("#") == 2

    def test_labels_and_values_present(self):
        text = bar_chart(["sys7"], [1159.0], value_format="{:.0f}")
        assert "sys7" in text and "1159" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [0.0])


class TestStackedBars:
    def test_legend_and_groups(self):
        text = stacked_bars(
            {"E": {"hardware": 60.0, "software": 40.0},
             "F": {"hardware": 50.0, "software": 50.0}},
        )
        assert "legend:" in text
        assert "H=hardware" in text
        assert text.splitlines()[0].strip().startswith("E")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stacked_bars({})


class TestCdfPlot:
    def test_contains_data_and_models(self):
        generator = np.random.Generator(np.random.PCG64(0))
        data = generator.lognormal(3.0, 1.0, 500)
        text = cdf_plot(
            data,
            {"lognormal": LogNormal(mu=3.0, sigma=1.0),
             "exponential": Exponential(scale=float(np.mean(data)))},
            title="demo",
        )
        assert "demo" in text
        assert "*" in text
        assert "1=lognormal" in text
        assert "2=exponential" in text
        assert "(log)" in text

    def test_linear_axis(self):
        data = np.linspace(1, 100, 200)
        text = cdf_plot(data, {}, log_x=False)
        assert "(log)" not in text

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            cdf_plot([1.0], {})


class TestSeriesPlot:
    def test_renders_peak(self):
        values = [1.0, 5.0, 25.0, 5.0, 1.0]
        text = series_plot(values, height=10, title="ramp")
        assert "ramp" in text
        assert "*" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            series_plot([1.0])
        with pytest.raises(ValueError):
            series_plot([0.0, 0.0])
