"""Timezone independence of the time helpers and periodicity studies.

The Figure 5 analyses bin by hour-of-day and day-of-week.  Those bins
must be pure functions of the toolkit timestamp: a study run on a host
in Auckland, with DST in effect, must be byte-identical to one run in
UTC.  The conversions are modular arithmetic against a fixed epoch, so
the host ``TZ`` never enters — these tests force non-UTC zones in a
subprocess (where libc actually honors ``TZ``) and assert identity.
"""

from __future__ import annotations

import datetime as dt
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.records import timeutils as tu

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

# A probe that exercises every timezone-sensitive surface and prints a
# deterministic digest of the results.
_PROBE = """
import json
import time

from repro.analysis.periodicity import failures_by_hour, failures_by_weekday
from repro.records import timeutils as tu
from repro.records.record import FailureRecord, RootCause
from repro.records.trace import FailureTrace

time.tzset()  # make libc honor the TZ this subprocess was given

stamps = [0.0, 3599.0, 3600.0, 86399.0, 86400.0, 1.5e8, 2.123456e8]
records = [
    FailureRecord(start_time=1.5e8 + 9931.0 * i, end_time=1.5e8 + 9931.0 * i + 60.0,
                  system_id=20, node_id=i % 4, root_cause=RootCause.HARDWARE)
    for i in range(500)
]
trace = FailureTrace(records)
print(json.dumps({
    "hours": [tu.hour_of_day(s) for s in stamps],
    "weekdays": [tu.day_of_week(s) for s in stamps],
    "formatted": [tu.format_timestamp(s) for s in stamps],
    "by_hour": failures_by_hour(trace).tolist(),
    "by_weekday": failures_by_weekday(trace).tolist(),
}, sort_keys=True))
"""


def _run_probe(tz):
    env = dict(os.environ, TZ=tz, PYTHONPATH=REPO_SRC)
    result = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True, env=env, check=True,
    )
    return result.stdout


class TestForcedTimezone:
    @pytest.mark.parametrize(
        "tz",
        [
            "Pacific/Auckland",       # UTC+12/+13 with DST
            "America/Los_Angeles",    # UTC-8/-7 with DST
            "Asia/Kathmandu",         # UTC+5:45, non-whole-hour offset
        ],
    )
    def test_periodicity_bytes_identical_to_utc(self, tz):
        assert _run_probe(tz) == _run_probe("UTC")


class TestExplicitUtcSemantics:
    def test_hour_of_day_is_modular_arithmetic(self):
        assert tu.hour_of_day(0.0) == 0
        assert tu.hour_of_day(3600.0) == 1
        assert tu.hour_of_day(86400.0 + 13 * 3600.0 + 59.0) == 13

    def test_day_of_week_anchored_at_epoch_monday(self):
        assert tu.day_of_week(0.0) == 0  # 1996-01-01 was a Monday
        assert tu.day_of_week(5 * 86400.0) == 5
        assert tu.day_of_week(7 * 86400.0) == 0

    def test_from_datetime_accepts_aware_input(self):
        naive_utc = dt.datetime(2004, 6, 1, 20, 0, 0)
        aware_utc = naive_utc.replace(tzinfo=dt.timezone.utc)
        aware_offset = dt.datetime(
            2004, 6, 1, 14, 0, 0,
            tzinfo=dt.timezone(dt.timedelta(hours=-6)),
        )
        expected = tu.from_datetime(naive_utc)
        assert tu.from_datetime(aware_utc) == expected
        assert tu.from_datetime(aware_offset) == expected

    def test_to_datetime_returns_naive(self):
        assert tu.to_datetime(1.5e8).tzinfo is None
