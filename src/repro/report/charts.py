"""Text-mode charts: bars, CDF comparisons, series plots.

Each function returns a string; benches print them so a reader can see
the reproduced figure's shape directly in the bench output.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.stats.errors import DegenerateSampleError

__all__ = [
    "bar_chart",
    "stacked_bars",
    "cdf_plot",
    "cdf_plot_weighted",
    "series_plot",
]

_FULL = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: Optional[str] = None,
    value_format: str = "{:.1f}",
) -> str:
    """Horizontal bar chart, one bar per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise DegenerateSampleError("need at least one bar")
    peak = max(values)
    if peak <= 0:
        raise DegenerateSampleError("all values are non-positive")
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = _FULL * max(0, round(width * value / peak))
        rendered = value_format.format(value)
        lines.append(f"{str(label):>{label_width}} |{bar} {rendered}")
    return "\n".join(lines)


def stacked_bars(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 60,
    title: Optional[str] = None,
) -> str:
    """Stacked percentage bars (Figure 1 style).

    Parameters
    ----------
    groups:
        Group label -> {segment label: percentage}.  Percentages should
        sum to ~100 per group.
    """
    if not groups:
        raise DegenerateSampleError("need at least one group")
    # One letter per segment, assigned in first-seen order.
    letters: Dict[str, str] = {}
    for segments in groups.values():
        for name in segments:
            if name not in letters:
                letters[name] = name[0].upper()
    lines = [title] if title else []
    label_width = max(len(g) for g in groups)
    for group, segments in groups.items():
        bar = ""
        for name, value in segments.items():
            bar += letters[name] * max(0, round(width * value / 100.0))
        lines.append(f"{group:>{label_width}} |{bar}")
    legend = "  ".join(f"{letter}={name}" for name, letter in letters.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def cdf_plot(
    data: Sequence[float],
    models: Mapping[str, object],
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    title: Optional[str] = None,
) -> str:
    """ASCII CDF plot of the data with model CDFs overlaid.

    Data points render as ``*``; each model gets a digit (1, 2, ...).
    With ``log_x`` the x-axis is logarithmic, matching the paper's
    interarrival and repair figures.
    """
    values = np.sort(np.asarray(data, dtype=float))
    if values.size < 2:
        raise DegenerateSampleError("need at least 2 observations")
    positive = values[values > 0]
    if log_x:
        if positive.size < 2:
            raise DegenerateSampleError("log_x requires at least 2 positive observations")
        x_low, x_high = positive[0], positive[-1]
        xs = np.geomspace(x_low, x_high, width)
    else:
        x_low, x_high = values[0], values[-1]
        if x_high <= x_low:
            raise DegenerateSampleError("degenerate data range")
        xs = np.linspace(x_low, x_high, width)
    ecdf = np.searchsorted(values, xs, side="right") / values.size
    return _render_cdf(xs, ecdf, models, width, height, x_low, x_high, log_x, title)


def cdf_plot_weighted(
    values: Sequence[float],
    counts: Sequence[float],
    models: Mapping[str, object],
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    title: Optional[str] = None,
) -> str:
    """:func:`cdf_plot` over a weighted (histogram) sample.

    ``values`` are ascending distinct sample points (e.g. log-bucket
    representatives) and ``counts`` their multiplicities; the empirical
    step function weights each point accordingly.  This is the
    out-of-core report's plotting path — the ECDF is exact at the
    bucket boundaries, so the rendered curve matches the materialized
    one to the sketch's relative-error bound.
    """
    points = np.asarray(values, dtype=float)
    weights = np.asarray(counts, dtype=float)
    if points.shape != weights.shape:
        raise ValueError("values and counts must have equal length")
    n = float(weights.sum())
    if n < 2:
        raise DegenerateSampleError("need at least 2 observations")
    positive = points > 0
    if log_x:
        if float(weights[positive].sum()) < 2:
            raise DegenerateSampleError("log_x requires at least 2 positive observations")
        kept = points[positive]
        x_low, x_high = kept[0], kept[-1]
        xs = np.geomspace(x_low, x_high, width)
    else:
        x_low, x_high = points[0], points[-1]
        if x_high <= x_low:
            raise DegenerateSampleError("degenerate data range")
        xs = np.linspace(x_low, x_high, width)
    cumulative = np.cumsum(weights)
    index = np.searchsorted(points, xs, side="right")
    ecdf = np.where(index > 0, cumulative[np.maximum(index - 1, 0)], 0.0) / n
    return _render_cdf(xs, ecdf, models, width, height, x_low, x_high, log_x, title)


def _render_cdf(
    xs: np.ndarray,
    ecdf: np.ndarray,
    models: Mapping[str, object],
    width: int,
    height: int,
    x_low: float,
    x_high: float,
    log_x: bool,
    title: Optional[str],
) -> str:
    """Shared grid painter behind both CDF plot variants."""
    grid = [[" "] * width for _ in range(height)]

    def paint(curve: np.ndarray, symbol: str) -> None:
        for column, p in enumerate(curve):
            row = height - 1 - int(min(max(p, 0.0), 0.999) * height)
            if grid[row][column] == " ":
                grid[row][column] = symbol

    for index, (name, model) in enumerate(models.items(), start=1):
        paint(np.asarray(model.cdf(xs), dtype=float), str(index % 10))
    paint(ecdf, "*")
    lines = [title] if title else []
    for row_index, row in enumerate(grid):
        p = 1.0 - row_index / height
        prefix = f"{p:4.2f} |" if row_index % 4 == 0 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      x: {x_low:.3g} .. {x_high:.3g}" + (" (log)" if log_x else ""))
    legend = "  ".join(
        f"{index % 10}={name}" for index, name in enumerate(models.keys(), start=1)
    )
    lines.append(f"      *=data  {legend}")
    return "\n".join(lines)


def series_plot(
    values: Sequence[float],
    width: int = 72,
    height: int = 14,
    title: Optional[str] = None,
    x_label: str = "",
) -> str:
    """ASCII line plot of a series (Figure 4 style: failures/month)."""
    series = np.asarray(values, dtype=float)
    if series.size < 2:
        raise DegenerateSampleError("need at least 2 points")
    peak = series.max()
    if peak <= 0:
        raise DegenerateSampleError("all values are non-positive")
    columns = np.linspace(0, series.size - 1, min(width, series.size)).astype(int)
    sampled = series[columns]
    grid = [[" "] * len(columns) for _ in range(height)]
    for column, value in enumerate(sampled):
        row = height - 1 - int(min(value / peak, 0.999) * height)
        grid[row][column] = "*"
    lines = [title] if title else []
    for row_index, row in enumerate(grid):
        level = peak * (1.0 - row_index / height)
        prefix = f"{level:7.1f} |" if row_index % 4 == 0 else "        |"
        lines.append(prefix + "".join(row))
    lines.append("        +" + "-" * len(columns))
    if x_label:
        lines.append(f"         {x_label}")
    return "\n".join(lines)
