"""Maximum-likelihood fitting with right-censored observations.

Interarrival samples extracted from a finite observation window are
right-censored: the gap between the last failure and the window end is
known only to *exceed* its observed length, and nodes with a single
failure contribute only censored information.  Ignoring censoring
biases scale parameters down, especially for sparse nodes.

The censored log-likelihood is::

    L = sum_{uncensored} log f(x_i) + sum_{censored} log S(c_j)

Closed form for the exponential; profile-likelihood Newton for the
Weibull; direct numerical optimization (Nelder-Mead on transformed
parameters) for the gamma and lognormal.

These fitters mirror :mod:`repro.stats.fitting` and return the same
:class:`~repro.stats.fitting.FitResult` (goodness-of-fit measures are
computed on the uncensored observations only).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple, Union

import numpy as np
from scipy import optimize, special

from repro.stats.distributions import Distribution, Exponential, Gamma, LogNormal, Weibull
from repro.stats.fitting import FitError, FitResult
from repro.stats.gof import aic, bic, ks_statistic

__all__ = [
    "censored_nll",
    "fit_exponential_censored",
    "fit_weibull_censored",
    "fit_gamma_censored",
    "fit_lognormal_censored",
    "fit_all_censored",
]

ArrayLike = Union[Sequence[float], np.ndarray]


def _clean(observed: ArrayLike, censored: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(observed, dtype=float)
    c = np.asarray(censored, dtype=float)
    if x.size < 2:
        raise FitError(f"need at least 2 uncensored observations, got {x.size}")
    if np.any(x <= 0) or np.any(c <= 0):
        raise FitError("censored fitting requires strictly positive durations")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(c))):
        raise FitError("sample contains non-finite values")
    return x, c


def censored_nll(
    distribution: Distribution, observed: ArrayLike, censored: ArrayLike
) -> float:
    """Negative log-likelihood with right-censored observations."""
    x = np.asarray(observed, dtype=float)
    c = np.asarray(censored, dtype=float)
    nll = -float(np.sum(distribution.logpdf(x)))
    if c.size:
        survival = np.asarray(distribution.survival(c), dtype=float)
        survival = np.maximum(survival, np.finfo(float).tiny)
        nll -= float(np.sum(np.log(survival)))
    return nll


def _result(
    distribution: Distribution, observed: np.ndarray, censored: np.ndarray
) -> FitResult:
    nll = censored_nll(distribution, observed, censored)
    n = int(observed.size + censored.size)
    return FitResult(
        distribution=distribution,
        nll=nll,
        aic=aic(nll, distribution.n_params),
        bic=bic(nll, distribution.n_params, n),
        ks=ks_statistic(observed, distribution),
        n=n,
    )


def fit_exponential_censored(observed: ArrayLike, censored: ArrayLike = ()) -> FitResult:
    """Censored exponential MLE (closed form).

    ``scale = (sum of all exposure, censored included) / (number of
    observed events)`` — the classic total-time-on-test estimator.
    """
    x, c = _clean(observed, censored)
    scale = (float(np.sum(x)) + float(np.sum(c))) / x.size
    return _result(Exponential(scale=scale), x, c)


def fit_weibull_censored(
    observed: ArrayLike,
    censored: ArrayLike = (),
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> FitResult:
    """Censored Weibull MLE via Newton on the profile likelihood.

    With events x_i and censoring times c_j pooled as exposures t_k
    (indicator d_k = 1 for events), the shape k solves::

        sum_k t_k^k ln t_k / sum_k t_k^k - 1/k - mean_{events} ln x = 0

    and the scale is ``(sum_k t_k^k / n_events)^(1/k)``.
    """
    x, c = _clean(observed, censored)
    exposures = np.concatenate([x, c])
    logs_all = np.log(exposures)
    mean_log_events = float(np.mean(np.log(x)))
    max_log = float(np.max(logs_all))
    std_log = float(np.std(np.log(x)))  # ddof=0: MLE convention
    if std_log <= 0:
        raise FitError("degenerate sample (all observed values equal)")
    k = 1.2 / std_log
    low, high = 1e-3, 1e3
    for _ in range(max_iterations):
        shifted = np.exp(k * (logs_all - max_log))
        s0 = float(np.sum(shifted))
        s1 = float(np.sum(shifted * logs_all))
        s2 = float(np.sum(shifted * logs_all**2))
        g = s1 / s0 - 1.0 / k - mean_log_events
        g_prime = (s2 * s0 - s1**2) / s0**2 + 1.0 / k**2
        if g > 0:
            high = min(high, k)
        else:
            low = max(low, k)
        k_next = k - g / g_prime
        if not (low < k_next < high):
            k_next = 0.5 * (low + high)
        if abs(k_next - k) < tolerance * max(1.0, k):
            k = k_next
            break
        k = k_next
    shape = float(k)
    mean_pow = float(np.mean(np.exp(shape * (logs_all - max_log)))) * exposures.size
    scale = math.exp(max_log + math.log(mean_pow / x.size) / shape)
    return _result(Weibull(shape=shape, scale=scale), x, c)


def _fit_numeric(
    make_distribution, initial: Tuple[float, float], x: np.ndarray, c: np.ndarray
) -> Distribution:
    """Nelder-Mead on log-transformed parameters (both positive)."""

    def objective(params: np.ndarray) -> float:
        try:
            distribution = make_distribution(math.exp(params[0]), math.exp(params[1]))
        except (ValueError, OverflowError):
            return 1e300
        value = censored_nll(distribution, x, c)
        return value if np.isfinite(value) else 1e300

    start = np.array([math.log(initial[0]), math.log(initial[1])])
    result = optimize.minimize(objective, start, method="Nelder-Mead",
                               options={"xatol": 1e-10, "fatol": 1e-10, "maxiter": 2000})
    return make_distribution(math.exp(result.x[0]), math.exp(result.x[1]))


def fit_gamma_censored(observed: ArrayLike, censored: ArrayLike = ()) -> FitResult:
    """Censored gamma MLE (numeric)."""
    x, c = _clean(observed, censored)
    mean = float(np.mean(x))
    mean_log = float(np.mean(np.log(x)))
    s = math.log(mean) - mean_log
    if s <= 0:
        raise FitError("degenerate sample (zero log-spread)")
    shape0 = (3.0 - s + math.sqrt((s - 3.0) ** 2 + 24.0 * s)) / (12.0 * s)
    distribution = _fit_numeric(
        lambda shape, scale: Gamma(shape=shape, scale=scale),
        (shape0, mean / shape0), x, c,
    )
    return _result(distribution, x, c)


def fit_lognormal_censored(observed: ArrayLike, censored: ArrayLike = ()) -> FitResult:
    """Censored lognormal MLE (numeric).

    Parameterized as (median, sigma) so both optimizer variables are
    positive; converted back to (mu, sigma).
    """
    x, c = _clean(observed, censored)
    logs = np.log(x)
    mu0 = float(np.mean(logs))
    sigma0 = float(np.std(logs))  # ddof=0: MLE convention
    if sigma0 <= 0:
        raise FitError("degenerate sample (all observed values equal)")
    distribution = _fit_numeric(
        lambda median, sigma: LogNormal(mu=math.log(median), sigma=sigma),
        (math.exp(mu0), sigma0), x, c,
    )
    return _result(distribution, x, c)


def fit_all_censored(
    observed: ArrayLike, censored: ArrayLike = ()
) -> List[FitResult]:
    """Censored fits of all four candidates, ranked by censored NLL."""
    results = []
    for fitter in (
        fit_exponential_censored,
        fit_weibull_censored,
        fit_gamma_censored,
        fit_lognormal_censored,
    ):
        try:
            results.append(fitter(observed, censored))
        except FitError:
            continue
    if not results:
        raise FitError("no candidate distribution could be fitted")
    results.sort(key=lambda result: result.nll)
    return results
