"""Tests for the column-mapping importer."""

import pytest

from repro.io.mapped import ColumnMapping, read_mapped_csv
from repro.io.schema import SchemaError
from repro.records.record import RootCause, Workload
from repro.records.timeutils import from_datetime
import datetime as dt


CFDR_STYLE = """System,nodenum,Prob Started,Prob Fixed,Facilities,node usage
2,0,06/15/1999 10:30,06/15/1999 14:30,Hardware,compute
2,0,07/01/1999 08:00,07/01/1999 08:45,DST Error,graphics
20,22,01/02/2000 23:15,01/03/2000 03:00,,fe
"""


@pytest.fixture
def cfdr_csv(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text(CFDR_STYLE)
    return path


def cfdr_mapping(**overrides):
    defaults = dict(
        system_id="System",
        node_id="nodenum",
        start_time="Prob Started",
        end_time="Prob Fixed",
        time_format="%m/%d/%Y %H:%M",
        cause_column="Facilities",
        cause_map={"Hardware": RootCause.HARDWARE, "DST Error": RootCause.SOFTWARE},
        workload_column="node usage",
        workload_map={"compute": Workload.COMPUTE, "graphics": Workload.GRAPHICS,
                      "fe": Workload.FRONTEND},
    )
    defaults.update(overrides)
    return ColumnMapping(**defaults)


class TestReadMappedCsv:
    def test_basic_import(self, cfdr_csv):
        trace = read_mapped_csv(cfdr_csv, cfdr_mapping())
        assert len(trace) == 3
        first = trace[0]
        assert first.system_id == 2
        assert first.start_time == from_datetime(dt.datetime(1999, 6, 15, 10, 30))
        assert first.repair_minutes == pytest.approx(240.0)
        assert first.root_cause is RootCause.HARDWARE

    def test_cause_and_workload_mapping(self, cfdr_csv):
        trace = read_mapped_csv(cfdr_csv, cfdr_mapping())
        assert trace[1].root_cause is RootCause.SOFTWARE
        assert trace[1].workload is Workload.GRAPHICS
        # Empty cause value maps to UNKNOWN.
        assert trace[2].root_cause is RootCause.UNKNOWN
        assert trace[2].workload is Workload.FRONTEND

    def test_duration_column_instead_of_end(self, tmp_path):
        path = tmp_path / "dur.csv"
        path.write_text("sys,node,start,down\n1,0,1000.5,30\n")
        mapping = ColumnMapping(
            system_id="sys", node_id="node", start_time="start",
            duration_column="down", duration_unit="minutes",
        )
        trace = read_mapped_csv(path, mapping)
        assert trace[0].end_time == pytest.approx(1000.5 + 1800.0)

    def test_system_id_map_for_hostnames(self, tmp_path):
        path = tmp_path / "hosts.csv"
        path.write_text("host,node,start,end\nbluemountain,3,100.0,200.0\n")
        mapping = ColumnMapping(
            system_id="host", node_id="node", start_time="start", end_time="end",
            system_id_map={"bluemountain": 20},
        )
        trace = read_mapped_csv(path, mapping)
        assert trace[0].system_id == 20

    def test_unmappable_system_rejected(self, tmp_path):
        path = tmp_path / "hosts.csv"
        path.write_text("host,node,start,end\nmystery,3,100.0,200.0\n")
        mapping = ColumnMapping(
            system_id="host", node_id="node", start_time="start", end_time="end",
        )
        with pytest.raises(SchemaError, match="mystery"):
            read_mapped_csv(path, mapping)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("sys,node\n1,0\n")
        mapping = ColumnMapping(
            system_id="sys", node_id="node", start_time="start", end_time="end",
        )
        with pytest.raises(SchemaError, match="missing columns"):
            read_mapped_csv(path, mapping)

    def test_bad_timestamp_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("sys,node,start,end\n1,0,yesterday,2000.0\n")
        mapping = ColumnMapping(
            system_id="sys", node_id="node", start_time="start", end_time="end",
        )
        with pytest.raises(SchemaError, match="line 2"):
            read_mapped_csv(path, mapping)

    def test_end_before_start_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("sys,node,start,end\n1,0,2000.0,1000.0\n")
        mapping = ColumnMapping(
            system_id="sys", node_id="node", start_time="start", end_time="end",
        )
        with pytest.raises(SchemaError, match="line 2"):
            read_mapped_csv(path, mapping)


class TestColumnMappingValidation:
    def test_needs_end_or_duration(self):
        with pytest.raises(ValueError):
            ColumnMapping(system_id="a", node_id="b", start_time="c")

    def test_duration_unit_validated(self):
        with pytest.raises(ValueError):
            ColumnMapping(
                system_id="a", node_id="b", start_time="c",
                duration_column="d", duration_unit="fortnights",
            )


class TestRoundtripThroughAnalysis:
    def test_mapped_trace_feeds_analyses(self, cfdr_csv):
        from repro.analysis import repair_statistics_by_cause

        trace = read_mapped_csv(cfdr_csv, cfdr_mapping())
        rows = repair_statistics_by_cause(trace)
        assert rows[-1].label == "All"
        assert rows[-1].n == 3
