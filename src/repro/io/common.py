"""Shared I/O helpers for the trace formats.

Both the CSV and JSONL formats support transparent gzip compression
(``trace.csv.gz``, ``trace.jsonl.gz``) through :func:`open_text`, and
both route their rows through the same ingest pipeline (see
:mod:`repro.io.policy`).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

__all__ = ["PathLike", "open_text"]

PathLike = Union[str, Path]


def open_text(path: PathLike, mode: str):
    """Open a text file, transparently gzipped when the name ends .gz."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", newline="")
    return path.open(mode, newline="")
