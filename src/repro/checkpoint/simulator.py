"""Trace-driven checkpoint/restart simulation.

Runs a long job against the failure times of a real (or synthetic)
trace, on top of the DES kernel: the job is a
:class:`~repro.simulate.process.Process` alternating compute segments
and checkpoint writes; every failure in the trace interrupts it, rolls
work back to the last completed checkpoint and pays a restart cost.

This is the simulation LANL's own fault-tolerance scheme implies
(Section 2.2: jobs restart from the most recent checkpoint), and the
harness behind the checkpoint ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.simulate.engine import Simulator
from repro.simulate.process import Interrupt, Process

__all__ = ["SimulationResult", "CheckpointSimulation"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one checkpointed-job simulation.

    Attributes
    ----------
    completed:
        Whether the job finished before the trace ran out.
    makespan:
        Wall-clock time from start to completion (or to the end of the
        failure sequence if the job did not finish).
    useful_work:
        Total work the job needed (= work completed when ``completed``).
    checkpoints_written / failures_hit:
        Event counts.
    lost_work:
        Work computed but rolled back by failures.
    """

    completed: bool
    makespan: float
    useful_work: float
    checkpoints_written: int
    failures_hit: int
    lost_work: float

    @property
    def efficiency(self) -> float:
        """Useful work / wall-clock time (0 if nothing ran)."""
        if self.makespan <= 0:
            return 0.0
        return self.useful_work / self.makespan


class CheckpointSimulation:
    """Simulate one job with periodic checkpointing under failures.

    Parameters
    ----------
    work:
        Total compute time the job needs (seconds of useful work).
    interval:
        Checkpoint interval (useful-work seconds between checkpoints).
    checkpoint_cost:
        Wall-clock cost of writing one checkpoint.
    restart_cost:
        Wall-clock cost paid after each failure before work resumes.
    """

    def __init__(
        self,
        work: float,
        interval: float,
        checkpoint_cost: float,
        restart_cost: float = 0.0,
    ) -> None:
        if work <= 0:
            raise ValueError(f"work must be positive, got {work}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if checkpoint_cost < 0 or restart_cost < 0:
            raise ValueError("costs must be non-negative")
        self.work = work
        self.interval = interval
        self.checkpoint_cost = checkpoint_cost
        self.restart_cost = restart_cost

    def run(
        self, failure_times: Sequence[float], horizon: float = None
    ) -> SimulationResult:
        """Run against failures at the given (relative) times.

        Parameters
        ----------
        failure_times:
            Offsets from the job's start; failures after the job
            completes are ignored.
        horizon:
            Optional wall-clock cutoff.  A trace only describes
            failures up to its end, so a job still running at the
            horizon is reported incomplete rather than optimistically
            run through failure-free time the trace says nothing about.
        """
        times = sorted(float(t) for t in failure_times)
        if horizon is not None and horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        sim = Simulator()
        state = {
            "banked": 0.0,      # work safely checkpointed
            "in_flight": 0.0,   # work since the last checkpoint
            "checkpoints": 0,
            "failures": 0,
            "lost": 0.0,
            "done_at": None,
            "segment_started": 0.0,  # sim time the current segment began
            "computing": False,
        }

        def job():
            while state["banked"] < self.work:
                try:
                    segment = min(self.interval, self.work - state["banked"])
                    state["segment_started"] = sim.now
                    state["computing"] = True
                    yield segment
                    state["computing"] = False
                    state["in_flight"] = segment
                    if state["banked"] + segment < self.work:
                        yield self.checkpoint_cost
                        state["checkpoints"] += 1
                    state["banked"] += segment
                    state["in_flight"] = 0.0
                except Interrupt:
                    state["failures"] += 1
                    if state["computing"]:
                        state["lost"] += sim.now - state["segment_started"]
                        state["computing"] = False
                    state["lost"] += state["in_flight"]
                    state["in_flight"] = 0.0
                    # Restart; a failure during restart restarts again.
                    while True:
                        try:
                            yield self.restart_cost
                            break
                        except Interrupt:
                            state["failures"] += 1
            state["done_at"] = sim.now

        process = Process(sim, job())
        for offset in times:
            if offset < 0:
                raise ValueError(f"failure time must be >= 0, got {offset}")

            def strike(simulator, process=process):
                if process.alive and state["done_at"] is None:
                    process.interrupt("node failure")

            sim.schedule(offset, strike)
        sim.run(until=horizon)
        completed = state["done_at"] is not None
        if completed:
            end = state["done_at"]
        elif horizon is not None:
            end = horizon
        else:
            end = times[-1] if times else 0.0
        return SimulationResult(
            completed=completed,
            makespan=float(end),
            useful_work=self.work if completed else state["banked"],
            checkpoints_written=state["checkpoints"],
            failures_hit=state["failures"],
            lost_work=state["lost"],
        )
