"""Trace JSONL schema validation."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.schema import (
    read_trace_file,
    validate_events,
    validate_trace_file,
)


def _valid_events():
    tracer = obs.Tracer(run_id="t")
    registry = obs.MetricsRegistry()
    registry.counter("rows").add(1)
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    return tracer.to_events(registry)


class TestValidateEvents:
    def test_real_trace_is_clean(self):
        assert validate_events(_valid_events()) == []

    def test_empty_trace(self):
        assert validate_events([]) == ["trace is empty (no header line)"]

    def test_missing_header(self):
        events = _valid_events()[1:]
        problems = validate_events(events)
        assert any("not a header" in problem for problem in problems)

    def test_wrong_kind_and_schema(self):
        events = _valid_events()
        events[0] = dict(events[0], kind="other", schema=99)
        problems = validate_events(events)
        assert any("kind" in problem for problem in problems)
        assert any("schema" in problem for problem in problems)

    def test_duplicate_span_id(self):
        events = _valid_events()
        events.insert(2, dict(events[1]))
        assert any(
            "duplicate span id" in problem
            for problem in validate_events(events)
        )

    def test_unresolved_parent(self):
        events = _valid_events()
        span = next(e for e in events if e.get("parent") is not None)
        span["parent"] = "main:999"
        assert any(
            "not found" in problem for problem in validate_events(events)
        )

    def test_depth_mismatch(self):
        events = _valid_events()
        child = next(e for e in events if e.get("parent") is not None)
        child["depth"] = 7
        assert any(
            "depth" in problem for problem in validate_events(events)
        )

    def test_root_with_nonzero_depth(self):
        events = _valid_events()
        root = next(
            e for e in events
            if e.get("type") == "span" and e.get("parent") is None
        )
        root["depth"] = 3
        assert any(
            "expected 0" in problem for problem in validate_events(events)
        )

    def test_span_after_metric_rejected(self):
        events = _valid_events()
        metric = events.pop()
        span = events.pop()
        events.extend([metric, span])
        assert any(
            "after metric" in problem for problem in validate_events(events)
        )

    def test_error_span_needs_message(self):
        events = _valid_events()
        span = next(e for e in events if e.get("type") == "span")
        span["status"] = "error"
        assert any(
            "missing 'error'" in problem
            for problem in validate_events(events)
        )

    def test_negative_wall_rejected(self):
        events = _valid_events()
        span = next(e for e in events if e.get("type") == "span")
        span["wall_s"] = -0.5
        assert any(
            "negative" in problem for problem in validate_events(events)
        )

    def test_bool_depth_rejected(self):
        events = _valid_events()
        root = next(
            e for e in events
            if e.get("type") == "span" and e.get("parent") is None
        )
        root["depth"] = False
        assert any(
            "field 'depth'" in problem for problem in validate_events(events)
        )

    def test_unknown_event_type(self):
        events = _valid_events() + [{"type": "mystery"}]
        assert any(
            "unknown event type" in problem
            for problem in validate_events(events)
        )

    def test_bad_metric_kind(self):
        events = _valid_events()
        events[-1] = dict(events[-1], kind="timer")
        assert any(
            "metric kind" in problem for problem in validate_events(events)
        )


class TestTraceFiles:
    def test_roundtrip(self, tmp_path):
        tracer = obs.Tracer()
        with tracer.span("root"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write(path)
        assert validate_trace_file(path) == []
        assert len(read_trace_file(path)) == 2

    def test_corrupt_line_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "header"}\nnot-json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_trace_file(path)
        problems = validate_trace_file(path)
        assert problems and "line 2" in problems[0]

    def test_missing_file_is_a_problem_not_a_crash(self, tmp_path):
        problems = validate_trace_file(tmp_path / "absent.jsonl")
        assert len(problems) == 1
