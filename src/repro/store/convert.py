"""Converters between columnar stores, traces, and CSV/JSONL files.

Imports (:func:`store_from_trace`, :func:`store_from_file`) write an
``explicit``-id store — the source's record IDs are data and must
survive the round trip.  Exports stream
:meth:`~repro.store.reader.ColumnarStore.iter_records` straight into
the atomic CSV/JSONL writers, so a million-record store exports in
bounded memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.io.csv_format import read_lanl_csv, write_lanl_csv
from repro.io.ingest import detect_format
from repro.io.jsonl_format import read_jsonl, write_jsonl
from repro.records.trace import FailureTrace
from repro.store.manifest import Manifest, Predicate, StoreError
from repro.store.reader import ColumnarStore
from repro.store.schema import ColumnBatch, batch_from_records
from repro.store.writer import DEFAULT_SHARD_ROWS, StoreWriter

__all__ = ["store_from_trace", "store_from_file", "export_store"]


def store_from_trace(
    trace: FailureTrace,
    root,
    *,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    meta: Optional[Dict[str, object]] = None,
) -> Manifest:
    """Write a trace into a columnar store directory.

    Record IDs are stored explicitly (``None`` becomes the sentinel and
    reads back as ``None``), so an imported trace round-trips
    ``repr``-identically — including IDs that are sparse, duplicated,
    or absent.
    """
    batch = batch_from_records(trace.records)
    writer = StoreWriter(
        root,
        systems=trace.systems,
        data_start=trace.data_start,
        data_end=trace.data_end,
        record_ids="explicit",
        shard_rows=shard_rows,
        meta=meta,
    )
    system_ids = batch["system_id"]
    with obs.span("store.import", rows=len(batch)):
        for system_id in np.unique(system_ids).tolist():
            mask = system_ids == system_id
            group = batch.take(mask)
            order = np.lexsort((group["node_id"], group["start_time"]))
            writer.append_group(
                ColumnBatch(
                    {name: group[name][order] for name in group.names}
                )
            )
        manifest = writer.finalize()
    registry = obs.metrics()
    registry.counter("store.records_written").add(manifest.row_count)
    registry.counter("store.shards_written").add(len(manifest.shards))
    return manifest


def store_from_file(
    path,
    root,
    *,
    shard_rows: int = DEFAULT_SHARD_ROWS,
) -> Manifest:
    """Import a CSV/JSONL trace file into a store directory."""
    path = Path(path)
    reader = read_jsonl if detect_format(path) == "jsonl" else read_lanl_csv
    trace = reader(path)
    return store_from_trace(
        trace,
        root,
        shard_rows=shard_rows,
        meta={"source": path.name},
    )


def export_store(
    store: ColumnarStore,
    path,
    *,
    fmt: Optional[str] = None,
    predicate: Optional[Predicate] = None,
) -> int:
    """Stream a store to a CSV or JSONL file; returns rows written.

    ``fmt`` is ``"csv"`` or ``"jsonl"``; by default it is inferred from
    the file suffix (``.gz``-compressed variants included).
    """
    path = Path(path)
    if fmt is None:
        suffixes = [s.lower() for s in path.suffixes if s.lower() != ".gz"]
        if suffixes and suffixes[-1] == ".csv":
            fmt = "csv"
        elif suffixes and suffixes[-1] == ".jsonl":
            fmt = "jsonl"
        else:
            raise StoreError(
                f"cannot infer export format from {path.name!r}; "
                "pass fmt='csv' or fmt='jsonl'"
            )
    if fmt not in ("csv", "jsonl"):
        raise ValueError(f"fmt must be 'csv' or 'jsonl', got {fmt!r}")
    records = store.iter_records(predicate)
    with obs.span("store.export", format=fmt):
        if fmt == "csv":
            return write_lanl_csv(records, path)
        return write_jsonl(records, path)
