"""Tests for workload assignment and node heterogeneity."""

import numpy as np
import pytest

from repro.records.inventory import DATA_END, DATA_START, lanl_system
from repro.records.record import Workload
from repro.simulate.rng import RngStream
from repro.synth.nodes import assign_workload, node_rate_multiplier, workload_multiplier


class TestAssignWorkload:
    def test_system20_graphics_nodes(self):
        system = lanl_system(20)
        for node_id in (21, 22, 23):
            assert assign_workload(system, node_id) is Workload.GRAPHICS
        assert assign_workload(system, 20) is Workload.COMPUTE
        assert assign_workload(system, 24) is Workload.COMPUTE

    def test_cluster_frontend_node0(self):
        # Types E/F clusters get a front-end at node 0.
        assert assign_workload(lanl_system(5), 0) is Workload.FRONTEND
        assert assign_workload(lanl_system(13), 0) is Workload.FRONTEND
        assert assign_workload(lanl_system(5), 1) is Workload.COMPUTE

    def test_small_systems_have_no_frontend(self):
        # Single-node systems are all compute.
        assert assign_workload(lanl_system(1), 0) is Workload.COMPUTE
        assert assign_workload(lanl_system(22), 0) is Workload.COMPUTE

    def test_numa_systems_have_no_frontend(self):
        assert assign_workload(lanl_system(19), 0) is Workload.COMPUTE


class TestWorkloadMultiplier:
    def test_graphics_boost_matches_papers_20_percent(self):
        # 3 graphics nodes of 49 at 3.8x carry ~20% of failures:
        # 3*3.8 / (46 + 3*3.8) = 0.199.
        m = workload_multiplier(Workload.GRAPHICS)
        share = 3 * m / (46 + 3 * m)
        assert share == pytest.approx(0.20, abs=0.01)

    def test_compute_is_unit(self):
        assert workload_multiplier(Workload.COMPUTE) == 1.0

    def test_frontend_boost(self):
        assert workload_multiplier(Workload.FRONTEND) == 2.5


class TestNodeRateMultiplier:
    def make_node(self, system_id=20, node_id=5):
        system = lanl_system(system_id)
        return system.expand_nodes(DATA_START, DATA_END)[node_id]

    def test_deterministic(self):
        node = self.make_node()
        a = node_rate_multiplier(node, RngStream(1), 0.35)
        b = node_rate_multiplier(node, RngStream(1), 0.35)
        assert a == b

    def test_varies_by_node(self):
        root = RngStream(1)
        values = {
            node_rate_multiplier(self.make_node(node_id=i), root, 0.35)
            for i in range(20)
        }
        assert len(values) == 20

    def test_sigma_zero_is_unit(self):
        assert node_rate_multiplier(self.make_node(), RngStream(1), 0.0) == 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            node_rate_multiplier(self.make_node(), RngStream(1), -0.1)

    def test_unit_mean_in_aggregate(self):
        root = RngStream(3)
        nodes = lanl_system(7).expand_nodes(DATA_START, DATA_END)
        values = [node_rate_multiplier(node, root, 0.35) for node in nodes]
        assert np.mean(values) == pytest.approx(1.0, abs=0.05)
        assert all(v > 0 for v in values)
