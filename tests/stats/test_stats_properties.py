"""Property-based tests for the fitting / empirical / survival layer.

Complements ``test_distribution_properties.py`` (laws of the parametric
families) with properties of the *estimators*: MLE round-trips recover
known parameters, the empirical CDF is a monotone map into [0, 1],
Kaplan-Meier survival stays within bounds under arbitrary censoring,
and the ``*_safe`` fitting entry points never raise — whatever
adversarial sample they are handed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.stats import (
    EmpiricalDistribution,
    empirical_cdf,
    fit_all_safe,
    fit_lognormal,
    fit_weibull,
    kaplan_meier,
)

# Estimator round-trips need real samples; 400 observations keeps each
# example fast while bounding MLE noise to a few percent.
ROUND_TRIP_N = 400


def _rng(seed: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


# ----------------------------------------------------------------------
# Fit round-trips: sample from a known distribution, refit, recover.
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    shape=st.floats(min_value=0.5, max_value=2.5),
    scale=st.floats(min_value=0.5, max_value=1e4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_weibull_fit_round_trip(shape, scale, seed):
    sample = scale * _rng(seed).weibull(shape, ROUND_TRIP_N)
    fitted = fit_weibull(sample).distribution
    # At shape ~0.5 the scale MLE's relative sd is ~11% for n=400, so
    # the bound must sit several sigma out to hold over every seed.
    assert abs(fitted.shape - shape) / shape < 0.3
    assert abs(fitted.scale - scale) / scale < 0.45


@settings(max_examples=25, deadline=None)
@given(
    mu=st.floats(min_value=-2.0, max_value=8.0),
    sigma=st.floats(min_value=0.2, max_value=2.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_lognormal_fit_round_trip(mu, sigma, seed):
    generator = _rng(seed)
    sample = np.exp(mu + sigma * generator.standard_normal(ROUND_TRIP_N))
    fitted = fit_lognormal(sample).distribution
    assert abs(fitted.mu - mu) < 0.3
    assert abs(fitted.sigma - sigma) / sigma < 0.25


# ----------------------------------------------------------------------
# Empirical CDF: monotone, in [0, 1], ends at 1, tracks the sample.
# ----------------------------------------------------------------------

finite_samples = st.lists(
    st.floats(
        min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=50, deadline=None)
@given(finite_samples)
def test_empirical_cdf_is_monotone_unit_range(sample):
    x, p = empirical_cdf(sample)
    assert len(x) == len(p) == len(sample)
    assert np.all(np.diff(x) >= 0)
    assert np.all(np.diff(p) > 0)
    assert np.all((p > 0.0) & (p <= 1.0))
    assert p[-1] == 1.0


@settings(max_examples=50, deadline=None)
@given(finite_samples)
def test_empirical_summary_brackets_the_sample(sample):
    summary = EmpiricalDistribution.from_data(sample)
    assert summary.count == len(sample)
    # np.mean/np.median accumulate in floats: summing n identical huge
    # values and dividing can land 1 ULP outside [min, max].
    slack = 4 * np.spacing(max(abs(summary.minimum), abs(summary.maximum), 1.0))
    assert summary.minimum - slack <= summary.median <= summary.maximum + slack
    assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
    assert summary.std >= 0.0


# ----------------------------------------------------------------------
# Kaplan-Meier under censoring.
# ----------------------------------------------------------------------

durations = st.floats(min_value=1e-3, max_value=1e6)


@settings(max_examples=50, deadline=None)
@given(
    observed=st.lists(durations, min_size=1, max_size=80),
    censored=st.lists(durations, min_size=0, max_size=80),
)
def test_kaplan_meier_bounded_and_decreasing(observed, censored):
    curve = kaplan_meier(observed, censored)
    survival = np.asarray(curve.survival)
    assert np.all((survival >= 0.0) & (survival <= 1.0))
    assert np.all(np.diff(survival) <= 0)
    assert curve.survival_at(0.0) == 1.0
    assert curve.n_events == len(observed)
    assert curve.n_censored == len(censored)
    lower, upper = curve.confidence_band()
    assert np.all(lower <= survival + 1e-12)
    assert np.all(survival <= upper + 1e-12)


@settings(max_examples=25, deadline=None)
@given(observed=st.lists(durations, min_size=1, max_size=80))
def test_kaplan_meier_uncensored_hits_zero(observed):
    # With no censoring the curve is the ECDF complement: S -> 0.
    curve = kaplan_meier(observed)
    assert curve.survival[-1] == 0.0


# ----------------------------------------------------------------------
# fit_all_safe: total function over adversarial inputs.
# ----------------------------------------------------------------------

adversarial_values = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.just(0.0),
    st.just(-0.0),
    st.floats(min_value=-1e-300, max_value=1e-300),
)


@settings(max_examples=60, deadline=None)
@given(sample=st.lists(adversarial_values, min_size=0, max_size=50))
def test_fit_all_safe_never_raises(sample):
    outcome = fit_all_safe(sample, zero_policy="clamp", epsilon=0.1)
    assert outcome.status in ("ok", "failed", "degenerate")
    if outcome.ok:
        assert outcome.best is not None
        nlls = [fit.nll for fit in outcome.fits]
        assert nlls == sorted(nlls)
    else:
        assert outcome.error
        assert outcome.best is None


@settings(max_examples=30, deadline=None)
@given(
    value=st.floats(min_value=0.1, max_value=1e6),
    n=st.integers(min_value=2, max_value=40),
)
def test_fit_all_safe_degenerate_constant_sample(value, n):
    # A constant sample has zero variance: every family is degenerate,
    # and the safe API must report it as such rather than raise.
    outcome = fit_all_safe([value] * n)
    assert outcome.status in ("ok", "degenerate")
