"""The ISSUE's chaos acceptance drill, as a test.

With filesystem faults armed (slow-io, then ENOSPC) and a shard
quarantined mid-run, a 200-request concurrent load must see **zero
5xx and zero hung connections**: every response is a 200 (possibly
degraded / stale, with coverage metadata) or a 429 shed.  Separately,
query results served from an undamaged store must be byte-identical
to the equivalent ``repro store analyze --json`` batch output.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from repro.cli import main as cli_main
from repro.faults.fsfaults import FsFaults, fsfaults_env
from repro.serve import ServeConfig, ServerThread
from repro.serve.client import get
from repro.store import scrub_store, store_from_trace

TOTAL_REQUESTS = 200
CLIENTS = 8


def dumps(payload):
    return json.dumps(payload, indent=2, sort_keys=True)


def test_served_summary_byte_identical_to_cli(
    tmp_path, small_trace, capsys
):
    root = tmp_path / "store"
    store_from_trace(small_trace, root, shard_rows=100)
    assert cli_main(["store", "analyze", str(root), "--json"]) == 0
    expected = capsys.readouterr().out
    with ServerThread(root, ServeConfig(port=0)) as served:
        response = get(served.host, served.port, "/v1/summary")
    assert response.status == 200
    assert dumps(response.body["data"]) + "\n" == expected


def test_concurrent_load_survives_faults_and_quarantine(
    tmp_path, small_trace
):
    root = tmp_path / "store"
    store_from_trace(small_trace, root, shard_rows=100)
    systems = sorted({record.system_id for record in small_trace.records})
    paths = ["/v1/summary"] + [
        f"/v1/analyze?system={system}" for system in systems
    ]

    def fault(operator, times, slow_seconds=0.01):
        return FsFaults(
            operator=operator,
            times=times,
            sites=("store.read.column",),
            state_dir=str(tmp_path / f"faults-{operator}"),
            slow_seconds=slow_seconds,
        )

    config = ServeConfig(
        port=0,
        max_concurrency=2,
        max_queue=2,
        deadline_seconds=5.0,
        breaker_cooldown=600.0,  # no half-open probes mid-drill
    )
    outcomes = {"ok": 0, "degraded": 0, "stale": 0, "partial": 0, "shed": 0}
    failures = []

    with ServerThread(root, config) as served:
        # Warm phase: every query path gets a complete cached answer,
        # arming the last-good stale fallback the ladder ends on.
        for path in paths:
            response = get(served.host, served.port, path)
            assert response.status == 200
            assert response.meta()["status"] == "ok"

        def hit(index):
            path = paths[index % len(paths)]
            try:
                response = get(served.host, served.port, path, timeout=30)
            except OSError as error:
                failures.append(f"{path}: hung/dropped connection: {error}")
                return
            if response.status == 429:
                outcomes["shed"] += 1
                return
            if response.status != 200:
                failures.append(f"{path}: HTTP {response.status}")
                return
            meta = response.meta()
            for field in ("degraded", "stale", "coverage", "cache", "breaker"):
                if field not in meta:
                    failures.append(f"{path}: meta missing {field!r}")
                    return
            if meta["degraded"] and not isinstance(meta["coverage"], dict):
                failures.append(f"{path}: degraded without coverage map")
                return
            outcomes[meta["status"]] = outcomes.get(meta["status"], 0) + 1

        def drive(start, count):
            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                list(pool.map(hit, range(start, start + count)))

        # Phase 1: slow reads under concurrency (some requests shed).
        with fsfaults_env(fault("slow-io", times=64)):
            drive(0, 80)

        # Mid-run: a shard loses a column and gets quarantined while
        # traffic continues.
        (root / "shards" / "00000-node_id.npy").unlink()
        scrub_store(root)

        # Phase 2: damaged store + ENOSPC on the surviving reads.
        with fsfaults_env(fault("enospc", times=4)):
            drive(80, 80)

        # Phase 3: faults disarmed, store still damaged.
        drive(160, TOTAL_REQUESTS - 160)

        stats = get(served.host, served.port, "/v1/stats").body

    assert not failures, failures[:10]
    answered = sum(outcomes.values())
    assert answered == TOTAL_REQUESTS
    # The damaged phases must actually have exercised the ladder.
    assert outcomes["degraded"] + outcomes["stale"] > 0
    assert stats["gateway"]["degraded_reads"] + stats["gateway"]["stale_reads"] > 0
    assert stats["responses"].get("error", 0) == 0
    assert stats["responses"].get("unavailable", 0) == 0
