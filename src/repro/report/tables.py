"""Aligned ASCII tables."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    align: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cells; rendered with ``str``.  Floats should be
        pre-formatted by the caller (the table does not guess
        precision).
    title:
        Optional title line printed above the table.
    align:
        Per-column alignment string of ``"l"``/``"r"`` characters;
        default: first column left, the rest right.

    Returns
    -------
    str
        The rendered table (no trailing newline).
    """
    if not headers:
        raise ValueError("need at least one column")
    n_columns = len(headers)
    if align is None:
        align = "l" + "r" * (n_columns - 1)
    if len(align) != n_columns or any(c not in "lr" for c in align):
        raise ValueError(f"align must be {n_columns} 'l'/'r' characters, got {align!r}")
    text_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != n_columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {n_columns}"
            )
        text_rows.append([str(cell) for cell in row])
    widths = [
        max(len(text_rows[r][c]) for r in range(len(text_rows)))
        for c in range(n_columns)
    ]
    def render_row(cells: List[str]) -> str:
        parts = []
        for column, cell in enumerate(cells):
            if align[column] == "l":
                parts.append(cell.ljust(widths[column]))
            else:
                parts.append(cell.rjust(widths[column]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(text_rows[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in text_rows[1:])
    return "\n".join(lines)
