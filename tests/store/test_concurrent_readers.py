"""Concurrent store readers: independent handles share nothing.

The serving layer scans one :class:`ColumnarStore` handle per request
from a thread pool; these tests pin the contract that makes that safe:
N threads iterating :meth:`iter_batches` on *independent* handles see
exactly the serial result, and per-handle scan/degraded state never
bleeds across handles.
"""

from __future__ import annotations

import shutil
import threading

import pytest

from repro.store import ColumnarStore, store_from_trace, summarize_store

N_THREADS = 6


@pytest.fixture(scope="module")
def pristine(tmp_path_factory, small_trace):
    root = tmp_path_factory.mktemp("concurrent") / "store"
    store_from_trace(small_trace, root, shard_rows=100)
    return root


@pytest.fixture()
def damaged(tmp_path, pristine):
    root = tmp_path / "damaged"
    shutil.copytree(pristine, root)
    (root / "shards" / "00000-node_id.npy").unlink()
    return root


def _serial_batches(root, **kwargs):
    return [
        {name: chunk[name].tolist() for name in chunk.names}
        for chunk in ColumnarStore(root, **kwargs).iter_batches(batch_rows=64)
    ]


def _scan_in_threads(root, n_threads, **kwargs):
    """Each thread opens its own handle and collects its batches."""
    results = [None] * n_threads
    errors = []

    def work(index):
        try:
            results[index] = _serial_batches(root, **kwargs)
        except Exception as exc:  # noqa: BLE001 - surfaced via the test
            errors.append(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=work, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


class TestConcurrentReaders:
    def test_threads_match_serial_batches(self, pristine):
        serial = _serial_batches(pristine)
        for result in _scan_in_threads(pristine, N_THREADS):
            assert repr(result) == repr(serial)

    def test_skip_handle_among_strict_readers(self, pristine):
        """One skip-mode reader beside strict ones sees the same rows."""
        serial = _serial_batches(pristine)
        results = [None] * N_THREADS
        errors = []

        def work(index):
            try:
                mode = "skip" if index == 0 else "raise"
                results[index] = _serial_batches(pristine, on_damage=mode)
            except Exception as exc:  # noqa: BLE001
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        for result in results:
            assert repr(result) == repr(serial)

    def test_no_cross_handle_state_bleed(self, damaged):
        """Scan stats and degraded accounting stay per-handle."""
        skip_handle = ColumnarStore(damaged, on_damage="skip")
        other = ColumnarStore(damaged, on_damage="skip")
        barrier = threading.Barrier(2)

        def scan(handle):
            barrier.wait()
            summarize_store(handle, batch_rows=64)

        threads = [
            threading.Thread(target=scan, args=(handle,))
            for handle in (skip_handle, other)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Both skipped the same damage, independently.
        assert skip_handle.degraded.shards_skipped == ["00000"]
        assert other.degraded.shards_skipped == ["00000"]
        assert (
            skip_handle.scan.rows_scanned == other.scan.rows_scanned
        )
        # A fresh strict handle on the same directory starts clean.
        fresh = ColumnarStore(damaged, on_damage="skip")
        assert not fresh.degraded
        assert fresh.scan.rows_scanned == 0

    def test_summaries_identical_across_threads(self, pristine):
        serial = summarize_store(ColumnarStore(pristine)).to_dict()
        outputs = [None] * N_THREADS
        errors = []

        def work(index):
            try:
                outputs[index] = summarize_store(
                    ColumnarStore(pristine)
                ).to_dict()
            except Exception as exc:  # noqa: BLE001
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        for output in outputs:
            assert repr(output) == repr(serial)
