"""Tests for trace validation."""

import pytest

from repro.records.record import FailureRecord, RootCause
from repro.records.trace import FailureTrace
from repro.records.validation import (
    TraceValidationError,
    validate_record,
    validate_trace,
)


def record(start=1e8, system=20, node=0):
    return FailureRecord(
        start_time=start, end_time=start + 60.0, system_id=system, node_id=node,
        root_cause=RootCause.HARDWARE,
    )


class TestValidateRecord:
    def test_valid(self):
        trace = FailureTrace([record()])
        validate_record(record(), trace)  # does not raise

    def test_without_trace_is_noop(self):
        validate_record(record())

    def test_unknown_system(self):
        trace = FailureTrace([])
        with pytest.raises(TraceValidationError, match="unknown system"):
            validate_record(record(system=7, node=2000), FailureTrace([], systems={}))

    def test_node_out_of_range(self):
        trace = FailureTrace([])
        with pytest.raises(TraceValidationError, match="only 49 nodes"):
            validate_record(record(node=49), trace)  # system 20 has nodes 0-48

    def test_time_outside_window(self):
        trace = FailureTrace([])
        with pytest.raises(TraceValidationError, match="outside observation"):
            validate_record(record(start=trace.data_end + 10.0), trace)


class TestValidateTrace:
    def test_clean_trace(self):
        trace = FailureTrace([record(1e8), record(1.1e8, node=3)])
        assert validate_trace(trace) == []

    def test_problems_reported_with_index(self):
        trace = FailureTrace([record(1e8), record(1.1e8, node=4000)])
        problems = validate_trace(trace)
        assert len(problems) == 1
        assert problems[0].startswith("record 1:")

    def test_max_errors_truncation(self):
        records = [record(1e8 + i, node=4000 + i) for i in range(30)]
        problems = validate_trace(FailureTrace(records), max_errors=5)
        assert len(problems) == 6
        assert "suppressed" in problems[-1]

    def test_synthetic_trace_is_valid(self, small_trace):
        assert validate_trace(small_trace) == []

    def test_exactly_max_errors_has_no_sentinel(self):
        # Historical bug: landing exactly on max_errors added a
        # "0 further problems suppressed" line even though nothing was
        # suppressed.
        records = [record(1e8 + i, node=4000 + i) for i in range(5)]
        problems = validate_trace(FailureTrace(records), max_errors=5)
        assert len(problems) == 5
        assert not any("suppressed" in problem for problem in problems)

    def test_sentinel_counts_suppressed_problems(self):
        records = [record(1e8 + i, node=4000 + i) for i in range(12)]
        problems = validate_trace(FailureTrace(records), max_errors=5)
        assert problems[-1] == "... (7 further problems suppressed)"


class TestValidationSummary:
    def test_clean_summary(self):
        trace = FailureTrace([record(1e8), record(1.1e8, node=3)])
        problems = validate_trace(trace)
        summary = problems.summary
        assert summary.ok
        assert summary.n_records == 2
        assert summary.n_problems == 0
        assert summary.counts == {}
        assert not summary.truncated

    def test_summary_counts_all_problems_even_when_truncated(self):
        records = [record(1e8 + i, node=4000 + i) for i in range(30)]
        problems = validate_trace(FailureTrace(records), max_errors=5)
        summary = problems.summary
        assert not summary.ok
        assert summary.n_problems == 30
        assert summary.counts == {"node-out-of-range": 30}
        assert summary.truncated

    def test_summary_not_truncated_at_exact_limit(self):
        records = [record(1e8 + i, node=4000 + i) for i in range(5)]
        summary = validate_trace(FailureTrace(records), max_errors=5).summary
        assert summary.n_problems == 5
        assert not summary.truncated

    def test_summary_categorizes_mixed_problems(self):
        trace = FailureTrace([record(1e8, node=4000), record(1.1e8, system=77)])
        summary = validate_trace(trace).summary
        assert summary.counts == {
            "node-out-of-range": 1,
            "unknown-system": 1,
        }
