"""Result cache: generation keying, LRU bounds, last-good fallback."""

from __future__ import annotations

import pytest

from repro.serve import ResultCache


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("gen1", "summary") is None
        cache.put("gen1", "summary", {"rows": 10})
        entry = cache.get("gen1", "summary")
        assert entry is not None
        assert entry.payload == {"rows": 10}
        assert entry.generation == "gen1"
        assert cache.hits == 1 and cache.misses == 1

    def test_generation_change_invalidates(self):
        cache = ResultCache()
        cache.put("gen1", "summary", {"rows": 10})
        # A repaired / appended store presents a new generation; the
        # old entry simply never matches again.
        assert cache.get("gen2", "summary") is None

    def test_distinct_queries_distinct_entries(self):
        cache = ResultCache()
        cache.put("gen", "a", {"q": "a"})
        cache.put("gen", "b", {"q": "b"})
        assert cache.get("gen", "a").payload == {"q": "a"}
        assert cache.get("gen", "b").payload == {"q": "b"}

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("gen", "a", {})
        cache.put("gen", "b", {})
        cache.get("gen", "a")  # refresh a → b is now least recent
        cache.put("gen", "c", {})
        assert cache.get("gen", "b") is None
        assert cache.get("gen", "a") is not None
        assert cache.get("gen", "c") is not None
        assert cache.evictions == 1

    def test_last_good_survives_generation_change(self):
        cache = ResultCache(max_entries=1)
        cache.put("gen1", "summary", {"rows": 10})
        cache.put("gen2", "other", {"rows": 3})  # evicts the LRU entry
        assert cache.get("gen1", "summary") is None
        stale = cache.last_good("summary")
        assert stale is not None
        assert stale.payload == {"rows": 10}
        assert stale.generation == "gen1"
        assert cache.stale_hits == 1

    def test_last_good_tracks_newest(self):
        cache = ResultCache()
        cache.put("gen1", "summary", {"version": 1})
        cache.put("gen2", "summary", {"version": 2})
        assert cache.last_good("summary").payload == {"version": 2}

    def test_clear(self):
        cache = ResultCache()
        cache.put("gen", "summary", {})
        cache.clear()
        assert cache.get("gen", "summary") is None
        assert cache.last_good("summary") is None

    def test_counters(self):
        cache = ResultCache(max_entries=4)
        cache.put("gen", "a", {})
        cache.get("gen", "a")
        cache.get("gen", "missing")
        stats = cache.to_dict()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["last_good_entries"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)
