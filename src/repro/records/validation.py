"""Trace and record validation.

The CSV loader and the synthetic generator both validate their output;
user-supplied traces can be validated explicitly before analysis so
that malformed data fails loudly rather than skewing statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.records.record import FailureRecord
from repro.records.trace import FailureTrace

__all__ = [
    "TraceValidationError",
    "ValidationSummary",
    "validate_record",
    "validate_trace",
]


class TraceValidationError(ValueError):
    """Raised when a record or trace violates the data-model invariants.

    ``category`` is a machine-readable problem kind (e.g.
    ``"unknown-system"``) used by :class:`ValidationSummary`.
    """

    def __init__(self, message: str, *, category: str = "invalid") -> None:
        super().__init__(message)
        self.category = category


@dataclass(frozen=True)
class ValidationSummary:
    """Structured outcome of :func:`validate_trace`.

    Attributes
    ----------
    n_records:
        Number of records checked (always the whole trace).
    n_problems:
        Total problems found, including any beyond ``max_errors``.
    counts:
        Problems per category (``"unsorted"``, ``"unknown-system"``,
        ``"node-out-of-range"``, ``"out-of-window"``).
    truncated:
        True when more problems were found than were rendered as
        strings.
    problems:
        The rendered problem strings (at most ``max_errors``, plus the
        suppression sentinel when ``truncated``).
    """

    n_records: int
    n_problems: int
    counts: Dict[str, int] = field(default_factory=dict)
    truncated: bool = False
    problems: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the trace is valid."""
        return self.n_problems == 0


class ProblemList(List[str]):
    """The list of problem strings, carrying the structured summary.

    Behaves exactly like ``list`` (so ``validate_trace(trace) == []``
    keeps working) with the :class:`ValidationSummary` attached as
    ``.summary``.
    """

    summary: ValidationSummary


def validate_record(record: FailureRecord, trace: Optional[FailureTrace] = None) -> None:
    """Validate one record, optionally against a trace's inventory.

    Checks beyond the dataclass's own invariants:

    * the system exists in the inventory and the node ID is in range,
    * the failure falls inside the trace's observation window.

    Raises
    ------
    TraceValidationError
        On the first violation found.
    """
    if trace is None:
        return
    config = trace.systems.get(record.system_id)
    if config is None:
        raise TraceValidationError(
            f"record references unknown system {record.system_id}",
            category="unknown-system",
        )
    if record.node_id >= config.node_count:
        raise TraceValidationError(
            f"record references node {record.node_id} but system "
            f"{record.system_id} has only {config.node_count} nodes",
            category="node-out-of-range",
        )
    if not trace.data_start <= record.start_time < trace.data_end:
        raise TraceValidationError(
            f"record start time {record.start_time} outside observation "
            f"window [{trace.data_start}, {trace.data_end})",
            category="out-of-window",
        )


def validate_trace(trace: FailureTrace, max_errors: int = 20) -> List[str]:
    """Validate every record of a trace.

    Parameters
    ----------
    trace:
        The trace to validate.
    max_errors:
        Render at most this many problems as strings (the trace may
        hold tens of thousands of records); further problems are still
        counted in the summary.

    Returns
    -------
    list of str
        Human-readable problem descriptions; empty if the trace is
        valid.  When problems beyond ``max_errors`` exist, the last
        entry is a ``"... (N further problems suppressed)"`` sentinel —
        only then.  The returned list also carries a
        :class:`ValidationSummary` as its ``summary`` attribute.
    """
    problems = ProblemList()
    counts: Dict[str, int] = {}
    n_problems = 0
    previous_start = float("-inf")

    def note(description: str, category: str) -> None:
        nonlocal n_problems
        n_problems += 1
        counts[category] = counts.get(category, 0) + 1
        if len(problems) < max_errors:
            problems.append(description)

    for index, record in enumerate(trace):
        if record.start_time < previous_start:
            note(f"record {index}: trace not sorted by start time", "unsorted")
        previous_start = record.start_time
        try:
            validate_record(record, trace)
        except TraceValidationError as exc:
            note(f"record {index}: {exc}", exc.category)

    truncated = n_problems > len(problems)
    if truncated:
        suppressed = n_problems - len(problems)
        problems.append(f"... ({suppressed} further problems suppressed)")
    problems.summary = ValidationSummary(
        n_records=len(trace),
        n_problems=n_problems,
        counts=counts,
        truncated=truncated,
        problems=tuple(problems),
    )
    return problems
