"""Filesystem/resource fault injection: ENOSPC, torn writes, fsync, slow I/O.

Where :mod:`repro.faults.operators` damages trace *data* and
:mod:`repro.faults.process_ops` damages *execution*, this layer damages
the *storage path* — the fault class (full disks, torn writes, lying
fsyncs, slow devices) that failure studies of contemporary HPC systems
flag as increasingly dominant, and the one every crash-safety claim in
:mod:`repro.resilience` must actually be drilled against.

Injection is driven by an environment variable
(:data:`FS_FAULTS_ENV_VAR`) holding a JSON :class:`FsFaults` spec,
mirroring the ``REPRO_PROCESS_CHAOS`` design: worker processes inherit
the environment, and a shared *state directory* coordinates a global
injection budget across processes via exclusively-created claim files.
Each instrumented write path calls a *site hook* — no-op unless armed —
identified by a stable site name:

========================  ====================================================
site                      where it fires
========================  ====================================================
``atomic.text``           after the staged temp file is fully written, before
                          the fsync + rename publish it
                          (:func:`repro.resilience.atomic.atomic_open_text`)
``atomic.bytes``          around the staged binary write
                          (:func:`repro.resilience.atomic.atomic_write_bytes`)
``atomic.fsync``          immediately before the staged file's ``fsync``
``journal.append``        around the (non-atomic, append-mode) journal line
                          write (:meth:`repro.resilience.journal.ShardJournal.record`)
``io.csv``                entry of :func:`repro.io.csv_format.write_lanl_csv`
``io.jsonl``              entry of :func:`repro.io.jsonl_format.write_jsonl`
``store.column``          before each per-shard column ``.npy`` write
                          (:meth:`repro.store.writer.StoreWriter._write_shard`)
``store.manifest``        before the store manifest publish
                          (:meth:`repro.store.manifest.Manifest.save`)
``store.scrub.ledger``    before the quarantine ledger rewrite
                          (:func:`repro.store.manifest.write_ledger`)
``store.merge.manifest``  before a federation (append/merge) manifest
                          publish (:func:`repro.store.manifest.publish_manifest`,
                          :meth:`repro.store.writer.StoreWriter.finalize`
                          with ``manifest_site="store.merge.manifest"``)
``store.read.column``     before a shard column file is opened for a
                          *read* (:class:`repro.store.reader._ShardCursor`)
                          — the serving-path drill site: ``slow-io``
                          models a slow disk under live queries,
                          error operators a disk that fails them
========================  ====================================================

Operators:

* ``enospc``      — raise ``OSError(ENOSPC)`` at the site (disk full);
* ``torn-write``  — write/keep only a seeded prefix of the data, then
  raise ``OSError(EIO)`` (partial write discovered by a later error);
* ``fsync-fail``  — raise ``OSError(EIO)`` (the fsync that lied);
* ``slow-io``     — sleep briefly (latency noise; must not fail);
* ``count``       — never fault, only count matching calls in-process
  (used by ``repro bench --fsfaults-guard`` to measure the disabled
  shim's footprint with a real workload's site count).

Targeting is by ``sites`` (empty = every site), an optional
``path_contains`` substring of the destination path, and ``skip``
(let the first N matching calls pass before injecting).  The torn-write
prefix fraction is a pure function of ``(seed, site)``, so campaigns
are deterministic end to end.

This module is deliberately stdlib-only and imports nothing from the
rest of the package: the instrumented call sites live below
``repro.io``/``repro.resilience`` and import it lazily at fault time.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "FS_FAULTS_ENV_VAR",
    "FS_OPERATORS",
    "FS_SITES",
    "FsFaultError",
    "TornWriteError",
    "FsFaults",
    "maybe_fault",
    "fault_write",
    "fsfaults_env",
    "make_fsfaults",
    "reset_counts",
    "call_count",
]

FS_FAULTS_ENV_VAR = "REPRO_FS_FAULTS"

FS_OPERATORS = ("enospc", "torn-write", "fsync-fail", "slow-io", "count")

#: The site names instrumented today (documentation aid; the shim
#: accepts any site string, so new subsystems can add sites freely).
FS_SITES = (
    "atomic.text",
    "atomic.bytes",
    "atomic.fsync",
    "journal.append",
    "io.csv",
    "io.jsonl",
    "store.column",
    "store.manifest",
    "store.scrub.ledger",
    "store.merge.manifest",
    "store.read.column",
)

#: Operators that only observe (no state directory / budget required).
_PASSIVE_OPERATORS = ("count",)


class FsFaultError(OSError):
    """An injected filesystem/resource fault.

    Subclasses ``OSError`` so the code under test handles it exactly
    like the real thing; the distinct type lets drills assert the
    failure they observed was the injected one.
    """


class TornWriteError(FsFaultError):
    """The injected error reported after a deliberately partial write."""


# In-process call counter for the ``count`` operator (bench guard).
_COUNTS: Dict[str, int] = {}


def reset_counts() -> None:
    """Zero the in-process ``count``-operator site counters."""
    _COUNTS.clear()


def call_count() -> int:
    """Total site-hook calls counted by the ``count`` operator."""
    return sum(_COUNTS.values())


@dataclass(frozen=True)
class FsFaults:
    """A filesystem-fault specification, serializable into the environment.

    Parameters
    ----------
    operator:
        One of :data:`FS_OPERATORS`.
    times:
        Global injection budget across all processes and retries.
    state_dir:
        Directory coordinating the budget (claim files) between
        processes.  Required for every operator except ``count``.
    sites:
        Site names to target; empty targets every site.
    path_contains:
        Only target calls whose destination path contains this
        substring (e.g. ``".pkl"`` for shard payloads, ``"journal"``
        for the journal file).  Empty matches every path.
    skip:
        Let this many matching calls pass before the budget starts
        being spent (deterministic "fail the Nth write" drills).
    seed:
        Determinism seed; the torn-write prefix fraction is derived
        from ``(seed, site)``.
    slow_seconds:
        Sleep duration for the ``slow-io`` operator.
    """

    operator: str
    times: int = 1
    state_dir: str = ""
    sites: Tuple[str, ...] = field(default_factory=tuple)
    path_contains: str = ""
    skip: int = 0
    seed: int = 0
    slow_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.operator not in FS_OPERATORS:
            raise ValueError(
                f"operator must be one of {FS_OPERATORS}, got {self.operator!r}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")
        if not self.state_dir and self.operator not in _PASSIVE_OPERATORS:
            raise ValueError(
                "state_dir is required (it bounds the injection budget; "
                "without it an armed fault would fire on every write "
                "forever)"
            )
        object.__setattr__(self, "sites", tuple(self.sites))

    def to_json(self) -> str:
        return json.dumps(
            {
                "operator": self.operator,
                "times": self.times,
                "state_dir": self.state_dir,
                "sites": list(self.sites),
                "path_contains": self.path_contains,
                "skip": self.skip,
                "seed": self.seed,
                "slow_seconds": self.slow_seconds,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FsFaults":
        payload = json.loads(text)
        payload["sites"] = tuple(payload.get("sites", ()))
        return cls(**payload)

    def injections(self) -> int:
        """How many injections have actually been performed so far."""
        try:
            names = os.listdir(self.state_dir)
        except OSError:
            return 0
        claimed = sum(1 for name in names if name.startswith("claim-"))
        return max(0, claimed - self.skip)

    def torn_fraction(self, site: str) -> float:
        """Seeded prefix fraction in [0.25, 0.75) for a torn write."""
        digest = hashlib.sha256(f"{self.seed}:{site}".encode("utf-8")).hexdigest()
        return 0.25 + (int(digest[:8], 16) % 1000) / 2000.0


def _claim_slot(state_dir: str, slots: int) -> Optional[int]:
    """Atomically claim the next of ``slots`` slots; None when spent.

    Creates ``state_dir`` on first use so arming the environment
    directly (a subprocess drill, CI) works without a provisioning
    step — a missing state directory must not silently disarm the
    fault.
    """
    with contextlib.suppress(OSError):
        os.makedirs(state_dir, exist_ok=True)
    for n in range(slots):
        path = os.path.join(state_dir, f"claim-{n}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return None
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        return n
    return None


def _active_spec(
    site: str, path: str, env: Optional[Mapping[str, str]]
) -> Optional[FsFaults]:
    """The armed spec if this (site, path) call should inject, else None."""
    environment = os.environ if env is None else env
    spec_text = environment.get(FS_FAULTS_ENV_VAR)
    if not spec_text:
        return None
    spec = FsFaults.from_json(spec_text)
    if spec.sites and site not in spec.sites:
        return None
    if spec.path_contains and spec.path_contains not in path:
        return None
    if spec.operator == "count":
        _COUNTS[site] = _COUNTS.get(site, 0) + 1
        return None
    slot = _claim_slot(spec.state_dir, spec.skip + spec.times)
    if slot is None or slot < spec.skip:
        return None
    return spec


def _raise_for(spec: FsFaults, site: str) -> None:
    """Raise (or sleep for) the spec's operator at ``site``.

    Messages deliberately name only the site, never a filesystem path,
    so campaign scorecards stay byte-identical across run directories.
    """
    if spec.operator == "enospc":
        raise FsFaultError(
            errno.ENOSPC, f"injected ENOSPC at site {site!r}"
        )
    if spec.operator == "fsync-fail":
        raise FsFaultError(
            errno.EIO, f"injected fsync failure at site {site!r}"
        )
    if spec.operator == "torn-write":
        raise TornWriteError(
            errno.EIO, f"injected torn write at site {site!r}"
        )
    if spec.operator == "slow-io":
        time.sleep(spec.slow_seconds)
        return
    raise AssertionError(f"unhandled operator {spec.operator!r}")


def maybe_fault(
    site: str,
    path: str = "",
    tmp: Optional[str] = None,
    env: Optional[Mapping[str, str]] = None,
) -> None:
    """Site hook for write paths that stage their data first.

    No-op unless :data:`FS_FAULTS_ENV_VAR` is armed, the (site, path)
    is targeted, and the injection budget is not spent.  For
    ``torn-write`` with a staged ``tmp`` file, the staged file is
    truncated to the seeded prefix fraction before the error is raised
    — the torn bytes exist on disk, exactly as a real partial write
    would leave them.
    """
    spec = _active_spec(site, path, env)
    if spec is None:
        return
    if spec.operator == "torn-write" and tmp is not None:
        with contextlib.suppress(OSError):
            size = os.path.getsize(tmp)
            with open(tmp, "rb+") as handle:
                handle.truncate(int(size * spec.torn_fraction(site)))
    _raise_for(spec, site)


def fault_write(
    site: str,
    path: str,
    write: Callable[[Union[str, bytes]], object],
    data: Union[str, bytes],
    env: Optional[Mapping[str, str]] = None,
) -> None:
    """Site hook for *direct* (unstaged) writes that can be left torn.

    Calls ``write(data)`` when no fault fires.  Under ``torn-write``
    the seeded prefix of ``data`` is written for real before the error
    is raised, leaving genuinely torn content at the destination — the
    drill for append-mode paths like the shard journal, which atomic
    staging cannot protect.
    """
    spec = _active_spec(site, path, env)
    if spec is None:
        write(data)
        return
    if spec.operator == "torn-write":
        write(data[: int(len(data) * spec.torn_fraction(site))])
        raise TornWriteError(
            errno.EIO, f"injected torn write at site {site!r}"
        )
    if spec.operator == "slow-io":
        time.sleep(spec.slow_seconds)
        write(data)
        return
    _raise_for(spec, site)


@contextlib.contextmanager
def fsfaults_env(spec: Optional[FsFaults]) -> Iterator[Optional[FsFaults]]:
    """Arm ``spec`` in ``os.environ`` for the duration of the block.

    Must wrap the code whose writes should be drilled; worker processes
    spawned inside the block inherit the armed environment.
    ``spec=None`` is a no-op (handy for parameterized drills).
    """
    if spec is None:
        yield None
        return
    if spec.state_dir:
        os.makedirs(spec.state_dir, exist_ok=True)
    previous = os.environ.get(FS_FAULTS_ENV_VAR)
    os.environ[FS_FAULTS_ENV_VAR] = spec.to_json()
    try:
        yield spec
    finally:
        if previous is None:
            os.environ.pop(FS_FAULTS_ENV_VAR, None)
        else:
            os.environ[FS_FAULTS_ENV_VAR] = previous


def make_fsfaults(
    operator: str,
    times: int = 1,
    state_dir: Optional[str] = None,
    **kwargs,
) -> FsFaults:
    """Convenience builder that provisions a state directory if needed."""
    if state_dir is None and operator not in _PASSIVE_OPERATORS:
        state_dir = tempfile.mkdtemp(prefix="repro-fsfaults-")
    return FsFaults(
        operator=operator, times=times, state_dir=state_dir or "", **kwargs
    )
