"""Tests for the CSV trace format."""

import pytest

from repro.io.csv_format import read_lanl_csv, write_lanl_csv
from repro.io.schema import CSV_COLUMNS, SchemaError, describe_schema
from repro.records.record import FailureRecord, LowLevelCause, RootCause, Workload
from repro.records.trace import FailureTrace


def sample_records():
    return [
        FailureRecord(
            start_time=1.5e8, end_time=1.5e8 + 3600.0, system_id=20, node_id=22,
            root_cause=RootCause.HARDWARE, low_level_cause=LowLevelCause.MEMORY,
            workload=Workload.GRAPHICS, record_id=0,
        ),
        FailureRecord(
            start_time=1.6e8, end_time=1.6e8 + 60.0, system_id=5, node_id=0,
            root_cause=RootCause.UNKNOWN, workload=Workload.FRONTEND, record_id=1,
        ),
    ]


class TestRoundtrip:
    def test_records_survive_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        original = FailureTrace(sample_records())
        assert write_lanl_csv(original, path) == 2
        loaded = read_lanl_csv(path)
        assert len(loaded) == 2
        for before, after in zip(original, loaded):
            assert after.start_time == before.start_time
            assert after.end_time == before.end_time
            assert after.system_id == before.system_id
            assert after.node_id == before.node_id
            assert after.root_cause is before.root_cause
            assert after.low_level_cause is before.low_level_cause
            assert after.workload is before.workload

    def test_float_precision_preserved(self, tmp_path):
        path = tmp_path / "trace.csv"
        record = FailureRecord(
            start_time=123456789.123456, end_time=123456789.623456,
            system_id=1, node_id=0,
        )
        write_lanl_csv([record], path)
        loaded = read_lanl_csv(path)
        assert loaded[0].start_time == record.start_time
        assert loaded[0].repair_time == pytest.approx(0.5)

    def test_synthetic_trace_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "synth.csv"
        write_lanl_csv(small_trace, path)
        loaded = read_lanl_csv(path)
        assert len(loaded) == len(small_trace)
        assert loaded.counts_by_cause() == small_trace.counts_by_cause()

    def test_custom_window_kwargs(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_lanl_csv(sample_records(), path)
        loaded = read_lanl_csv(path, data_start=0.0, data_end=9e8)
        assert loaded.data_start == 0.0
        assert loaded.data_end == 9e8


class TestErrors:
    def test_missing_header_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("system_id,node_id\n20,1\n")
        with pytest.raises(SchemaError, match="missing required columns"):
            read_lanl_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty file"):
            read_lanl_csv(path)

    def test_malformed_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "system_id,node_id,start_time,end_time\n20,1,notanumber,5\n"
        )
        with pytest.raises(SchemaError, match="line 2"):
            read_lanl_csv(path)

    def test_unknown_cause(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "system_id,node_id,start_time,end_time,root_cause\n20,1,1,5,gremlins\n"
        )
        with pytest.raises(SchemaError, match="unknown root cause"):
            read_lanl_csv(path)

    def test_unknown_workload(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "system_id,node_id,start_time,end_time,workload\n20,1,1,5,gaming\n"
        )
        with pytest.raises(SchemaError, match="unknown workload"):
            read_lanl_csv(path)

    def test_defaults_for_optional_columns(self, tmp_path):
        # Only the four required columns: workload/cause default.
        path = tmp_path / "minimal.csv"
        path.write_text("system_id,node_id,start_time,end_time\n20,1,1000,2000\n")
        loaded = read_lanl_csv(path)
        assert loaded[0].root_cause is RootCause.UNKNOWN
        assert loaded[0].workload is Workload.COMPUTE


class TestSchema:
    def test_columns_documented(self):
        text = describe_schema()
        for column in CSV_COLUMNS:
            assert column in text
