"""The seeded corruption injector.

:class:`CorruptionInjector` damages a toolkit-format CSV text at a
configurable rate with a configurable operator mix, deterministically
per seed, and returns a manifest of exactly which data rows were
touched by which operator — the ground truth the chaos tests compare
lenient-ingest survivors against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.faults.operators import (
    DEFAULT_OPERATORS,
    CorruptionOperator,
    RowShuffler,
)
from repro.io.common import PathLike, open_text

__all__ = ["CorruptionResult", "CorruptionInjector"]


@dataclass(frozen=True)
class CorruptionResult:
    """What the injector did to one text.

    Attributes
    ----------
    text:
        The corrupted CSV text (header intact).
    n_rows:
        Number of data rows in the original text.
    corrupted_rows:
        Original 0-based data-row index -> operator name, for every
        row an operator touched.
    operator_counts:
        Rows touched per operator name.
    shuffled:
        Whether the body was reordered.
    """

    text: str
    n_rows: int
    corrupted_rows: Dict[int, str] = field(default_factory=dict)
    operator_counts: Dict[str, int] = field(default_factory=dict)
    shuffled: bool = False

    @property
    def n_corrupted(self) -> int:
        """Number of rows touched by a damaging operator."""
        return len(self.corrupted_rows)

    def describe(self) -> str:
        """One-paragraph summary of the injected damage."""
        lines = [
            f"corrupted {self.n_corrupted}/{self.n_rows} rows"
            + (" (body shuffled)" if self.shuffled else "")
        ]
        for name in sorted(self.operator_counts):
            lines.append(f"  {name}: {self.operator_counts[name]}")
        return "\n".join(lines)


class CorruptionInjector:
    """Deterministically corrupt a toolkit CSV at a given row rate.

    Parameters
    ----------
    seed:
        Seed for the private :class:`random.Random`; equal seeds (and
        inputs) produce byte-identical corruption.
    rate:
        Fraction of data rows to damage, in [0, 1].  At least one row
        is damaged whenever ``rate > 0`` and the file has rows.
    operators:
        Operator mix; each damaged row gets one operator chosen
        uniformly.  Defaults to
        :data:`~repro.faults.operators.DEFAULT_OPERATORS`.  A
        :class:`~repro.faults.operators.RowShuffler` in the mix applies
        to the whole body instead of individual rows.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.05,
        operators: Optional[Sequence[CorruptionOperator]] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.seed = int(seed)
        self.rate = float(rate)
        chosen = tuple(operators) if operators is not None else DEFAULT_OPERATORS
        self.row_operators: Tuple[CorruptionOperator, ...] = tuple(
            op for op in chosen if op.row_level
        )
        self.body_operators: Tuple[RowShuffler, ...] = tuple(
            op for op in chosen if not op.row_level
        )
        if not self.row_operators and not self.body_operators:
            raise ValueError("need at least one operator")

    def corrupt_text(self, text: str) -> CorruptionResult:
        """Corrupt a CSV text; the first line is kept as the header."""
        lines = text.splitlines()
        if not lines:
            raise ValueError("empty text (no header)")
        header, body = lines[0], lines[1:]
        columns = {name: index for index, name in enumerate(header.split(","))}
        rng = random.Random(self.seed)

        corrupted_rows: Dict[int, str] = {}
        operator_counts: Dict[str, int] = {}
        out_lines = []
        if self.row_operators and self.rate > 0 and body:
            n_damage = max(1, round(self.rate * len(body)))
            n_damage = min(n_damage, len(body))
            targets = set(rng.sample(range(len(body)), n_damage))
        else:
            targets = set()
        for index, line in enumerate(body):
            if index in targets:
                operator = rng.choice(self.row_operators)
                fields = line.split(",")
                replacement = operator.apply(fields, columns, rng)
                out_lines.extend(replacement)
                corrupted_rows[index] = operator.name
                operator_counts[operator.name] = (
                    operator_counts.get(operator.name, 0) + 1
                )
            else:
                out_lines.append(line)

        shuffled = False
        for operator in self.body_operators:
            out_lines = operator.apply_body(out_lines, rng)
            shuffled = True
            operator_counts[operator.name] = operator_counts.get(operator.name, 0) + 1

        corrupted = "\n".join([header] + out_lines) + "\n"
        return CorruptionResult(
            text=corrupted,
            n_rows=len(body),
            corrupted_rows=corrupted_rows,
            operator_counts=operator_counts,
            shuffled=shuffled,
        )

    def corrupt_file(self, source: PathLike, destination: PathLike) -> CorruptionResult:
        """Corrupt ``source`` (CSV, optionally .gz) into ``destination``."""
        with open_text(Path(source), "r") as handle:
            text = handle.read()
        result = self.corrupt_text(text)
        with open_text(Path(destination), "w") as handle:
            handle.write(result.text)
        return result
