"""Metrics registry: counters, gauges and log-bucket histograms.

A :class:`MetricsRegistry` aggregates named metrics during a run and
renders them deterministically: metrics are reported sorted by name,
and histograms use a **fixed log-scale bucket table** (data-independent
boundaries), so two runs over the same workload produce byte-identical
metric output regardless of timing or scheduling.

Three kinds:

* :class:`Counter` — monotonically accumulating total (rows read,
  records generated).
* :class:`Gauge` — last-written value (effective worker count).
* :class:`Histogram` — distribution of observations over fixed
  log-scale buckets (4 per decade across 1e-6..1e9), plus exact count,
  sum, min and max.

Stdlib-only; see :mod:`repro.obs.tracer` for the companion span model.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "BUCKET_EDGES"]

#: Fixed histogram bucket boundaries: 4 buckets per decade over
#: [1e-6, 1e9).  Values below the table (including <= 0) land in the
#: underflow bucket, values at or above the top in the overflow bucket.
#: Being data-independent is what makes histogram output deterministic
#: across runs.
BUCKET_EDGES: List[float] = [10.0 ** (k / 4.0) for k in range(-24, 37)]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def add(self, amount: float = 1) -> None:
        """Accumulate; negative amounts are rejected (use a Gauge)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount

    def to_value(self) -> float:
        return self.value


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def to_value(self) -> Optional[float]:
        return self.value


def _edge_label(index: int) -> str:
    """Human-readable label for bucket ``index`` (see :data:`BUCKET_EDGES`)."""
    if index == 0:
        return f"..{BUCKET_EDGES[0]:.3g}"
    if index == len(BUCKET_EDGES):
        return f"{BUCKET_EDGES[-1]:.3g}.."
    return f"{BUCKET_EDGES[index - 1]:.3g}..{BUCKET_EDGES[index]:.3g}"


class Histogram:
    """Observation distribution over the fixed log-scale bucket table."""

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        # Sparse: bucket index -> count.  Index 0 is underflow,
        # len(BUCKET_EDGES) is overflow.
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        index = bisect_right(BUCKET_EDGES, value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def to_value(self) -> Dict[str, Any]:
        """Deterministic JSON-able summary (buckets sorted, sparse)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {
                _edge_label(index): self._buckets[index]
                for index in sorted(self._buckets)
            },
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    A name belongs to exactly one kind: asking for an existing name as
    a different kind raises, which catches instrumentation typos early.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Any]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    @staticmethod
    def _kind(metric: Any) -> str:
        return type(metric).__name__.lower()

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """``{kind: {name: value}}`` with names sorted within kinds."""
        result: Dict[str, Dict[str, Any]] = {}
        for metric in self:
            result.setdefault(self._kind(metric), {})[metric.name] = metric.to_value()
        return result

    def to_events(self) -> List[Dict[str, Any]]:
        """One ``metric`` event per metric, sorted by name.

        These are the trailing lines of a trace JSONL file, after the
        span events.
        """
        return [
            {
                "type": "metric",
                "kind": self._kind(metric),
                "name": metric.name,
                "value": metric.to_value(),
            }
            for metric in self
        ]

    def describe(self) -> str:
        """Human-readable, deterministic one-screen summary."""
        if not self._metrics:
            return "metrics: (none recorded)"
        lines = [f"metrics: {len(self._metrics)} recorded"]
        for metric in self:
            kind = self._kind(metric)
            if isinstance(metric, Histogram):
                value = metric.to_value()
                lines.append(
                    f"  {metric.name} ({kind}): n={value['count']} "
                    f"sum={value['sum']:.6g} min={value['min']} "
                    f"max={value['max']}"
                )
                for label, count in value["buckets"].items():
                    lines.append(f"    [{label}): {count}")
            else:
                lines.append(f"  {metric.name} ({kind}): {metric.to_value()}")
        return "\n".join(lines)
