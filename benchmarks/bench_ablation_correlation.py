"""Ablation: correlated bursts and the system-wide TBF distribution.

Figure 6(c)'s >30% zero interarrivals come from correlated simultaneous
failures.  Regenerating system 20 with the burst process disabled must
eliminate the zero gaps and make the early-era system-wide data
fittable again — demonstrating that the "no standard distribution fits"
finding is caused by the correlation, not by the marginals.
"""

import datetime as dt

from repro.analysis.interarrival import split_eras, system_interarrivals
from repro.records.timeutils import from_datetime
from repro.report.tables import format_table
from repro.synth import GeneratorConfig, TraceGenerator

ERA = from_datetime(dt.datetime(2000, 1, 1))


def test_burst_ablation(benchmark, system20):
    def generate_without_bursts():
        config = GeneratorConfig(bursts_enabled=False)
        return TraceGenerator(seed=1, config=config).generate([20])

    no_bursts = benchmark(generate_without_bursts)

    with_early = system_interarrivals(split_eras(system20, ERA)[0], 20)
    without_early = system_interarrivals(split_eras(no_bursts, ERA)[0], 20)

    rows = [
        ("bursts on", with_early.n, f"{100 * with_early.zero_fraction:.1f}%",
         with_early.best.name, f"{with_early.best.ks:.3f}"),
        ("bursts off", without_early.n, f"{100 * without_early.zero_fraction:.1f}%",
         without_early.best.name, f"{without_early.best.ks:.3f}"),
    ]
    print("\n" + format_table(
        ("config", "gaps", "zero gaps", "best fit", "best KS"),
        rows, title="Correlated-burst ablation, system 20, 1996-99",
    ))

    # Bursts create the paper's > 30% simultaneity; removing them
    # removes it.
    assert with_early.zero_fraction > 0.30
    assert without_early.zero_fraction < 0.02
    # Without bursts the early system-wide data is fittable again:
    # the best fit's KS improves substantially.
    assert without_early.best.ks < 0.6 * with_early.best.ks
    # And the correlated trace has strictly more failures (clones).
    assert len(system20) > len(no_bursts)

    # Burst-size structure (the correlation analysis the paper names as
    # not performed): with bursts on, multi-node bursts are common in
    # the early era; off, they vanish.
    from repro.analysis.burstiness import burst_size_distribution

    sizes_on = burst_size_distribution(split_eras(system20, ERA)[0])
    sizes_off = burst_size_distribution(split_eras(no_bursts, ERA)[0])
    multi_on = sum(count for size, count in sizes_on.items() if size > 1)
    multi_off = sum(count for size, count in sizes_off.items() if size > 1)
    print(f"multi-failure bursts early era: on={multi_on} off={multi_off}")
    print(f"burst sizes (on): { {k: sizes_on[k] for k in sorted(sizes_on)} }")
    assert multi_on > 100
    assert multi_off <= 5
    assert max(sizes_on) >= 3  # bursts of 3+ nodes occur
