"""The columnar store's on-disk schema and in-memory column batches.

One trace column maps to one little-endian NumPy dtype; categorical
columns are the int8 codes of :mod:`repro.records.codes`.  The schema
digest — a sha256 over the format version, the column layout and the
categorical vocabularies — is pinned into every manifest, so a reader
can refuse a store whose bytes mean something else before touching a
single column file.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.records.codes import (
    CAUSE_CODE,
    CAUSE_VOCAB,
    DETAIL_CODE,
    DETAIL_VOCAB,
    NO_DETAIL,
    WORKLOAD_CODE,
    WORKLOAD_VOCAB,
)
from repro.records.record import FailureRecord

__all__ = [
    "FORMAT_VERSION",
    "COLUMNS",
    "COLUMN_NAMES",
    "COLUMN_DTYPES",
    "STAT_COLUMNS",
    "NO_RECORD_ID",
    "schema_digest",
    "ColumnBatch",
    "empty_batch",
    "concat_batches",
    "batch_from_records",
    "records_from_batch",
]

#: On-disk format version; bump on any layout change.
FORMAT_VERSION = 1

#: Column layout: (name, little-endian dtype string), in file order.
COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("start_time", "<f8"),
    ("end_time", "<f8"),
    ("system_id", "<i4"),
    ("node_id", "<i4"),
    ("root_cause", "|i1"),
    ("low_level_cause", "|i1"),
    ("workload", "|i1"),
    ("record_id", "<i8"),
)

COLUMN_NAMES: Tuple[str, ...] = tuple(name for name, _ in COLUMNS)
COLUMN_DTYPES: Dict[str, np.dtype] = {
    name: np.dtype(dtype) for name, dtype in COLUMNS
}

#: Columns whose per-shard min/max go into the manifest for pushdown.
STAT_COLUMNS: Tuple[str, ...] = (
    "start_time", "end_time", "system_id", "node_id",
)

#: Sentinel in the record_id column for "no explicit id".
NO_RECORD_ID = -1


def schema_digest() -> str:
    """sha256 pinning the byte-level meaning of every column.

    Covers the format version, the column names and dtypes, and the
    categorical vocabularies in code order — anything that would change
    how stored bytes decode changes the digest.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "columns": [[name, dtype] for name, dtype in COLUMNS],
        "vocab": {
            "root_cause": [cause.value for cause in CAUSE_VOCAB],
            "low_level_cause": [detail.value for detail in DETAIL_VOCAB],
            "workload": [workload.value for workload in WORKLOAD_VOCAB],
        },
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ColumnBatch:
    """A set of equally-long, schema-typed column arrays.

    The unit of transfer between the generator, the store writer and
    the reader's chunk iterator.  Construction validates lengths and
    coerces each array to its schema dtype, so a batch that exists is
    well-formed.  A batch may carry any *subset* of the schema's
    columns (readers project).
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a ColumnBatch needs at least one column")
        coerced: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for name, array in columns.items():
            dtype = COLUMN_DTYPES.get(name)
            if dtype is None:
                raise KeyError(
                    f"unknown column {name!r}; schema has {COLUMN_NAMES}"
                )
            array = np.asarray(array)
            if array.ndim != 1:
                raise ValueError(
                    f"column {name!r} must be 1-D, got shape {array.shape}"
                )
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ValueError(
                    f"column {name!r} has {len(array)} rows, expected {length}"
                )
            coerced[name] = np.ascontiguousarray(array, dtype=dtype)
        self._columns = coerced

    def __len__(self) -> int:
        return len(next(iter(self._columns.values())))

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        return self._columns[name]

    @property
    def names(self) -> Tuple[str, ...]:
        """The batch's columns, in schema order."""
        return tuple(n for n in COLUMN_NAMES if n in self._columns)

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """A view-backed sub-batch of rows ``[start, stop)``."""
        return ColumnBatch(
            {name: array[start:stop] for name, array in self._columns.items()}
        )

    def take(self, mask: np.ndarray) -> "ColumnBatch":
        """Rows where boolean ``mask`` is true (a compressed copy)."""
        return ColumnBatch(
            {name: array[mask] for name, array in self._columns.items()}
        )


def empty_batch(names: Iterable[str] = COLUMN_NAMES) -> ColumnBatch:
    """A zero-row batch with the given columns."""
    return ColumnBatch(
        {name: np.empty(0, dtype=COLUMN_DTYPES[name]) for name in names}
    )


def concat_batches(batches: List[ColumnBatch]) -> ColumnBatch:
    """Concatenate batches (all must share the same column set)."""
    if not batches:
        return empty_batch()
    names = batches[0].names
    for batch in batches[1:]:
        if batch.names != names:
            raise ValueError(
                f"cannot concatenate batches with columns {batch.names} "
                f"and {names}"
            )
    return ColumnBatch(
        {
            name: np.concatenate([batch[name] for batch in batches])
            for name in names
        }
    )


def batch_from_records(records: Iterable[FailureRecord]) -> ColumnBatch:
    """Encode records into a full-schema batch (order preserved)."""
    records = list(records)
    return ColumnBatch(
        {
            "start_time": np.array(
                [r.start_time for r in records], dtype="<f8"
            ),
            "end_time": np.array([r.end_time for r in records], dtype="<f8"),
            "system_id": np.array(
                [r.system_id for r in records], dtype="<i4"
            ),
            "node_id": np.array([r.node_id for r in records], dtype="<i4"),
            "root_cause": np.array(
                [CAUSE_CODE[r.root_cause] for r in records], dtype="|i1"
            ),
            "low_level_cause": np.array(
                [
                    NO_DETAIL if r.low_level_cause is None
                    else DETAIL_CODE[r.low_level_cause]
                    for r in records
                ],
                dtype="|i1",
            ),
            "workload": np.array(
                [WORKLOAD_CODE[r.workload] for r in records], dtype="|i1"
            ),
            "record_id": np.array(
                [
                    NO_RECORD_ID if r.record_id is None else r.record_id
                    for r in records
                ],
                dtype="<i8",
            ),
        }
    )


def records_from_batch(batch: ColumnBatch) -> Iterator[FailureRecord]:
    """Decode a full-schema batch back into records (order preserved).

    The exact inverse of :func:`batch_from_records`: timestamps are
    IEEE-754 doubles end to end, so every decoded float is
    ``repr``-identical to the encoded one.
    """
    starts = batch["start_time"]
    ends = batch["end_time"]
    system_ids = batch["system_id"]
    node_ids = batch["node_id"]
    causes = batch["root_cause"]
    details = batch["low_level_cause"]
    workloads = batch["workload"]
    record_ids = batch["record_id"]
    for i in range(len(batch)):
        detail = int(details[i])
        record_id = int(record_ids[i])
        yield FailureRecord(
            start_time=starts[i],
            end_time=ends[i],
            system_id=system_ids[i],
            node_id=node_ids[i],
            root_cause=CAUSE_VOCAB[causes[i]],
            low_level_cause=DETAIL_VOCAB[detail] if detail >= 0 else None,
            workload=WORKLOAD_VOCAB[workloads[i]],
            record_id=None if record_id == NO_RECORD_ID else record_id,
        )
