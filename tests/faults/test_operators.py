"""Unit tests for corruption operators and the seeded injector."""

import random

import pytest

from repro.faults import (
    ALL_OPERATORS,
    DEFAULT_OPERATORS,
    ClockSkewer,
    CorruptionInjector,
    EnumUnknowner,
    FieldDropper,
    FieldGarbler,
    NegativeDurationer,
    RowDuplicator,
    RowShuffler,
    RowTruncator,
    UnknownNoder,
    UnknownSystemer,
)

HEADER = "record_id,system_id,node_id,start_time,end_time,workload,root_cause,low_level_cause"
COLUMNS = {name: index for index, name in enumerate(HEADER.split(","))}
ROW = "7,20,3,150000000.0,150003600.0,compute,hardware,memory"


def apply_op(operator, seed=0, row=ROW):
    rng = random.Random(seed)
    return operator.apply(row.split(","), dict(COLUMNS), rng)


class TestRowOperators:
    def test_field_dropper_blanks_a_required_field(self):
        (line,) = apply_op(FieldDropper())
        fields = line.split(",")
        assert len(fields) == len(COLUMNS)
        blanked = [
            name
            for name in ("system_id", "node_id", "start_time", "end_time")
            if fields[COLUMNS[name]] == ""
        ]
        assert len(blanked) == 1

    def test_field_garbler_is_unparseable(self):
        (line,) = apply_op(FieldGarbler())
        fields = line.split(",")
        garbage = [value for value in fields if value in FieldGarbler.GARBAGE]
        assert len(garbage) == 1

    def test_enum_unknowner_changes_vocabulary(self):
        (line,) = apply_op(EnumUnknowner())
        fields = line.split(",")
        touched = {
            name: fields[COLUMNS[name]]
            for name in ("workload", "root_cause")
            if fields[COLUMNS[name]] != ROW.split(",")[COLUMNS[name]]
        }
        assert len(touched) == 1
        assert set(touched.values()) <= set(EnumUnknowner.VALUES)

    def test_clock_skewer_shifts_both_times(self):
        operator = ClockSkewer(skew_seconds=1000.0)
        (line,) = apply_op(operator)
        fields = line.split(",")
        assert float(fields[COLUMNS["start_time"]]) == 150001000.0
        assert float(fields[COLUMNS["end_time"]]) == 150004600.0

    def test_negative_durationer_inverts_interval(self):
        (line,) = apply_op(NegativeDurationer())
        fields = line.split(",")
        assert float(fields[COLUMNS["end_time"]]) < float(
            fields[COLUMNS["start_time"]]
        )

    def test_negative_durationer_handles_zero_duration(self):
        row = "7,20,3,150000000.0,150000000.0,compute,hardware,memory"
        (line,) = apply_op(NegativeDurationer(), row=row)
        fields = line.split(",")
        assert float(fields[COLUMNS["end_time"]]) < 150000000.0

    def test_row_duplicator_keeps_original(self):
        lines = apply_op(RowDuplicator())
        assert lines == [ROW, ROW]
        assert RowDuplicator.keeps_original is True

    def test_row_truncator_loses_end_time(self):
        (line,) = apply_op(RowTruncator())
        fields = line.split(",")
        assert len(fields) < len(COLUMNS)
        # The partial timestamp is not the original value.
        assert fields[-1] != ROW.split(",")[COLUMNS["start_time"]]

    def test_unknown_systemer_and_noder(self):
        (line,) = apply_op(UnknownSystemer(99))
        assert line.split(",")[COLUMNS["system_id"]] == "99"
        (line,) = apply_op(UnknownNoder(10**6))
        assert line.split(",")[COLUMNS["node_id"]] == str(10**6)

    def test_row_shuffler_permutes_without_loss(self):
        lines = [f"{i},20,1,1.5e8,1.6e8,compute,unknown," for i in range(50)]
        shuffled = RowShuffler().apply_body(list(lines), random.Random(3))
        assert shuffled != lines
        assert sorted(shuffled) == sorted(lines)
        assert RowShuffler.damages_row is False

    def test_operator_registries(self):
        assert all(op.damages_row for op in DEFAULT_OPERATORS)
        assert len(ALL_OPERATORS) == len(DEFAULT_OPERATORS) + 1


def sample_csv(n_rows=40):
    lines = [HEADER]
    for i in range(n_rows):
        start = 150000000.0 + 1000.0 * i
        lines.append(f"{i},20,{i % 10},{start!r},{start + 600.0!r},compute,hardware,memory")
    return "\n".join(lines) + "\n"


class TestInjector:
    def test_same_seed_is_byte_identical(self):
        text = sample_csv()
        first = CorruptionInjector(seed=11, rate=0.2).corrupt_text(text)
        second = CorruptionInjector(seed=11, rate=0.2).corrupt_text(text)
        assert first.text == second.text
        assert first.corrupted_rows == second.corrupted_rows

    def test_different_seeds_differ(self):
        text = sample_csv()
        first = CorruptionInjector(seed=1, rate=0.2).corrupt_text(text)
        second = CorruptionInjector(seed=2, rate=0.2).corrupt_text(text)
        assert first.text != second.text

    def test_manifest_accounting(self):
        result = CorruptionInjector(seed=0, rate=0.25).corrupt_text(sample_csv(40))
        assert result.n_rows == 40
        assert result.n_corrupted == 10
        assert sum(result.operator_counts.values()) == 10
        assert all(0 <= index < 40 for index in result.corrupted_rows)

    def test_rate_one_touches_every_row(self):
        result = CorruptionInjector(seed=0, rate=1.0).corrupt_text(sample_csv(15))
        assert result.n_corrupted == 15

    def test_low_rate_damages_at_least_one_row(self):
        result = CorruptionInjector(seed=0, rate=0.001).corrupt_text(sample_csv(10))
        assert result.n_corrupted == 1

    def test_header_is_preserved(self):
        result = CorruptionInjector(seed=0, rate=0.5).corrupt_text(sample_csv())
        assert result.text.splitlines()[0] == HEADER

    def test_shuffler_marks_result(self):
        result = CorruptionInjector(
            seed=0, rate=0.0, operators=[RowShuffler()]
        ).corrupt_text(sample_csv())
        assert result.shuffled
        assert result.n_corrupted == 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            CorruptionInjector(rate=1.5)

    def test_corrupt_file_gz(self, tmp_path):
        import gzip

        src = tmp_path / "clean.csv.gz"
        dst = tmp_path / "dirty.csv.gz"
        with gzip.open(src, "wt") as handle:
            handle.write(sample_csv())
        result = CorruptionInjector(seed=4, rate=0.1).corrupt_file(src, dst)
        with gzip.open(dst, "rt") as handle:
            assert handle.read() == result.text
