"""Deterministic, hierarchical random-number streams.

Reproducibility is a first-class requirement for the toolkit: the same
seed must yield the same synthetic trace on every platform and Python
version, and generating system 7's trace must not change system 8's.
To get both properties we derive *independent* child streams from a root
seed by hashing a path of string labels with SHA-256, and feed the
result into :class:`numpy.random.Generator` (PCG64).

Example
-------
>>> root = RngStream(seed=42)
>>> sys7 = root.child("system", "7")
>>> sys8 = root.child("system", "8")
>>> a = sys7.generator.random()
>>> b = sys8.generator.random()
>>> a != b
True
>>> RngStream(seed=42).child("system", "7").generator.random() == a
True
"""

from __future__ import annotations

import hashlib
from typing import Tuple

import numpy as np

__all__ = ["derive_seed", "RngStream"]

_HASH_BYTES = 8  # 64-bit derived seeds


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a 64-bit seed from ``root_seed`` and a label path.

    The derivation is a SHA-256 hash of the decimal root seed and the
    labels joined with ``/``; it is stable across processes, platforms
    and Python versions (unlike the built-in ``hash``).

    Parameters
    ----------
    root_seed:
        Any non-negative integer.
    labels:
        Path of string labels naming the child stream, e.g.
        ``("system", "20", "node", "22", "arrivals")``.

    Returns
    -------
    int
        A seed in ``[0, 2**64)``.
    """
    if root_seed < 0:
        raise ValueError(f"root_seed must be non-negative, got {root_seed}")
    material = str(root_seed) + "\x00" + "/".join(labels)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:_HASH_BYTES], "big")


class RngStream:
    """A named, reproducible random stream with derivable children.

    The stream's effective seed is a pure function of ``(root seed,
    label path)``, so ``root.child("a").child("b")`` and
    ``root.child("a", "b")`` are the same stream.

    Parameters
    ----------
    seed:
        Root seed.
    path:
        Label path of this stream relative to the root.
    """

    def __init__(self, seed: int, path: Tuple[str, ...] = ()) -> None:
        self._root_seed = int(seed)
        self._path = tuple(path)
        self._generator: np.random.Generator | None = None

    @property
    def seed(self) -> int:
        """The effective seed: the root seed hashed with the path."""
        if not self._path:
            return self._root_seed
        return derive_seed(self._root_seed, *self._path)

    @property
    def path(self) -> Tuple[str, ...]:
        """Label path from the root stream."""
        return self._path

    @property
    def generator(self) -> np.random.Generator:
        """The lazily created :class:`numpy.random.Generator` (PCG64)."""
        if self._generator is None:
            self._generator = np.random.Generator(np.random.PCG64(self.seed))
        return self._generator

    def child(self, *labels: str) -> "RngStream":
        """Return an independent child stream for the given label path.

        Calling ``child`` twice with the same labels returns streams with
        identical seeds (but independent generator state), so callers can
        re-derive a stream instead of threading it through APIs.
        """
        if not labels:
            raise ValueError("child() requires at least one label")
        return RngStream(self._root_seed, self._path + tuple(labels))

    def spawn_generator(self, *labels: str) -> np.random.Generator:
        """A fresh generator for the child stream at ``labels``.

        Unlike ``child(...).generator`` — which caches the generator on
        the child stream object — every call returns a *new* generator
        starting from the stream's initial state.  This is the primitive
        behind the trace generator's determinism contract: any process
        (or worker) holding ``(root seed, label path)`` can reconstruct
        the exact variate sequence of a stream, which is what makes
        ``workers=N`` output identical to serial output.
        """
        path = self._path + tuple(labels)
        seed = self._root_seed if not path else derive_seed(self._root_seed, *path)
        return np.random.Generator(np.random.PCG64(seed))

    # Convenience passthroughs -------------------------------------------------

    def random(self) -> float:
        """A single uniform sample in [0, 1)."""
        return float(self.generator.random())

    def uniform(self, low: float, high: float) -> float:
        """A single uniform sample in [low, high)."""
        return float(self.generator.uniform(low, high))

    def exponential(self, scale: float) -> float:
        """A single exponential sample with the given scale (mean)."""
        return float(self.generator.exponential(scale))

    def weibull(self, shape: float, scale: float) -> float:
        """A single Weibull sample with the given shape and scale."""
        return float(scale * self.generator.weibull(shape))

    def lognormal(self, mu: float, sigma: float) -> float:
        """A single lognormal sample with log-mean mu and log-std sigma."""
        return float(self.generator.lognormal(mu, sigma))

    def choice_index(self, probabilities: "np.ndarray") -> int:
        """Sample an index according to a probability vector."""
        return int(self.generator.choice(len(probabilities), p=probabilities))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        path = "/".join(self._path) or "<root>"
        return f"RngStream(path={path!r}, seed={self.seed})"
