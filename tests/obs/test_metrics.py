"""Metrics registry: counters, gauges, deterministic histograms."""

from __future__ import annotations

import pytest

from repro.obs.metrics import BUCKET_EDGES, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("rows").add(3)
        registry.counter("rows").add()
        assert registry.counter("rows").value == 4

    def test_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("rows").add(-1)


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers")
        assert gauge.to_value() is None
        gauge.set(4)
        gauge.set(2)
        assert gauge.to_value() == 2


class TestHistogram:
    def test_moments_and_buckets(self):
        histogram = Histogram("wall")
        for value in (0.001, 0.002, 5.0, 1e12):
            histogram.observe(value)
        value = histogram.to_value()
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(5.003 + 1e12)
        assert value["min"] == 0.001
        assert value["max"] == 1e12
        assert sum(value["buckets"].values()) == 4

    def test_underflow_and_overflow(self):
        histogram = Histogram("wall")
        histogram.observe(0.0)       # below the table
        histogram.observe(-3.0)      # below the table
        histogram.observe(1e10)      # above the table
        buckets = histogram.to_value()["buckets"]
        labels = list(buckets)
        assert any(label.startswith("..") for label in labels)
        assert any(label.endswith("..") for label in labels)
        assert sum(buckets.values()) == 3

    def test_bucket_table_is_fixed_log_scale(self):
        # 4 buckets per decade over [1e-6, 1e9): data-independent,
        # which is what makes histogram output deterministic.
        assert BUCKET_EDGES[0] == pytest.approx(1e-6)
        assert BUCKET_EDGES[-1] == pytest.approx(1e9)
        ratios = [
            BUCKET_EDGES[i + 1] / BUCKET_EDGES[i]
            for i in range(len(BUCKET_EDGES) - 1)
        ]
        assert all(ratio == pytest.approx(10 ** 0.25) for ratio in ratios)

    def test_identical_observations_identical_output(self):
        first, second = Histogram("a"), Histogram("a")
        for histogram in (first, second):
            for value in (0.5, 2.0, 300.0, 0.5):
                histogram.observe(value)
        assert first.to_value() == second.to_value()


class TestRegistry:
    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a Counter"):
            registry.gauge("x")

    def test_iteration_and_events_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z.last").add(1)
        registry.gauge("a.first").set(2)
        registry.histogram("m.middle").observe(1.0)
        names = [event["name"] for event in registry.to_events()]
        assert names == sorted(names) == ["a.first", "m.middle", "z.last"]
        kinds = [event["kind"] for event in registry.to_events()]
        assert kinds == ["gauge", "histogram", "counter"]

    def test_to_dict_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("rows").add(10)
        registry.gauge("workers").set(2)
        payload = registry.to_dict()
        assert payload["counter"] == {"rows": 10}
        assert payload["gauge"] == {"workers": 2}

    def test_describe_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("rows").add(10)
        registry.histogram("wall").observe(0.5)
        assert registry.describe() == registry.describe()
        assert "rows (counter): 10" in registry.describe()

    def test_empty_registry_describes_cleanly(self):
        assert "none recorded" in MetricsRegistry().describe()
        assert len(MetricsRegistry()) == 0
