"""EASY backfilling on top of the scheduler simulation.

The base :class:`~repro.sched.simulator.SchedulerSimulation` is strict
FCFS: the queue head blocks everything behind it.  Real HPC schedulers
backfill — EASY backfilling gives the queue head a *reservation* (the
earliest time enough nodes will be free, assuming running jobs hold
their nodes to completion) and lets a later job jump ahead if it can
start now without delaying that reservation.

The selection rules are pure functions (:func:`earliest_start`,
:func:`pick_backfill_job`) so they can be tested on constructed
scenarios; :class:`BackfillSchedulerSimulation` plugs them into the
event loop via the base class's ``_select_next`` hook.  Failures are
not anticipated when reserving — like production schedulers, which
plan with requested walltimes, not failure forecasts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sched.jobs import Job
from repro.sched.simulator import SchedulerSimulation

__all__ = ["earliest_start", "pick_backfill_job", "BackfillSchedulerSimulation"]


def earliest_start(
    needed: int,
    free_now: int,
    running_releases: Sequence[Tuple[float, int]],
    now: float,
) -> float:
    """Earliest time ``needed`` nodes are free, barring failures.

    Parameters
    ----------
    needed:
        Node count requested by the queue head.
    free_now:
        Nodes free at ``now``.
    running_releases:
        (completion time, node count) for each running job.
    now:
        Current time.

    Raises
    ------
    ValueError
        If the machine can never free enough nodes (the job is larger
        than the cluster).
    """
    if needed <= free_now:
        return now
    available = free_now
    for release_time, nodes in sorted(running_releases):
        available += nodes
        if available >= needed:
            return release_time
    raise ValueError(
        f"head needs {needed} nodes but the machine only ever frees {available}"
    )


def pick_backfill_job(
    queue: Sequence[Job],
    free_now: int,
    reservation_time: float,
    reserved_nodes: int,
    now: float,
) -> Optional[int]:
    """Index of the first job (after the head) that can backfill.

    EASY rule: a job may start now iff it fits in the free nodes AND
    either (a) it finishes before the head's reservation, or (b) even
    after taking its nodes there is still room for the head
    (``free_now - job.nodes >= reserved_nodes``).
    """
    for index in range(1, len(queue)):
        job = queue[index]
        if job.nodes > free_now:
            continue
        finishes_before = now + job.duration <= reservation_time
        leaves_reservation = free_now - job.nodes >= reserved_nodes
        if finishes_before or leaves_reservation:
            return index
    return None


class BackfillSchedulerSimulation(SchedulerSimulation):
    """EASY-backfilling variant of the scheduler simulation."""

    def _select_next(
        self,
        queue: List[Job],
        free_count: int,
        running_releases: List[Tuple[float, int]],
        now: float,
    ) -> Optional[int]:
        if not queue:
            return None
        if queue[0].nodes <= free_count:
            return 0
        try:
            reservation = earliest_start(
                queue[0].nodes, free_count, running_releases, now
            )
        except ValueError:
            # The head can never run; skip past it so the rest of the
            # workload is not wedged forever.
            return 1 if len(queue) > 1 and queue[1].nodes <= free_count else None
        return pick_backfill_job(queue, free_count, reservation, queue[0].nodes, now)
