"""The trace generator: orchestrates all synthetic components.

:class:`TraceGenerator` produces a :class:`~repro.records.trace.FailureTrace`
for any subset of the 22 LANL systems.  Generation is deterministic in
the seed and *compositional*: each (system, node) derives its own RNG
stream, so generating system 20 alone yields exactly the same records
for system 20 as generating the full trace — and generating systems in
parallel worker processes yields exactly the same trace as generating
them serially.

Pipeline per system:

1. expand Table 1 categories into nodes with production windows,
2. assign workloads (graphics / front-end / compute) and per-node rate
   multipliers,
3. sample each node's failure times from a modulated Weibull renewal
   process (lifecycle x weekly modulation via time rescaling),
4. draw root causes (age-dependent unknown era for types D/G) and
   repair durations,
5. inject correlated bursts for the early NUMA era,
6. sort, stamp record IDs, wrap in a FailureTrace.

Engines and the RNG-stream contract
-----------------------------------
Two engines share this pipeline: ``"vectorized"`` (the default; batched
NumPy hot path) and ``"scalar"`` (the per-event reference loop).  Each
(system, node) consumes two dedicated streams:

* ``("system", s, "node", n, "arrivals")`` — one equilibrium uniform,
  then Weibull interarrivals.  The vectorized engine over-draws past
  the window capacity, so this stream is never reused for anything
  else.
* ``("system", s, "node", n, "marks")`` — fixed block order:
  ``u_cause``, ``u_lost``, ``u_detail``, ``u_tail``, ``z`` (one array
  each, sized by the node's event count).  Untouched when the node has
  no failures.

System-level streams (``jitter``, ``bursts``) and the per-node rate
multiplier stream are unchanged from the per-record pipeline.  Because
every stream's seed is a pure function of (root seed, label path), the
engines — and serial vs. parallel execution — produce bit-identical
records.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.records.inventory import DATA_END, DATA_START, LANL_SYSTEMS
from repro.records.record import FailureRecord, Workload
from repro.records.system import SystemConfig
from repro.records.timeutils import (
    SECONDS_PER_MONTH,
    SECONDS_PER_WEEK,
    SECONDS_PER_YEAR,
)
from repro.records.trace import FailureTrace
from repro.simulate.rng import RngStream
from repro.synth.arrivals import (
    ArrivalGrid,
    ModulatedWeibullArrivals,
    build_arrival_grid,
    invert_operational,
    week_grid,
)
from repro.synth.config import ENGINES, GeneratorConfig
from repro.synth.correlated import inject_bursts
from repro.synth.diurnal import WeeklyProfile
from repro.synth.jitter import MonthlyJitter
from repro.synth.lifecycle import lifecycle_levels, lifecycle_shape_for
from repro.synth.nodes import (
    assign_workload,
    node_rate_multipliers,
    workload_multiplier,
)
from repro.synth.repair import RepairModel
from repro.synth.rootcause import CauseModel

__all__ = ["TraceGenerator"]


@dataclass
class _SystemColumns:
    """One system's failures in columnar form (pre-record objects).

    The hot path works on arrays; :class:`FailureRecord` objects are
    only materialized lazily at emission time, which is what bounds
    memory for scaled-inventory runs.
    """

    system_id: int
    start: np.ndarray       # float64, node-major order
    end: np.ndarray         # float64
    node_id: np.ndarray     # int64
    cause: np.ndarray       # object (RootCause)
    detail: np.ndarray      # object (LowLevelCause or None)
    workload: np.ndarray    # object (Workload)

    def __len__(self) -> int:
        return len(self.start)


def _empty_columns(system_id: int) -> _SystemColumns:
    return _SystemColumns(
        system_id=system_id,
        start=np.empty(0),
        end=np.empty(0),
        node_id=np.empty(0, dtype=np.int64),
        cause=np.empty(0, dtype=object),
        detail=np.empty(0, dtype=object),
        workload=np.empty(0, dtype=object),
    )


def _records_from_columns(columns: _SystemColumns) -> List[FailureRecord]:
    """Materialize a system's columns as (un-numbered) records."""
    # FailureRecord.__post_init__ coerces numeric fields, so NumPy
    # scalars can be passed straight through.
    return [
        FailureRecord(
            start_time=columns.start[i],
            end_time=columns.end[i],
            system_id=columns.system_id,
            node_id=columns.node_id[i],
            root_cause=columns.cause[i],
            low_level_cause=columns.detail[i],
            workload=columns.workload[i],
        )
        for i in range(len(columns))
    ]


def _columns_from_records(
    system_id: int, records: Sequence[FailureRecord]
) -> _SystemColumns:
    """Inverse of :func:`_records_from_columns` (burst adapter)."""
    if not records:
        return _empty_columns(system_id)
    return _SystemColumns(
        system_id=system_id,
        start=np.array([r.start_time for r in records]),
        end=np.array([r.end_time for r in records]),
        node_id=np.array([r.node_id for r in records], dtype=np.int64),
        cause=np.array([r.root_cause for r in records], dtype=object),
        detail=np.array([r.low_level_cause for r in records], dtype=object),
        workload=np.array([r.workload for r in records], dtype=object),
    )


def _system_columns_task(payload: Tuple) -> _SystemColumns:
    """Worker entry point for ``workers > 1`` (module-level: picklable).

    Rebuilds the generator from its defining state; determinism comes
    from the (seed, label path) stream derivation, so the rebuilt
    generator's output is identical to the parent's.
    """
    seed, config, systems, data_start, data_end, system_id, engine = payload
    generator = TraceGenerator(
        seed=seed,
        config=config,
        systems=systems,
        data_start=data_start,
        data_end=data_end,
    )
    return generator._system_columns(system_id, engine)


class TraceGenerator:
    """Generate a synthetic LANL failure trace.

    Parameters
    ----------
    seed:
        Root seed; the trace is a deterministic function of it (plus
        the configuration).
    config:
        Calibration knobs; defaults reproduce the paper.
    systems:
        Inventory to generate for; defaults to all 22 LANL systems.
    data_start / data_end:
        Observation window; defaults to the LANL data window.

    Example
    -------
    >>> trace = TraceGenerator(seed=1).generate([2])
    >>> 0 < len(trace) < 400   # system 2 averages ~17.6 failures/year
    True
    """

    def __init__(
        self,
        seed: int = 0,
        config: Optional[GeneratorConfig] = None,
        systems: Optional[Dict[int, SystemConfig]] = None,
        data_start: float = DATA_START,
        data_end: float = DATA_END,
    ) -> None:
        self.seed = int(seed)
        self.config = config if config is not None else GeneratorConfig()
        self.systems = dict(systems if systems is not None else LANL_SYSTEMS)
        self.data_start = float(data_start)
        self.data_end = float(data_end)
        self._root = RngStream(seed)
        self._profile = WeeklyProfile(
            amplitude=self.config.diurnal_amplitude,
            peak_hour=self.config.diurnal_peak_hour,
            weekend_factor=self.config.weekend_factor,
            enabled=self.config.diurnal_enabled,
        )
        self._repair_model = RepairModel(self.config)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def generate(
        self,
        system_ids: Optional[Sequence[int]] = None,
        *,
        workers: int = 1,
        engine: Optional[str] = None,
    ) -> FailureTrace:
        """Generate the trace for the given systems (default: all).

        Parameters
        ----------
        workers:
            Number of worker processes for per-system generation; 1
            (default) runs in-process.  Output is identical for any
            worker count.
        engine:
            Override the config's ``default_engine`` ("vectorized" or
            "scalar"); both produce identical traces.
        """
        records = list(
            self.iter_records(system_ids, workers=workers, engine=engine)
        )
        return FailureTrace(
            records,
            systems=self.systems,
            data_start=self.data_start,
            data_end=self.data_end,
        )

    def iter_records(
        self,
        system_ids: Optional[Sequence[int]] = None,
        *,
        workers: int = 1,
        engine: Optional[str] = None,
    ) -> Iterator[FailureRecord]:
        """Yield the trace's records in final order, lazily.

        Record objects are built one at a time from the columnar
        intermediate, so peak memory is the (numeric) columns plus one
        record — the streaming path for scaled-inventory runs where
        materializing millions of record objects would dominate memory.
        Ordering and record IDs match :meth:`generate` exactly.
        """
        if system_ids is None:
            system_ids = sorted(self.systems.keys())
        engine = self._resolve_engine(engine)
        columns = self._all_columns(list(system_ids), workers, engine)
        columns = [c for c in columns if len(c)]
        if not columns:
            return
        starts = np.concatenate([c.start for c in columns])
        ends = np.concatenate([c.end for c in columns])
        node_ids = np.concatenate([c.node_id for c in columns])
        causes = np.concatenate([c.cause for c in columns])
        details = np.concatenate([c.detail for c in columns])
        workloads = np.concatenate([c.workload for c in columns])
        sys_ids = np.concatenate(
            [np.full(len(c), c.system_id, dtype=np.int64) for c in columns]
        )
        # Stable sort by (start, system, node) — identical to the
        # record-object sort the per-record pipeline used.
        order = np.lexsort((node_ids, sys_ids, starts))
        # __post_init__ coerces the NumPy scalars to Python floats/ints.
        for record_id, i in enumerate(order):
            yield FailureRecord(
                start_time=starts[i],
                end_time=ends[i],
                system_id=sys_ids[i],
                node_id=node_ids[i],
                root_cause=causes[i],
                low_level_cause=details[i],
                workload=workloads[i],
                record_id=record_id,
            )

    def generate_system(
        self, system_id: int, engine: Optional[str] = None
    ) -> List[FailureRecord]:
        """Generate (unsorted, un-numbered) records for one system."""
        engine = self._resolve_engine(engine)
        return _records_from_columns(self._system_columns(system_id, engine))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve_engine(self, engine: Optional[str]) -> str:
        engine = engine if engine is not None else self.config.default_engine
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        return engine

    def _all_columns(
        self, system_ids: List[int], workers: int, engine: str
    ) -> List[_SystemColumns]:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers == 1 or len(system_ids) <= 1:
            return [self._system_columns(sid, engine) for sid in system_ids]
        payloads = [
            (
                self.seed,
                self.config,
                self.systems,
                self.data_start,
                self.data_end,
                system_id,
                engine,
            )
            for system_id in system_ids
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_system_columns_task, payloads))

    def _system_columns(self, system_id: int, engine: str) -> _SystemColumns:
        """Generate one system's failures in columnar, node-major form."""
        system = self.systems[system_id]
        config = self.config
        hardware_type = system.hardware_type
        nodes = system.expand_nodes(self.data_start, self.data_end)
        system_start, system_end = system.production_window(
            self.data_start, self.data_end
        )
        shape = lifecycle_shape_for(
            hardware_type,
            system_id,
            ramp_types=config.ramp_types,
            ramp_exempt_systems=config.ramp_exempt_systems,
        )
        cause_model = CauseModel(config, hardware_type)
        repair_sampler = self._repair_model.batch_sampler(
            cause_model.causes, hardware_type
        )
        n_months = int((system_end - system_start) // SECONDS_PER_MONTH) + 2
        jitter = MonthlyJitter(
            self._root.child("system", str(system_id), "jitter"),
            n_months=n_months,
            shape=shape,
            sigma_early_ramp=config.jitter_sigma_early_ramp,
            sigma_early_decay=config.jitter_sigma_early_decay,
            sigma_late=config.jitter_sigma_late,
            era_months=config.jitter_era_months,
            enabled=config.jitter_enabled,
        )
        rate_per_proc_second = (
            config.rate_per_proc_year[hardware_type]
            * config.early_system_boost.get(system_id, 1.0)
            / SECONDS_PER_YEAR
        )
        workloads: Dict[int, Workload] = {
            node.node_id: assign_workload(system, node.node_id) for node in nodes
        }
        multipliers = node_rate_multipliers(
            system_id, len(nodes), self._root, config.node_sigma
        )
        # Weekly capacity grids, cached per production window (nodes of
        # one Table 1 category share their window, so a system needs
        # only a handful of distinct grids).
        grid_cache: Dict[Tuple[float, float], ArrivalGrid] = {}

        def node_grid(node_start: float, node_end: float) -> ArrivalGrid:
            key = (node_start, node_end)
            grid = grid_cache.get(key)
            if grid is None:
                mids = week_grid(node_start, node_end) + 0.5 * SECONDS_PER_WEEK
                # Lifecycle age is measured from *system* production
                # start: a node added later joins a matured system.
                ages = np.maximum(0.0, mids - node_start) + (
                    node_start - system_start
                )
                levels = lifecycle_levels(shape, ages) * jitter.at_ages(ages)
                grid = build_arrival_grid(
                    self._profile, node_start, node_end, levels
                )
                grid_cache[key] = grid
            return grid

        sys_label = str(system_id)

        def node_base_rate(position: int, node) -> float:
            multiplier = float(multipliers[position])
            multiplier *= workload_multiplier(
                workloads[node.node_id],
                graphics_multiplier=config.graphics_multiplier,
                frontend_multiplier=config.frontend_multiplier,
            )
            return rate_per_proc_second * node.procs * multiplier

        # --- Arrival stage: (node, starts) pairs in node order --------
        node_starts: List[Tuple[object, np.ndarray]] = []
        if engine == "vectorized":
            # Draw per node (each node owns its arrival stream), but
            # defer the time-rescaling inversion so all nodes sharing a
            # grid — a whole Table 1 category — invert in one call.
            pending: List[Tuple[object, np.ndarray, ArrivalGrid]] = []
            for position, node in enumerate(nodes):
                sampler = ModulatedWeibullArrivals(
                    base_rate=node_base_rate(position, node),
                    shape=config.tbf_shape,
                    profile=self._profile,
                    start=node.production_start,
                    end=node.production_end,
                    grid=node_grid(node.production_start, node.production_end),
                )
                totals = sampler.sample_operational_totals(
                    self._root.spawn_generator(
                        "system", sys_label, "node", str(node.node_id), "arrivals"
                    )
                )
                if totals.size:
                    pending.append((node, totals, sampler._grid))
            groups: Dict[int, List[int]] = {}
            for i, (_node, _totals, grid) in enumerate(pending):
                groups.setdefault(id(grid), []).append(i)
            starts_for: Dict[int, np.ndarray] = {}
            for members in groups.values():
                grid = pending[members[0]][2]
                merged = np.concatenate([pending[i][1] for i in members])
                times = invert_operational(grid, self._profile, merged)
                offset = 0
                for i in members:
                    node, totals, _grid = pending[i]
                    segment = times[offset : offset + len(totals)]
                    offset += len(totals)
                    starts_for[i] = segment[segment < node.production_end]
            for i, (node, _totals, _grid) in enumerate(pending):
                starts = starts_for[i]
                if starts.size:
                    node_starts.append((node, starts))
        else:
            for position, node in enumerate(nodes):
                sampler = ModulatedWeibullArrivals(
                    base_rate=node_base_rate(position, node),
                    shape=config.tbf_shape,
                    profile=self._profile,
                    start=node.production_start,
                    end=node.production_end,
                    grid=node_grid(node.production_start, node.production_end),
                )
                starts = np.asarray(
                    sampler.sample(
                        self._root.spawn_generator(
                            "system",
                            sys_label,
                            "node",
                            str(node.node_id),
                            "arrivals",
                        )
                    )
                )
                if starts.size:
                    node_starts.append((node, starts))

        # --- Mark stage: per-node block draws, system-level resolve --
        parts_start: List[np.ndarray] = []
        parts_node: List[np.ndarray] = []
        parts_workload: List[np.ndarray] = []
        marks_u_cause: List[np.ndarray] = []
        marks_u_lost: List[np.ndarray] = []
        marks_u_detail: List[np.ndarray] = []
        marks_u_tail: List[np.ndarray] = []
        marks_z: List[np.ndarray] = []
        for node, starts in node_starts:
            n_events = len(starts)
            marks_generator = self._root.spawn_generator(
                "system", sys_label, "node", str(node.node_id), "marks"
            )
            marks_u_cause.append(marks_generator.random(n_events))
            marks_u_lost.append(marks_generator.random(n_events))
            marks_u_detail.append(marks_generator.random(n_events))
            marks_u_tail.append(marks_generator.random(n_events))
            marks_z.append(marks_generator.standard_normal(n_events))
            parts_start.append(starts)
            parts_node.append(np.full(n_events, node.node_id, dtype=np.int64))
            parts_workload.append(
                np.full(n_events, workloads[node.node_id], dtype=object)
            )
        if not parts_start:
            columns = _empty_columns(system_id)
        else:
            starts_all = np.concatenate(parts_start)
            u_cause = np.concatenate(marks_u_cause)
            u_lost = np.concatenate(marks_u_lost)
            u_detail = np.concatenate(marks_u_detail)
            u_tail = np.concatenate(marks_u_tail)
            z = np.concatenate(marks_z)
            ages = starts_all - system_start
            if engine == "vectorized":
                cause_idx, detail_idx = cause_model.resolve_batch(
                    u_cause, u_lost, u_detail, ages
                )
                repairs = repair_sampler.resolve_seconds(u_tail, z, cause_idx)
            else:
                cause_idx, detail_idx = cause_model.resolve_batch_scalar(
                    u_cause, u_lost, u_detail, ages
                )
                repairs = repair_sampler.resolve_seconds_scalar(
                    u_tail, z, cause_idx
                )
            columns = _SystemColumns(
                system_id=system_id,
                start=starts_all,
                end=starts_all + repairs,
                node_id=np.concatenate(parts_node),
                cause=cause_model.resolve_causes(cause_idx),
                detail=cause_model.resolve_details(cause_idx, detail_idx),
                workload=np.concatenate(parts_workload),
            )
        if config.bursts_enabled and system_id in config.burst_systems:
            burst_stream = self._root.child("system", sys_label, "bursts")
            records = inject_bursts(
                _records_from_columns(columns),
                nodes,
                workloads,
                system_start,
                hardware_type,
                config,
                self._repair_model,
                burst_stream.generator,
            )
            columns = _columns_from_records(system_id, records)
        return columns
