"""Crash-safe artifact writes: tmp file + fsync + ``os.replace``.

Every artifact the toolkit emits — trace CSV/JSONL files, benchmark
reports, golden fixtures, run reports, shard payloads — goes through
these helpers, so an interrupt (SIGKILL, power loss, full disk) leaves
either the previous complete file or the new complete file, never a
truncated hybrid.  The recipe is the classic POSIX one:

1. write to a uniquely-named temporary file *in the target directory*
   (same filesystem, so the final rename cannot degrade to a copy),
2. flush and ``fsync`` the temporary file,
3. ``os.replace`` it over the target (atomic on POSIX and Windows),
4. best-effort ``fsync`` the directory so the rename itself is durable.

A ``.gz`` target suffix writes gzip-compressed text, mirroring
:func:`repro.io.common.open_text`.

Failure semantics (drilled by ``repro chaos campaign`` through the
:mod:`repro.faults.fsfaults` shim): on *any* error — a failed body
write, ENOSPC on flush/close, a failed fsync — the staged temporary
file is removed and the original target is left untouched, and a
secondary error from the cleanup itself (closing a handle whose buffer
cannot flush, unlinking on a sick filesystem) never masks the original
error.
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Optional, Union

__all__ = [
    "atomic_open_text",
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_write_json",
    "fs_fault_hook",
]

PathLike = Union[str, Path]

# Mirrors repro.faults.fsfaults.FS_FAULTS_ENV_VAR.  Duplicated as a
# plain constant so the disabled fast path is one dict lookup with no
# import: repro.faults must not load at repro.io/resilience import time
# (it pulls in the report stack), and tests pin the two constants equal.
_FS_FAULTS_ENV_VAR = "REPRO_FS_FAULTS"


def fs_fault_hook(
    site: str,
    path: PathLike,
    tmp: Optional[PathLike] = None,
    write: Optional[Any] = None,
    data: Optional[Any] = None,
) -> None:
    """Filesystem fault-injection site (no-op unless armed via env).

    The single entry point every instrumented write path calls; see
    :mod:`repro.faults.fsfaults` for the spec format and operators.
    When ``write``/``data`` are given the hook owns performing the
    write, so the torn-write operator can leave a genuine partial
    write behind; otherwise it may raise or sleep before the caller's
    own I/O proceeds.  Imported lazily at fault time only.
    """
    if not os.environ.get(_FS_FAULTS_ENV_VAR):
        if write is not None:
            write(data)
        return
    from repro.faults import fsfaults

    if write is not None:
        fsfaults.fault_write(site, str(path), write, data)
    else:
        fsfaults.maybe_fault(
            site, path=str(path), tmp=str(tmp) if tmp is not None else None
        )


def _fsync_dir(directory: Path) -> None:
    """Durably record a rename; best-effort (not all OSes allow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _unlink_staged(tmp: Path) -> None:
    """Remove a staged temp file during error cleanup.

    Only ``OSError`` from the unlink itself is suppressed — the caller
    re-raises the *original* error immediately after, so a sick
    filesystem (the very thing that likely caused the failure) cannot
    replace the real diagnosis with a cleanup complaint.
    """
    try:
        tmp.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - cleanup on a failing filesystem
        pass


@contextlib.contextmanager
def atomic_open_text(path: PathLike, newline: str = "") -> Iterator[Any]:
    """Context manager yielding a text handle that atomically replaces
    ``path`` on success and leaves it untouched on failure.

    A ``.gz`` suffix writes gzip-compressed text, like
    :func:`repro.io.common.open_text`.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{path.name}.", suffix=".tmp"
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        if path.suffix == ".gz":
            handle = gzip.open(tmp, "wt", newline=newline)
        else:
            handle = open(tmp, "w", newline=newline, encoding="utf-8")
        try:
            yield handle
        except BaseException:
            # The body failed; close without letting a secondary error
            # (flushing buffered data to the same full disk) mask it.
            with contextlib.suppress(Exception):
                handle.close()
            raise
        # A close on the success path is NOT cleanup: it flushes the
        # final buffer, so its errors (ENOSPC) must propagate.
        handle.close()
        fs_fault_hook("atomic.text", path, tmp=tmp)
        # Re-open to fsync the bytes the (possibly gzip-layered) handle
        # wrote; simpler and safer than plumbing raw fds through gzip.
        with open(tmp, "rb") as sync_handle:
            fs_fault_hook("atomic.fsync", path)
            os.fsync(sync_handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(directory)
    except BaseException:
        _unlink_staged(tmp)
        raise


def atomic_write_text(path: PathLike, text: str, newline: str = "") -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_open_text(path, newline=newline) as handle:
        handle.write(text)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (binary; no gzip)."""
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        def write_all(chunk: bytes) -> None:
            # os.write may write fewer bytes than asked (large shard
            # payloads); loop so the temp file is complete before the
            # fsync + rename publish it.
            view = memoryview(chunk)
            while view:
                view = view[os.write(fd, view):]

        try:
            fs_fault_hook("atomic.bytes", path, write=write_all, data=data)
            fs_fault_hook("atomic.fsync", path)
            os.fsync(fd)
        except BaseException:
            with contextlib.suppress(OSError):
                os.close(fd)
            raise
        # Success-path close: errors must propagate, it is not cleanup.
        os.close(fd)
        os.replace(tmp, path)
        _fsync_dir(directory)
    except BaseException:
        _unlink_staged(tmp)
        raise


def atomic_write_json(path: PathLike, payload: Any, indent: int = 2) -> None:
    """Atomically write ``payload`` as stable, diff-friendly JSON."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )
