"""Performance benchmarks for the trace generator and core analyses.

Not a paper artifact — a performance regression guard.  The full
22-system, ~28k-record trace must generate in seconds (it is the
substrate of every other bench), and the hot analyses must stay
interactive.  Engine benches measure the same workload through the
vectorized hot path and the scalar reference loop; their ratio is the
number the ``repro bench`` regression gate tracks.
"""

from repro.analysis.repair import repair_fit_study
from repro.stats.fitting import fit_all
from repro.synth import TraceGenerator


def test_generate_system20(benchmark, bench_seed):
    def generate():
        return TraceGenerator(seed=bench_seed).generate([20])

    trace = benchmark(generate)
    assert len(trace) > 3000


def test_generate_system20_scalar_engine(benchmark, bench_seed):
    def generate():
        return TraceGenerator(seed=bench_seed).generate([20], engine="scalar")

    trace = benchmark(generate)
    assert len(trace) > 3000


def test_generate_small_cluster(benchmark, bench_seed):
    def generate():
        return TraceGenerator(seed=bench_seed).generate([13])

    trace = benchmark(generate)
    assert len(trace) > 100


def test_fit_all_on_repairs(benchmark, trace):
    minutes = trace.repair_minutes()

    def fit():
        return fit_all(minutes, zero_policy="clamp", epsilon=0.1)

    fits = benchmark(fit)
    assert fits[0].name == "lognormal"


def test_repair_fit_study_end_to_end(benchmark, trace):
    fits = benchmark(repair_fit_study, trace)
    assert len(fits) == 4
