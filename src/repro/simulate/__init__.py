"""Discrete-event simulation kernel and deterministic RNG streams.

This subpackage provides the substrate shared by the synthetic trace
generator (:mod:`repro.synth`), the checkpoint/restart simulator
(:mod:`repro.checkpoint`) and the scheduling simulator
(:mod:`repro.sched`):

* :class:`~repro.simulate.rng.RngStream` — hierarchical, reproducible
  random-number streams.  Child streams are derived by hashing a label,
  so independent subsystems never perturb each other's randomness.
* :class:`~repro.simulate.engine.Simulator` — a minimal event-queue
  simulator with a monotonic clock, event scheduling/cancellation and
  run-until semantics.
"""

from repro.simulate.engine import Event, EventQueue, Simulator, SimulationError
from repro.simulate.process import Process, Interrupt
from repro.simulate.rng import RngStream, derive_seed

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "Process",
    "Interrupt",
    "RngStream",
    "derive_seed",
]
