"""Route resolution and query-string normalization."""

from __future__ import annotations

import pytest

from repro.serve import BadRequest, Query, resolve
from repro.serve.router import ROUTES


class TestResolve:
    def test_plain_endpoints(self):
        for path in ("/healthz", "/readyz", "/v1/systems", "/v1/stats"):
            route = resolve("GET", path)
            assert route.name == path
            assert route.query is None

    def test_trailing_slash_normalized(self):
        assert resolve("GET", "/healthz/").name == "/healthz"

    def test_unknown_path_is_key_error(self):
        with pytest.raises(KeyError):
            resolve("GET", "/v2/summary")

    def test_non_get_rejected(self):
        with pytest.raises(BadRequest, match="not allowed"):
            resolve("POST", "/healthz")

    def test_summary_route(self):
        route = resolve("GET", "/v1/summary")
        assert route.query == Query.build(kind="summary")
        assert route.deadline_seconds is None

    def test_analyze_full_query(self):
        route = resolve(
            "GET", "/v1/analyze?system=13&t_min=0.5&t_max=9.5&deadline_ms=250"
        )
        assert route.query == Query.build(
            kind="analyze", systems=[13], t_min=0.5, t_max=9.5
        )
        assert route.deadline_seconds == pytest.approx(0.25)

    def test_systems_repeatable_and_comma_lists(self):
        route = resolve("GET", "/v1/analyze?system=2&systems=13,2&system=7")
        assert route.query.systems == (2, 7, 13)

    def test_system_order_does_not_change_cache_key(self):
        first = resolve("GET", "/v1/analyze?system=2&system=13")
        second = resolve("GET", "/v1/analyze?system=13&system=2")
        assert first.query.key() == second.query.key()

    def test_unknown_parameter_rejected(self):
        with pytest.raises(BadRequest, match="sytem"):
            resolve("GET", "/v1/analyze?sytem=3")
        with pytest.raises(BadRequest, match="unknown parameter"):
            resolve("GET", "/healthz?verbose=1")

    def test_non_numeric_values_rejected(self):
        with pytest.raises(BadRequest, match="t_min"):
            resolve("GET", "/v1/analyze?t_min=abc")
        with pytest.raises(BadRequest, match="integers"):
            resolve("GET", "/v1/analyze?system=one")

    def test_empty_window_rejected(self):
        with pytest.raises(BadRequest, match="empty window"):
            resolve("GET", "/v1/analyze?t_min=5&t_max=5")

    def test_bad_deadline_rejected(self):
        with pytest.raises(BadRequest, match="deadline_ms"):
            resolve("GET", "/v1/summary?deadline_ms=0")
        with pytest.raises(BadRequest, match="deadline_ms"):
            resolve("GET", "/v1/summary?deadline_ms=soon")

    def test_route_table_is_published(self):
        assert "/v1/analyze" in ROUTES
        assert "/v1/report" in ROUTES
        assert len(ROUTES) == 7
