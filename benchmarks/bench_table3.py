"""Table 3: overview of related studies, plus the Section 7 comparison.

Table 3 is literature metadata; the bench renders it and then checks
where this trace's measurements fall relative to the ranges the paper's
related-work section cites — e.g. our Weibull TBF shape (0.7-0.8) above
the 0.2-0.5 other studies report, and our lower human/network fractions.
"""

import datetime as dt

from repro.analysis.interarrival import split_eras, system_interarrivals
from repro.analysis.related import RELATED_STUDIES, literature_ranges
from repro.analysis.rootcause import breakdown_by_hardware_type
from repro.records.record import RootCause
from repro.records.timeutils import from_datetime
from repro.report import render_table3


def test_table3(benchmark, trace):
    text = benchmark(render_table3)
    print("\n" + text)
    assert len(RELATED_STUDIES) == 13
    for study in RELATED_STUDIES:
        assert study.reference.split()[0] in text

    ranges = literature_ranges()
    overall = breakdown_by_hardware_type(trace)["All systems"]

    # Section 7: our hardware fraction exceeds the 10-30% of prior work.
    hardware_fraction = overall.percent(RootCause.HARDWARE) / 100.0
    assert hardware_fraction > ranges["hardware_fraction"][1]
    # Our human and network fractions sit below the literature's ranges
    # (the paper's main difference from prior studies).
    assert overall.percent(RootCause.HUMAN) / 100.0 < ranges["human_fraction"][0]
    assert overall.percent(RootCause.NETWORK) / 100.0 < ranges["network_fraction"][0]

    # Our fitted Weibull shape lands in the paper's 0.7-0.8 band, above
    # the < 0.5 values reported elsewhere.
    late = split_eras(trace.filter_systems([20]), from_datetime(dt.datetime(2000, 1, 1)))[1]
    shape = system_interarrivals(late, 20).weibull_shape
    low, high = ranges["weibull_shape_this_paper"]
    assert low - 0.06 <= shape <= high + 0.06
    assert shape > ranges["weibull_shape_elsewhere"][1]
    print(
        f"\nSection 7 check: weibull shape {shape:.2f} (paper band {low}-{high}; "
        f"other studies {ranges['weibull_shape_elsewhere']})"
    )
