"""Modulated Weibull-renewal arrival sampling.

The paper finds the time between failures is Weibull with shape 0.7-0.8
(decreasing hazard), while failure *rates* vary with system age
(Figure 4) and time of week (Figure 5).  To produce both properties at
once we use **time rescaling**:

1. Draw interarrivals from a unit-mean Weibull renewal process in
   *operational time*.
2. Map operational time ``u`` to wall-clock time ``t`` through the
   inverse of the cumulative modulated rate
   ``Lambda(t) = base_rate * integral_0^t L(age(s)) * W(s) ds``,
   where ``L`` is the lifecycle multiplier and ``W`` the weekly
   profile.

Because ``W`` is periodic with a precomputed cumulative integral, and
``L`` is nearly constant within a week, the inverse is computed by
walking weeks and inverting within the week via the profile's table —
O(weeks + events) per node, fast enough for the full 4750-node trace.
"""

from __future__ import annotations

import math
from typing import Callable, List

import numpy as np
from scipy import special

from repro.records.timeutils import SECONDS_PER_WEEK
from repro.synth.diurnal import WeeklyProfile

__all__ = ["ModulatedWeibullArrivals"]


class ModulatedWeibullArrivals:
    """Sample failure times for one node.

    Parameters
    ----------
    base_rate:
        Long-run failures per second for this node (already including
        the node's workload and heterogeneity multipliers).
    shape:
        Weibull shape of the renewal process (< 1 for decreasing
        hazard).
    lifecycle:
        Callable mapping *node age in seconds* to the lifecycle
        multiplier L (dimensionless, ~1).
    profile:
        The shared :class:`WeeklyProfile` (periodic modulation W).
    start / end:
        The node's production window (absolute toolkit seconds).
    """

    def __init__(
        self,
        base_rate: float,
        shape: float,
        lifecycle: Callable[[float], float],
        profile: WeeklyProfile,
        start: float,
        end: float,
    ) -> None:
        if base_rate < 0:
            raise ValueError(f"base_rate must be >= 0, got {base_rate}")
        if not 0 < shape <= 2:
            raise ValueError(f"shape must be in (0, 2], got {shape}")
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        self._base_rate = base_rate
        self._shape = shape
        self._lifecycle = lifecycle
        self._profile = profile
        self._start = start
        self._end = end
        # Unit-mean Weibull: X = scale * W(shape) with scale = 1/Gamma(1+1/k).
        self._unit_scale = 1.0 / math.gamma(1.0 + 1.0 / shape)

    def _equilibrium_draw(self, generator: np.random.Generator) -> float:
        """First interarrival from the equilibrium (stationary) renewal law.

        A renewal process observed from an arbitrary instant has its
        first interarrival distributed with density S(x)/mu, not f(x).
        Starting in equilibrium removes the ordinary-renewal transient —
        for decreasing-hazard Weibulls that transient adds ~(C^2-1)/2
        extra events per node and would bias every rate upward.  For a
        Weibull(k, lam) the equilibrium CDF is the regularized lower
        incomplete gamma gammainc(1/k, (x/lam)^k), inverted exactly via
        gammaincinv.
        """
        u = float(generator.random())
        z = float(special.gammaincinv(1.0 / self._shape, u))
        return self._unit_scale * z ** (1.0 / self._shape)

    def sample(self, generator: np.random.Generator) -> List[float]:
        """Generate all failure times in the production window.

        Returns an increasing list of absolute timestamps.
        """
        if self._base_rate == 0.0:
            return []
        events: List[float] = []
        t = self._start
        # Effective-seconds budget carried toward the next event:
        # Lambda advances by base * L * W per wall second; each Weibull
        # draw u adds u / base_rate effective (L*W-weighted) seconds.
        pending = 0.0
        profile = self._profile
        week_total = profile.total
        first = True
        while True:
            if first:
                draw = self._equilibrium_draw(generator)
                first = False
            else:
                draw = self._unit_scale * float(generator.weibull(self._shape))
            pending += draw / self._base_rate
            # Walk weeks until the pending effective time is consumed.
            while pending > 0.0:
                if t >= self._end:
                    return events
                week_start = math.floor(t / SECONDS_PER_WEEK) * SECONDS_PER_WEEK
                position = t - week_start
                remaining_effective = week_total - profile.cumulative_at(position)
                mid_age = max(0.0, (week_start + 0.5 * SECONDS_PER_WEEK) - self._start)
                level = self._lifecycle(mid_age)
                if level <= 0:
                    raise ValueError(f"lifecycle multiplier must be positive, got {level}")
                available = level * remaining_effective
                if pending <= available:
                    target = profile.cumulative_at(position) + pending / level
                    t = week_start + profile.invert(target)
                    pending = 0.0
                else:
                    pending -= available
                    t = week_start + SECONDS_PER_WEEK
            if t >= self._end:
                return events
            events.append(t)

    def expected_count(self, resolution_weeks: int = 1) -> float:
        """Approximate expected number of failures in the window.

        Integrates base * L numerically (W has weekly mean 1); useful
        for calibration tests.
        """
        step = resolution_weeks * SECONDS_PER_WEEK
        total = 0.0
        t = self._start
        while t < self._end:
            upper = min(t + step, self._end)
            mid_age = 0.5 * (t + upper) - self._start
            total += self._base_rate * self._lifecycle(mid_age) * (upper - t)
            t = upper
        return total
