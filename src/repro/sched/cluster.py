"""Node outage timelines derived from a failure trace.

The scheduler simulation needs, for every node, the failure instants
and repair windows.  :class:`ClusterTimeline` extracts them from a
:class:`~repro.records.trace.FailureTrace` for one system, and answers
"which failures hit node n in [t0, t1)" queries via binary search.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.records.trace import FailureTrace

__all__ = ["NodeOutage", "ClusterTimeline"]


@dataclass(frozen=True)
class NodeOutage:
    """One node-down window: [start, end)."""

    node_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"outage ends before it starts: {self}")


class ClusterTimeline:
    """Per-node failure/repair timeline for one system.

    Parameters
    ----------
    trace:
        The failure trace (any systems; filtered internally).
    system_id:
        The system to extract.
    """

    def __init__(self, trace: FailureTrace, system_id: int) -> None:
        config = trace.systems.get(system_id)
        if config is None:
            raise KeyError(f"system {system_id} not in the trace inventory")
        self.system_id = system_id
        self.node_count = config.node_count
        outages: Dict[int, List[NodeOutage]] = {
            node_id: [] for node_id in range(config.node_count)
        }
        for record in trace.filter_systems([system_id]):
            outages[record.node_id].append(
                NodeOutage(
                    node_id=record.node_id,
                    start=record.start_time,
                    end=record.end_time,
                )
            )
        self._outages = {
            node_id: sorted(windows, key=lambda o: o.start)
            for node_id, windows in outages.items()
        }
        self._starts = {
            node_id: [outage.start for outage in windows]
            for node_id, windows in self._outages.items()
        }

    def outages(self, node_id: int) -> Sequence[NodeOutage]:
        """All outages of one node, sorted by start."""
        return self._outages[node_id]

    def failure_count(self, node_id: int, start: float, end: float) -> int:
        """Number of failures of ``node_id`` starting in [start, end)."""
        starts = self._starts[node_id]
        return bisect.bisect_left(starts, end) - bisect.bisect_left(starts, start)

    def next_failure(self, node_id: int, after: float) -> Optional[NodeOutage]:
        """The first outage of ``node_id`` starting at or after ``after``."""
        starts = self._starts[node_id]
        index = bisect.bisect_left(starts, after)
        if index >= len(starts):
            return None
        return self._outages[node_id][index]

    def next_failure_any(
        self, node_ids: Sequence[int], after: float
    ) -> Optional[NodeOutage]:
        """The earliest outage on any of ``node_ids`` at or after ``after``."""
        best: Optional[NodeOutage] = None
        for node_id in node_ids:
            outage = self.next_failure(node_id, after)
            if outage is not None and (best is None or outage.start < best.start):
                best = outage
        return best

    def is_down(self, node_id: int, timestamp: float) -> bool:
        """Whether the node is inside an outage window at ``timestamp``."""
        starts = self._starts[node_id]
        index = bisect.bisect_right(starts, timestamp) - 1
        if index < 0:
            return False
        outage = self._outages[node_id][index]
        return outage.start <= timestamp < outage.end

    def failure_rates(
        self, start: float, end: float
    ) -> Dict[int, float]:
        """Failures per second for every node over [start, end).

        The reliability-aware policy trains on these.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        length = end - start
        return {
            node_id: self.failure_count(node_id, start, end) / length
            for node_id in range(self.node_count)
        }
