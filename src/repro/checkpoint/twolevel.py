"""Two-level checkpoint/restart (Vaidya-style), trace-driven.

The paper's introduction cites two-level distributed recovery schemes
[21]: cheap *local* checkpoints (e.g. to a buddy node's memory) handle
the common single-node failure, while expensive *global* checkpoints
(to the parallel filesystem) are kept for failures that defeat local
recovery — exactly the correlated multi-node failures the paper
documents in the early NUMA era (Figure 6(c)).

Model
-----
Work proceeds in segments of ``interval`` followed by a *local*
checkpoint (cost ``local_cost``); every ``global_every``-th checkpoint
is instead a *global* one (cost ``global_cost`` > local).  On a
failure:

* a **single** failure (no other failure within ``correlation_window``
  seconds) restores from the most recent checkpoint of either kind —
  local recovery works;
* a **correlated** failure (another failure in the same instant or
  within the window) invalidates local checkpoints — the job falls
  back to the last *global* checkpoint and pays ``global_restart``.

The simulator consumes an actual failure-time sequence (synthetic or
real), so the value of two-level recovery emerges directly from the
trace's correlation structure: with independent failures the scheme
only adds overhead; with bursts it saves large rollbacks.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

__all__ = ["TwoLevelResult", "TwoLevelCheckpointSimulation"]


@dataclass(frozen=True)
class TwoLevelResult:
    """Outcome of a two-level checkpointed-job run."""

    completed: bool
    makespan: float
    useful_work: float
    local_checkpoints: int
    global_checkpoints: int
    local_recoveries: int
    global_recoveries: int
    lost_work: float

    @property
    def efficiency(self) -> float:
        """Useful work / wall-clock time (0 if nothing ran)."""
        if self.makespan <= 0:
            return 0.0
        return self.useful_work / self.makespan


class TwoLevelCheckpointSimulation:
    """Simulate a job under two-level checkpointing.

    Parameters
    ----------
    work:
        Total useful compute time required.
    interval:
        Useful-work seconds between checkpoints.
    local_cost / global_cost:
        Wall-clock cost of a local / global checkpoint
        (``global_cost >= local_cost``).
    global_every:
        Every n-th checkpoint is global (n >= 1; n = 1 degenerates to
        single-level global checkpointing).
    local_restart / global_restart:
        Downtime after a locally / globally recovered failure.
    correlation_window:
        Two failures closer than this are treated as correlated and
        force a global recovery.
    """

    def __init__(
        self,
        work: float,
        interval: float,
        local_cost: float,
        global_cost: float,
        global_every: int = 10,
        local_restart: float = 60.0,
        global_restart: float = 1800.0,
        correlation_window: float = 1.0,
    ) -> None:
        if work <= 0 or interval <= 0:
            raise ValueError("work and interval must be positive")
        if local_cost < 0 or global_cost < local_cost:
            raise ValueError("need 0 <= local_cost <= global_cost")
        if global_every < 1:
            raise ValueError(f"global_every must be >= 1, got {global_every}")
        if local_restart < 0 or global_restart < 0 or correlation_window < 0:
            raise ValueError("restart costs and window must be >= 0")
        self.work = work
        self.interval = interval
        self.local_cost = local_cost
        self.global_cost = global_cost
        self.global_every = global_every
        self.local_restart = local_restart
        self.global_restart = global_restart
        self.correlation_window = correlation_window

    def _is_correlated(self, times: Sequence[float], index: int) -> bool:
        """Whether failure ``index`` has a neighbour within the window."""
        t = times[index]
        if index > 0 and t - times[index - 1] <= self.correlation_window:
            return True
        if (
            index + 1 < len(times)
            and times[index + 1] - t <= self.correlation_window
        ):
            return True
        return False

    def run(self, failure_times: Sequence[float], horizon: float = None) -> TwoLevelResult:
        """Run the job against (relative, sorted-ascending) failure times."""
        times = sorted(float(t) for t in failure_times)
        if horizon is not None and horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        now = 0.0
        local_banked = 0.0      # work protected by the latest checkpoint
        global_banked = 0.0     # work protected by the latest *global* one
        checkpoint_counter = 0
        stats = dict(local_ckpt=0, global_ckpt=0, local_rec=0, global_rec=0, lost=0.0)

        def next_failure_index(after: float) -> int:
            return bisect.bisect_right(times, after)

        while local_banked < self.work:
            if horizon is not None and now >= horizon:
                break
            segment = min(self.interval, self.work - local_banked)
            checkpoint_counter += 1
            is_global = checkpoint_counter % self.global_every == 0
            is_last = local_banked + segment >= self.work
            cost = 0.0 if is_last else (self.global_cost if is_global else self.local_cost)
            attempt_end = now + segment + cost
            index = next_failure_index(now)
            strikes = index < len(times) and times[index] < attempt_end
            if horizon is not None and attempt_end > horizon and not (
                strikes and times[index] < horizon
            ):
                # The segment cannot complete before the horizon.
                checkpoint_counter -= 1
                break
            if strikes:
                # Failure strikes during the segment or its checkpoint.
                strike = times[index]
                stats["lost"] += min(strike - now, segment) + (
                    local_banked - global_banked
                    if self._is_correlated(times, index)
                    else 0.0
                )
                if self._is_correlated(times, index):
                    stats["global_rec"] += 1
                    local_banked = global_banked
                    now = strike + self.global_restart
                else:
                    stats["local_rec"] += 1
                    now = strike + self.local_restart
                # Simultaneous failures share the strike timestamp and
                # are consumed together by the bisect above — one
                # recovery per burst, as a real resource manager does.
                checkpoint_counter -= 1  # the interrupted checkpoint never counted
                continue
            # Segment and checkpoint complete.
            now = attempt_end
            local_banked += segment
            if not is_last:
                if is_global:
                    stats["global_ckpt"] += 1
                    global_banked = local_banked
                else:
                    stats["local_ckpt"] += 1
        completed = local_banked >= self.work
        if completed:
            end = now
        elif horizon is not None:
            end = horizon
        else:
            end = times[-1] if times else 0.0
        return TwoLevelResult(
            completed=completed,
            makespan=float(end),
            useful_work=local_banked if not completed else self.work,
            local_checkpoints=stats["local_ckpt"],
            global_checkpoints=stats["global_ckpt"],
            local_recoveries=stats["local_rec"],
            global_recoveries=stats["global_rec"],
            lost_work=stats["lost"],
        )
