"""Filesystem-fault shim: spec validation, budgets, determinism, arming."""

from __future__ import annotations

import errno
import os

import pytest

from repro.faults import fsfaults
from repro.faults.fsfaults import (
    FS_FAULTS_ENV_VAR,
    FsFaultError,
    FsFaults,
    TornWriteError,
    fault_write,
    fsfaults_env,
    make_fsfaults,
    maybe_fault,
)


class TestSpecValidation:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="operator"):
            FsFaults(operator="rm-rf", state_dir="/tmp/x")

    def test_state_dir_required_for_active_operators(self):
        with pytest.raises(ValueError, match="state_dir"):
            FsFaults(operator="enospc")

    def test_count_operator_needs_no_state_dir(self):
        FsFaults(operator="count")

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FsFaults(operator="enospc", state_dir="/tmp/x", times=0)

    def test_negative_skip_rejected(self):
        with pytest.raises(ValueError, match="skip"):
            FsFaults(operator="enospc", state_dir="/tmp/x", skip=-1)

    def test_json_round_trip(self, tmp_path):
        spec = FsFaults(
            operator="torn-write", times=3, state_dir=str(tmp_path),
            sites=("journal.append",), path_contains=".pkl", skip=1, seed=9,
        )
        assert FsFaults.from_json(spec.to_json()) == spec


class TestBudgetAndTargeting:
    def test_budget_limits_injection_count(self, tmp_path):
        spec = FsFaults(
            operator="enospc", times=2, state_dir=str(tmp_path), seed=1
        )
        with fsfaults_env(spec):
            fired = 0
            for _ in range(5):
                try:
                    maybe_fault("atomic.text", "out.txt")
                except FsFaultError:
                    fired += 1
        assert fired == 2
        assert spec.injections() == 2

    def test_skip_lets_first_calls_pass(self, tmp_path):
        spec = FsFaults(
            operator="enospc", times=1, skip=2, state_dir=str(tmp_path)
        )
        with fsfaults_env(spec):
            maybe_fault("atomic.text", "out.txt")  # slot 0: pass
            maybe_fault("atomic.text", "out.txt")  # slot 1: pass
            with pytest.raises(FsFaultError):
                maybe_fault("atomic.text", "out.txt")  # slot 2: inject
        assert spec.injections() == 1

    def test_site_targeting(self, tmp_path):
        spec = FsFaults(
            operator="enospc", state_dir=str(tmp_path),
            sites=("journal.append",),
        )
        with fsfaults_env(spec):
            maybe_fault("atomic.text", "out.txt")  # untargeted: no-op
            with pytest.raises(FsFaultError):
                maybe_fault("journal.append", "journal.jsonl")

    def test_path_targeting(self, tmp_path):
        spec = FsFaults(
            operator="enospc", state_dir=str(tmp_path), path_contains=".pkl"
        )
        with fsfaults_env(spec):
            maybe_fault("atomic.bytes", "trace.csv")  # path mismatch
            with pytest.raises(FsFaultError):
                maybe_fault("atomic.bytes", "shards/system-2.pkl")

    def test_missing_state_dir_is_created_not_disarming(self, tmp_path):
        # Arming the environment directly (a subprocess drill, CI) must
        # work without pre-provisioning the state directory.
        state = tmp_path / "never-made"
        spec = FsFaults(operator="enospc", state_dir=str(state))
        with pytest.raises(FsFaultError):
            maybe_fault(
                "atomic.text", "out.txt",
                env={FS_FAULTS_ENV_VAR: spec.to_json()},
            )
        assert state.is_dir()

    def test_disarmed_environment_is_noop(self):
        maybe_fault("atomic.text", "out.txt", env={})


class TestOperators:
    def test_enospc_errno(self, tmp_path):
        spec = FsFaults(operator="enospc", state_dir=str(tmp_path))
        with fsfaults_env(spec), pytest.raises(FsFaultError) as err:
            maybe_fault("atomic.text", "out.txt")
        assert err.value.errno == errno.ENOSPC

    def test_fsync_fail_errno(self, tmp_path):
        spec = FsFaults(operator="fsync-fail", state_dir=str(tmp_path))
        with fsfaults_env(spec), pytest.raises(FsFaultError) as err:
            maybe_fault("atomic.fsync", "out.txt")
        assert err.value.errno == errno.EIO

    def test_torn_write_truncates_staged_tmp(self, tmp_path):
        staged = tmp_path / "staged.tmp"
        staged.write_bytes(b"x" * 1000)
        spec = FsFaults(
            operator="torn-write", state_dir=str(tmp_path / "state"), seed=7
        )
        with fsfaults_env(spec), pytest.raises(TornWriteError):
            maybe_fault("atomic.bytes", "out.bin", tmp=str(staged))
        torn = staged.stat().st_size
        assert torn == int(1000 * spec.torn_fraction("atomic.bytes"))
        assert 0 < torn < 1000

    def test_fault_write_leaves_torn_prefix(self, tmp_path):
        target = tmp_path / "journal.jsonl"
        spec = FsFaults(
            operator="torn-write", state_dir=str(tmp_path / "state"), seed=7
        )
        data = "0123456789" * 10
        with target.open("w") as handle, fsfaults_env(spec):
            with pytest.raises(TornWriteError):
                fault_write("journal.append", str(target), handle.write, data)
        expected = int(len(data) * spec.torn_fraction("journal.append"))
        assert target.read_text() == data[:expected]

    def test_fault_write_passes_through_when_disarmed(self, tmp_path):
        target = tmp_path / "out.txt"
        with target.open("w") as handle:
            fault_write("journal.append", str(target), handle.write, "ok\n",
                        env={})
        assert target.read_text() == "ok\n"

    def test_slow_io_delays_but_completes(self, tmp_path):
        target = tmp_path / "out.txt"
        spec = FsFaults(
            operator="slow-io", state_dir=str(tmp_path / "state"),
            slow_seconds=0.01,
        )
        with target.open("w") as handle, fsfaults_env(spec):
            fault_write("io.jsonl", str(target), handle.write, "payload\n")
        assert target.read_text() == "payload\n"

    def test_count_operator_counts_without_faulting(self):
        fsfaults.reset_counts()
        spec = FsFaults(operator="count")
        with fsfaults_env(spec):
            maybe_fault("atomic.text", "a.txt")
            maybe_fault("atomic.text", "b.txt")
            maybe_fault("io.csv", "c.csv")
        assert fsfaults.call_count() == 3
        fsfaults.reset_counts()
        assert fsfaults.call_count() == 0


class TestDeterminism:
    def test_torn_fraction_is_pure_in_seed_and_site(self):
        a = FsFaults(operator="count", seed=7)
        b = FsFaults(operator="count", seed=7)
        assert a.torn_fraction("atomic.bytes") == b.torn_fraction("atomic.bytes")
        assert a.torn_fraction("atomic.bytes") != a.torn_fraction("io.csv")
        assert a.torn_fraction("io.csv") != FsFaults(
            operator="count", seed=8
        ).torn_fraction("io.csv")

    def test_torn_fraction_bounds(self):
        spec = FsFaults(operator="count", seed=3)
        for site in fsfaults.FS_SITES:
            assert 0.25 <= spec.torn_fraction(site) < 0.75

    def test_fault_messages_name_sites_not_paths(self, tmp_path):
        spec = FsFaults(operator="enospc", state_dir=str(tmp_path))
        with fsfaults_env(spec), pytest.raises(FsFaultError) as err:
            maybe_fault("io.csv", str(tmp_path / "secret" / "trace.csv"))
        assert "io.csv" in str(err.value)
        assert str(tmp_path) not in str(err.value)


class TestEnvArming:
    def test_env_restored_after_block(self, tmp_path):
        assert FS_FAULTS_ENV_VAR not in os.environ
        spec = FsFaults(operator="enospc", state_dir=str(tmp_path))
        with fsfaults_env(spec):
            assert os.environ[FS_FAULTS_ENV_VAR] == spec.to_json()
        assert FS_FAULTS_ENV_VAR not in os.environ

    def test_env_restored_on_error(self, tmp_path):
        spec = FsFaults(operator="enospc", state_dir=str(tmp_path))
        with pytest.raises(RuntimeError):
            with fsfaults_env(spec):
                raise RuntimeError("boom")
        assert FS_FAULTS_ENV_VAR not in os.environ

    def test_none_spec_is_noop(self):
        with fsfaults_env(None) as armed:
            assert armed is None
            assert FS_FAULTS_ENV_VAR not in os.environ

    def test_make_fsfaults_provisions_state_dir(self):
        spec = make_fsfaults("enospc", times=2)
        assert spec.state_dir
        assert os.path.isdir(spec.state_dir)
        os.rmdir(spec.state_dir)

    def test_make_fsfaults_passive_needs_no_dir(self):
        assert make_fsfaults("count").state_dir == ""
