"""Per-node workload assignment and rate heterogeneity (Figure 3).

Two mechanisms make nodes of one system fail at different rates:

* **Workload.** Graphics/visualization nodes (nodes 21-23 of system 20)
  and front-end nodes of the cluster systems run more varied,
  interactive workloads and fail several times more often
  (Section 5.1).
* **Residual heterogeneity.** Even compute-only nodes are
  overdispersed relative to a Poisson model with a common mean —
  Figure 3(b) shows the per-node failure-count CDF is fit far better
  by a lognormal than a Poisson.  We give every node a lognormal rate
  multiplier with unit mean.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.records.node import NodeConfig
from repro.records.record import Workload
from repro.records.system import HardwareType, SystemConfig
from repro.simulate.rng import RngStream

__all__ = [
    "assign_workload",
    "node_rate_multiplier",
    "node_rate_multipliers",
    "workload_multiplier",
]

#: System 20's visualization nodes (Section 5.1: 6% of nodes, 20% of
#: failures).
GRAPHICS_NODES_SYSTEM_20 = frozenset({21, 22, 23})

#: Cluster types whose node 0 serves as a front-end (Section 5.1 calls
#: out much higher front-end failure rates for types E and F).
FRONTEND_TYPES = frozenset({HardwareType.D, HardwareType.E, HardwareType.F})

#: Minimum cluster size for a dedicated front-end node.
FRONTEND_MIN_NODES = 32


def assign_workload(system: SystemConfig, node_id: int) -> Workload:
    """The workload a node runs, per the paper's description.

    * System 20, nodes 21-23: graphics (plus compute; we record the
      node as a graphics node since that is what distinguishes it).
    * Node 0 of every D/E/F cluster with >= 32 nodes: front-end.
    * Everything else: compute.
    """
    if system.system_id == 20 and node_id in GRAPHICS_NODES_SYSTEM_20:
        return Workload.GRAPHICS
    if (
        system.hardware_type in FRONTEND_TYPES
        and system.node_count >= FRONTEND_MIN_NODES
        and node_id == 0
    ):
        return Workload.FRONTEND
    return Workload.COMPUTE


def workload_multiplier(
    workload: Workload,
    graphics_multiplier: float = 3.8,
    frontend_multiplier: float = 2.5,
) -> float:
    """Rate multiplier for a node's workload type.

    The graphics default of 3.8 makes 3 of system 20's 49 nodes carry
    ~20% of its failures, matching Section 5.1 exactly:
    ``3 * 3.8 / (46 + 3 * 3.8) = 0.199``.
    """
    if workload is Workload.GRAPHICS:
        return graphics_multiplier
    if workload is Workload.FRONTEND:
        return frontend_multiplier
    return 1.0


def node_rate_multiplier(node: NodeConfig, rng_root: RngStream, sigma: float) -> float:
    """The node's residual lognormal rate multiplier (unit mean).

    Deterministic per (seed, system, node): derived from a child RNG
    stream keyed by the node's identity, so adding nodes or systems
    never perturbs another node's multiplier.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return 1.0
    stream = rng_root.child(
        "node-multiplier", str(node.system_id), str(node.node_id)
    )
    mu = -0.5 * sigma**2  # unit mean: E[exp(N(mu, sigma^2))] = 1
    return math.exp(mu + sigma * stream.generator.standard_normal())


def node_rate_multipliers(
    system_id: int,
    n_nodes: int,
    rng_root: RngStream,
    sigma: float,
) -> np.ndarray:
    """Batched residual rate multipliers for a whole system's nodes.

    One per-system stream (``"system", s, "node-multipliers"``) yields
    all nodes' normals in node order — one generator construction per
    system instead of one per node, which matters at 4750 nodes.  Used
    by the trace generator's hot path; :func:`node_rate_multiplier`
    remains for single-node use.  Deterministic per (seed, system), so
    generating a system alone or in a worker process reproduces the
    same multipliers.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.ones(n_nodes)
    generator = rng_root.spawn_generator(
        "system", str(system_id), "node-multipliers"
    )
    mu = -0.5 * sigma**2  # unit mean, as in node_rate_multiplier
    return np.exp(mu + sigma * generator.standard_normal(n_nodes))
