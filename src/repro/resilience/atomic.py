"""Crash-safe artifact writes: tmp file + fsync + ``os.replace``.

Every artifact the toolkit emits — trace CSV/JSONL files, benchmark
reports, golden fixtures, run reports, shard payloads — goes through
these helpers, so an interrupt (SIGKILL, power loss, full disk) leaves
either the previous complete file or the new complete file, never a
truncated hybrid.  The recipe is the classic POSIX one:

1. write to a uniquely-named temporary file *in the target directory*
   (same filesystem, so the final rename cannot degrade to a copy),
2. flush and ``fsync`` the temporary file,
3. ``os.replace`` it over the target (atomic on POSIX and Windows),
4. best-effort ``fsync`` the directory so the rename itself is durable.

A ``.gz`` target suffix writes gzip-compressed text, mirroring
:func:`repro.io.common.open_text`.
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Union

__all__ = [
    "atomic_open_text",
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_write_json",
]

PathLike = Union[str, Path]


def _fsync_dir(directory: Path) -> None:
    """Durably record a rename; best-effort (not all OSes allow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_open_text(path: PathLike, newline: str = "") -> Iterator[Any]:
    """Context manager yielding a text handle that atomically replaces
    ``path`` on success and leaves it untouched on failure.

    A ``.gz`` suffix writes gzip-compressed text, like
    :func:`repro.io.common.open_text`.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{path.name}.", suffix=".tmp"
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        if path.suffix == ".gz":
            handle = gzip.open(tmp, "wt", newline=newline)
        else:
            handle = open(tmp, "w", newline=newline, encoding="utf-8")
        try:
            yield handle
        finally:
            handle.close()
        # Re-open to fsync the bytes the (possibly gzip-layered) handle
        # wrote; simpler and safer than plumbing raw fds through gzip.
        with open(tmp, "rb") as sync_handle:
            os.fsync(sync_handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(directory)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def atomic_write_text(path: PathLike, text: str, newline: str = "") -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_open_text(path, newline=newline) as handle:
        handle.write(text)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (binary; no gzip)."""
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        try:
            # os.write may write fewer bytes than asked (large shard
            # payloads); loop so the temp file is complete before the
            # fsync + rename publish it.
            view = memoryview(data)
            while view:
                view = view[os.write(fd, view) :]
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        _fsync_dir(directory)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def atomic_write_json(path: PathLike, payload: Any, indent: int = 2) -> None:
    """Atomically write ``payload`` as stable, diff-friendly JSON."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )
