"""Tests for diurnal/weekly modulation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.records.timeutils import SECONDS_PER_HOUR, SECONDS_PER_WEEK
from repro.synth.diurnal import WeeklyProfile, diurnal_multiplier, weekly_multiplier


class TestDiurnalMultiplier:
    def test_peak_at_peak_hour(self):
        assert diurnal_multiplier(14.0) == pytest.approx(1.0 + 1.0 / 3.0)

    def test_trough_twelve_hours_later(self):
        assert diurnal_multiplier(2.0) == pytest.approx(1.0 - 1.0 / 3.0)

    def test_peak_trough_ratio_two(self):
        # Figure 5: rate during peak hours ~2x the nightly minimum.
        ratio = diurnal_multiplier(14.0) / diurnal_multiplier(2.0)
        assert ratio == pytest.approx(2.0)

    def test_daily_mean_is_one(self):
        hours = np.linspace(0, 24, 10_000, endpoint=False)
        values = [diurnal_multiplier(h) for h in hours]
        assert np.mean(values) == pytest.approx(1.0, abs=1e-6)

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            diurnal_multiplier(12.0, amplitude=1.0)


class TestWeeklyMultiplier:
    def test_weekday_above_weekend(self):
        assert weekly_multiplier(2) > weekly_multiplier(6)

    def test_weekly_mean_is_one(self):
        mean = np.mean([weekly_multiplier(d) for d in range(7)])
        assert mean == pytest.approx(1.0)

    def test_ratio(self):
        assert weekly_multiplier(0) / weekly_multiplier(5) == pytest.approx(1 / 0.55)

    def test_bad_weekday(self):
        with pytest.raises(ValueError):
            weekly_multiplier(7)


class TestWeeklyProfile:
    def test_total_is_one_week(self):
        profile = WeeklyProfile()
        assert profile.total == pytest.approx(SECONDS_PER_WEEK)

    def test_disabled_profile_is_flat(self):
        profile = WeeklyProfile(enabled=False)
        assert np.allclose(profile.hourly, 1.0)
        assert profile.value_at(12345.0) == 1.0

    def test_hourly_mean_exactly_one(self):
        assert WeeklyProfile().hourly.mean() == pytest.approx(1.0)

    def test_cumulative_endpoints(self):
        profile = WeeklyProfile()
        assert profile.cumulative_at(0.0) == 0.0
        assert profile.cumulative_at(SECONDS_PER_WEEK) == pytest.approx(profile.total)

    def test_cumulative_monotone(self):
        profile = WeeklyProfile()
        positions = np.linspace(0, SECONDS_PER_WEEK, 500)
        values = [profile.cumulative_at(p) for p in positions]
        assert all(b >= a for a, b in zip(values, values[1:]))

    @given(st.floats(min_value=0.0, max_value=SECONDS_PER_WEEK))
    def test_invert_roundtrip(self, position):
        profile = WeeklyProfile()
        cumulative = profile.cumulative_at(position)
        recovered = profile.invert(cumulative)
        assert recovered == pytest.approx(position, abs=1e-3)

    def test_invert_validation(self):
        profile = WeeklyProfile()
        with pytest.raises(ValueError):
            profile.invert(-1.0)
        with pytest.raises(ValueError):
            profile.invert(profile.total * 1.1)

    def test_value_at_weekend_lower(self):
        profile = WeeklyProfile()
        # EPOCH (t=0) is Monday 00:00; Saturday noon is day 5 + 12h.
        monday_noon = 12 * SECONDS_PER_HOUR
        saturday_noon = (5 * 24 + 12) * SECONDS_PER_HOUR
        assert profile.value_at(monday_noon) > profile.value_at(saturday_noon)

    def test_cumulative_position_validation(self):
        with pytest.raises(ValueError):
            WeeklyProfile().cumulative_at(SECONDS_PER_WEEK + 1.0)
