"""High-level, policy-aware trace ingestion.

:func:`ingest_trace` is the one-call entry the CLI and services use:
it picks the reader from the file name (or an explicit format /
column mapping), runs it under an :class:`~repro.io.policy.IngestPolicy`
and returns both the trace and the :class:`~repro.io.policy.IngestReport`
describing what was kept, repaired and quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional

from repro.io.common import PathLike
from repro.io.policy import IngestPolicy, IngestReport
from repro.records.system import SystemConfig
from repro.records.trace import FailureTrace

__all__ = ["IngestResult", "detect_format", "ingest_trace"]


@dataclass(frozen=True)
class IngestResult:
    """A loaded trace plus the row accounting that produced it."""

    trace: FailureTrace
    report: IngestReport

    @property
    def ok(self) -> bool:
        """True when no rows were quarantined."""
        return self.report.ok


def detect_format(path: PathLike) -> str:
    """``"jsonl"`` or ``"csv"`` from the file name (``.gz`` stripped)."""
    name = Path(path).name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return "jsonl" if name.endswith(".jsonl") else "csv"


def ingest_trace(
    path: PathLike,
    policy: Optional[IngestPolicy] = None,
    format: str = "auto",
    mapping=None,
    systems: Optional[Mapping[int, SystemConfig]] = None,
    data_start: Optional[float] = None,
    data_end: Optional[float] = None,
) -> IngestResult:
    """Load a trace under a policy and return trace + report.

    Parameters
    ----------
    path:
        CSV or JSONL trace, optionally gzipped.
    policy:
        Defaults to a full-checking strict :class:`IngestPolicy` (note:
        stricter than the bare readers, which skip inventory/window/
        duplicate checks when called without a policy).
    format:
        ``"auto"`` (from the file name), ``"csv"`` or ``"jsonl"``.
    mapping:
        Optional :class:`~repro.io.mapped.ColumnMapping`; when given,
        the file is read through the foreign-log importer regardless of
        ``format``.
    systems / data_start / data_end:
        Forwarded to the underlying reader.
    """
    from repro import obs

    if policy is None:
        policy = IngestPolicy()
    if format not in ("auto", "csv", "jsonl"):
        raise ValueError(f"unknown format {format!r}")
    report = IngestReport()
    kwargs = dict(
        systems=systems,
        data_start=data_start,
        data_end=data_end,
        policy=policy,
        report=report,
    )
    with obs.span(
        "ingest", source=str(path), mode=policy.mode, format=format
    ) as span:
        if mapping is not None:
            from repro.io.mapped import read_mapped_csv

            trace = read_mapped_csv(path, mapping, **kwargs)
        elif (format if format != "auto" else detect_format(path)) == "jsonl":
            from repro.io.jsonl_format import read_jsonl

            trace = read_jsonl(path, **kwargs)
        else:
            from repro.io.csv_format import read_lanl_csv

            trace = read_lanl_csv(path, **kwargs)
        span.add("rows_read", report.rows_read)
        span.add("rows_kept", report.rows_kept)
        span.add("rows_quarantined", report.rows_quarantined)
    return IngestResult(trace=trace, report=report)
