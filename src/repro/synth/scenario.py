"""Scenario builder: synthetic traces for *your* cluster.

The LANL inventory is baked into :data:`repro.records.inventory`; this
module lets a user describe an arbitrary fleet — node counts, rates,
lifecycle shape, repair scale — and generate a statistically faithful
failure trace for it, reusing the full calibrated machinery.

Example
-------
>>> scenario = (
...     ClusterScenario(name="my-dc", years=3.0)
...     .add_system("compute", nodes=512, procs_per_node=2,
...                 failures_per_proc_year=0.3)
...     .add_system("storage", nodes=64, procs_per_node=8,
...                 failures_per_proc_year=0.15, repair_scale=2.0,
...                 lifecycle="ramp-peak")
... )
>>> trace = scenario.generate(seed=7)                  # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.records.inventory import DATA_START, LANL_SYSTEMS
from repro.records.node import NodeCategory
from repro.records.system import HardwareArchitecture, HardwareType, SystemConfig
from repro.records.timeutils import SECONDS_PER_YEAR
from repro.records.trace import FailureTrace
from repro.synth.config import GeneratorConfig
from repro.synth.generator import TraceGenerator
from repro.synth.lifecycle import LifecycleShape

__all__ = [
    "ScenarioSystem",
    "ClusterScenario",
    "scale_inventory",
    "scaled_lanl_systems",
]

#: Hardware-type letters are recycled as scenario slots; at most 8
#: systems per scenario (one per letter, so per-system knobs map
#: cleanly onto the per-type configuration tables).
_SLOTS = tuple(HardwareType)


@dataclass(frozen=True)
class ScenarioSystem:
    """One system of a user-defined scenario."""

    name: str
    nodes: int
    procs_per_node: int
    failures_per_proc_year: float
    memory_gb: float = 8.0
    nics: int = 1
    repair_scale: float = 1.0
    lifecycle: str = "infant-decay"
    architecture: str = "smp"

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.procs_per_node < 1:
            raise ValueError(f"{self.name}: nodes and procs must be >= 1")
        if self.failures_per_proc_year < 0:
            raise ValueError(f"{self.name}: rate must be >= 0")
        if self.repair_scale <= 0:
            raise ValueError(f"{self.name}: repair_scale must be positive")
        LifecycleShape(self.lifecycle)  # validates the string
        HardwareArchitecture(self.architecture)


class ClusterScenario:
    """Fluent builder for custom-cluster failure traces.

    Parameters
    ----------
    name:
        Scenario label (cosmetic).
    years:
        Length of the observation window.
    """

    def __init__(self, name: str, years: float) -> None:
        if years <= 0:
            raise ValueError(f"years must be positive, got {years}")
        self.name = name
        self.years = float(years)
        self._systems: List[ScenarioSystem] = []

    def add_system(self, name: str, **kwargs) -> "ClusterScenario":
        """Add a system; keyword arguments are :class:`ScenarioSystem` fields."""
        if len(self._systems) >= len(_SLOTS):
            raise ValueError(f"a scenario holds at most {len(_SLOTS)} systems")
        if any(system.name == name for system in self._systems):
            raise ValueError(f"duplicate system name {name!r}")
        self._systems.append(ScenarioSystem(name=name, **kwargs))
        return self

    @property
    def systems(self) -> List[ScenarioSystem]:
        """The systems added so far."""
        return list(self._systems)

    def system_id_of(self, name: str) -> int:
        """The numeric system ID assigned to a named system."""
        for index, system in enumerate(self._systems):
            if system.name == name:
                return index + 1
        raise KeyError(f"no system named {name!r} in scenario {self.name!r}")

    def build_inventory(self) -> Dict[int, SystemConfig]:
        """The SystemConfig inventory for this scenario."""
        if not self._systems:
            raise ValueError("scenario has no systems")
        inventory: Dict[int, SystemConfig] = {}
        for index, system in enumerate(self._systems):
            inventory[index + 1] = SystemConfig(
                system_id=index + 1,
                hardware_type=_SLOTS[index],
                architecture=HardwareArchitecture(system.architecture),
                categories=(
                    NodeCategory(
                        node_count=system.nodes,
                        procs_per_node=system.procs_per_node,
                        memory_gb=system.memory_gb,
                        nics=system.nics,
                        production_start="N/A",
                        production_end="now",
                    ),
                ),
            )
        return inventory

    def build_config(self, base: Optional[GeneratorConfig] = None) -> GeneratorConfig:
        """A GeneratorConfig with this scenario's per-system knobs."""
        config = base if base is not None else GeneratorConfig()
        config = dataclasses.replace(config)
        config.rate_per_proc_year = dict(config.rate_per_proc_year)
        config.repair_type_factor = dict(config.repair_type_factor)
        ramp_types = []
        for index, system in enumerate(self._systems):
            slot = _SLOTS[index]
            config.rate_per_proc_year[slot] = system.failures_per_proc_year
            config.repair_type_factor[slot] = system.repair_scale
            if LifecycleShape(system.lifecycle) is LifecycleShape.RAMP_PEAK:
                ramp_types.append(slot)
        config.ramp_types = tuple(ramp_types)
        config.ramp_exempt_systems = ()
        config.early_system_boost = {}
        # Scenario systems are generic: no LANL-specific burst systems.
        config.burst_systems = ()
        return config

    def generate(
        self, seed: int = 0, config: Optional[GeneratorConfig] = None
    ) -> FailureTrace:
        """Generate the scenario's failure trace."""
        inventory = self.build_inventory()
        resolved = self.build_config(config)
        generator = TraceGenerator(
            seed=seed,
            config=resolved,
            systems=inventory,
            data_start=DATA_START,
            data_end=DATA_START + self.years * SECONDS_PER_YEAR,
        )
        return generator.generate()


def scale_inventory(
    systems: Dict[int, SystemConfig], factor: float
) -> Dict[int, SystemConfig]:
    """Scale every node category's node count by ``factor``.

    Returns a new inventory whose systems have ``round(count * factor)``
    nodes per Table 1 category (at least 1), keeping proc counts,
    memory, and production windows intact.  Useful for exercising the
    generator at exascale-style fleet sizes — e.g. ``factor=10`` turns
    the 4750-node LANL inventory into ~47,500 nodes — and for the
    throughput benchmarks in :mod:`repro.benchmark`.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    scaled: Dict[int, SystemConfig] = {}
    for system_id, system in systems.items():
        categories = tuple(
            dataclasses.replace(
                category,
                node_count=max(1, int(round(category.node_count * factor))),
            )
            for category in system.categories
        )
        scaled[system_id] = dataclasses.replace(system, categories=categories)
    return scaled


def scaled_lanl_systems(factor: float) -> Dict[int, SystemConfig]:
    """The LANL Table 1 inventory with node counts scaled by ``factor``."""
    return scale_inventory(LANL_SYSTEMS, factor)
