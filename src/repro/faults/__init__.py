"""Fault injection: chaos-testing the ingest and analysis pipeline.

Related log-analytics work (Park et al.; Sîrbu & Babaoglu) treats
noisy, partially corrupt logs as the normal case.  This subpackage
provides the offense for that defense:

* :mod:`~repro.faults.operators` — composable, seeded corruption
  operators (dropped/garbled fields, unknown vocabulary, clock skew,
  duplicates, reordering, truncation, negative durations, unknown
  node/system IDs);
* :class:`~repro.faults.injector.CorruptionInjector` — applies a mix
  of operators to a trace CSV at a configurable rate, deterministically
  per seed, with a manifest of what it damaged;
* :func:`~repro.faults.chaos.chaos_roundtrip` — the end-to-end drill:
  corrupt, ingest leniently, run the full paper report, report
  survival;
* :mod:`~repro.faults.process_ops` — *process-level* chaos (kill,
  hang, slow, fail worker processes) for drilling the supervised
  generation path in :mod:`repro.resilience`;
* :mod:`~repro.faults.fsfaults` — *filesystem/resource* faults
  (ENOSPC, torn writes, fsync failure, slow I/O) injected at the
  atomic-write, journal-append, and trace-writer sites;
* :mod:`~repro.faults.campaign` — the deterministic chaos-campaign
  engine composing all three fault classes over real workflows and
  verifying recovery invariants into a robustness scorecard.
"""

from repro.faults.campaign import (
    CampaignResult,
    PRESETS,
    Scenario,
    ScenarioOutcome,
    run_campaign,
)
from repro.faults.chaos import ChaosReport, chaos_roundtrip
from repro.faults.fsfaults import (
    FS_FAULTS_ENV_VAR,
    FS_OPERATORS,
    FS_SITES,
    FsFaultError,
    FsFaults,
    TornWriteError,
    fsfaults_env,
    make_fsfaults,
)
from repro.faults.injector import CorruptionInjector, CorruptionResult
from repro.faults.process_ops import (
    CHAOS_ENV_VAR,
    PROCESS_OPERATORS,
    ChaosError,
    ProcessChaos,
    chaos_env,
    make_chaos,
    maybe_inject,
)
from repro.faults.operators import (
    ALL_OPERATORS,
    DEFAULT_OPERATORS,
    ClockSkewer,
    CorruptionOperator,
    EnumUnknowner,
    FieldDropper,
    FieldGarbler,
    NegativeDurationer,
    RowDuplicator,
    RowShuffler,
    RowTruncator,
    UnknownNoder,
    UnknownSystemer,
)

__all__ = [
    "ChaosReport",
    "chaos_roundtrip",
    "CorruptionInjector",
    "CorruptionResult",
    "CorruptionOperator",
    "FieldDropper",
    "FieldGarbler",
    "EnumUnknowner",
    "ClockSkewer",
    "NegativeDurationer",
    "RowDuplicator",
    "RowShuffler",
    "RowTruncator",
    "UnknownSystemer",
    "UnknownNoder",
    "DEFAULT_OPERATORS",
    "ALL_OPERATORS",
    "CHAOS_ENV_VAR",
    "PROCESS_OPERATORS",
    "ChaosError",
    "ProcessChaos",
    "chaos_env",
    "make_chaos",
    "maybe_inject",
    "FS_FAULTS_ENV_VAR",
    "FS_OPERATORS",
    "FS_SITES",
    "FsFaultError",
    "FsFaults",
    "TornWriteError",
    "fsfaults_env",
    "make_fsfaults",
    "CampaignResult",
    "PRESETS",
    "Scenario",
    "ScenarioOutcome",
    "run_campaign",
]
