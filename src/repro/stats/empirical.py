"""Empirical distribution summaries.

Implements the three metrics of the paper's methodology section: the
mean, the median, and the squared coefficient of variation C² (variance
divided by squared mean — normalized so variability can be compared
across distributions with different means).  Also provides the
empirical CDF used in every distribution-fitting figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.stats.errors import DegenerateStatisticError

__all__ = ["EmpiricalDistribution", "empirical_cdf"]

ArrayLike = Union[Sequence[float], np.ndarray]


def empirical_cdf(data: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """The empirical CDF of ``data``.

    Returns
    -------
    (x, p):
        ``x`` the sorted sample values and ``p`` the fraction of the
        sample <= x (right-continuous step heights, i/n).
    """
    values = np.asarray(data, dtype=float)
    if values.size == 0:
        raise ValueError("empirical_cdf requires at least one observation")
    x = np.sort(values)
    p = np.arange(1, x.size + 1, dtype=float) / x.size
    return x, p


@dataclass(frozen=True)
class EmpiricalDistribution:
    """Summary statistics of an observed sample.

    Use :meth:`from_data`; the constructor takes precomputed values so
    summaries can be built from streamed moments as well.

    Attributes
    ----------
    count, mean, median, std:
        Sample size and the standard location/scale statistics
        (standard deviation is the population form, ddof=0, matching
        the maximum-likelihood convention used by the fitters).
    minimum, maximum:
        Sample range.
    """

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def from_data(cls, data: ArrayLike) -> "EmpiricalDistribution":
        """Build a summary from raw observations."""
        values = np.asarray(data, dtype=float)
        if values.size == 0:
            raise ValueError("cannot summarize an empty sample")
        if not np.all(np.isfinite(values)):
            raise ValueError("sample contains non-finite values")
        return cls(
            count=int(values.size),
            mean=float(np.mean(values)),
            median=float(np.median(values)),
            std=float(np.std(values)),
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
        )

    @property
    def variance(self) -> float:
        """Population variance (ddof=0)."""
        return self.std**2

    @property
    def squared_cv(self) -> float:
        """The squared coefficient of variation, C² = variance / mean².

        The paper's preferred variability measure: an exponential
        distribution has C² = 1, so C² >> 1 signals heavy tails.
        Undefined for zero-mean samples: raises
        :class:`~repro.stats.errors.DegenerateStatisticError` (both a
        :class:`DegenerateSampleError` and a :class:`ZeroDivisionError`).
        """
        if self.mean == 0:
            raise DegenerateStatisticError("C^2 undefined for zero-mean sample")
        return self.variance / self.mean**2

    @property
    def mean_to_median(self) -> float:
        """Mean / median ratio — the paper's quick skew indicator.

        Table 2 highlights e.g. software repairs where the mean is ~10x
        the median.  Undefined for zero-median samples: raises
        :class:`~repro.stats.errors.DegenerateStatisticError` (both a
        :class:`DegenerateSampleError` and a :class:`ZeroDivisionError`),
        so report sections classify the condition as thin data
        (DEGRADED), not a crash.
        """
        if self.median == 0:
            raise DegenerateStatisticError(
                "mean/median undefined for zero median"
            )
        return self.mean / self.median

    def describe(self, unit: str = "") -> str:
        """One-line human-readable summary."""
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count}  mean={self.mean:.4g}{suffix}  "
            f"median={self.median:.4g}{suffix}  std={self.std:.4g}{suffix}  "
            f"C2={self.squared_cv:.3g}"
        )
