"""End-to-end HTTP tests against a live :class:`ServerThread`."""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import threading
import time

import pytest

from repro import obs
from repro.serve import ServeConfig, ServerThread
from repro.serve.admission import AdmissionShed
from repro.serve.client import get
from repro.serve.router import resolve
from repro.serve.server import AnalyticsServer
from repro.store import ColumnarStore, store_from_trace, summarize_store
from repro.store.manifest import Predicate


@pytest.fixture(scope="module")
def served(store_root):
    config = ServeConfig(port=0, max_concurrency=2, max_queue=4)
    with ServerThread(store_root, config) as thread:
        yield thread


def dumps(payload):
    return json.dumps(payload, indent=2, sort_keys=True)


class TestEndpoints:
    def test_healthz(self, served):
        response = get(served.host, served.port, "/healthz")
        assert response.status == 200
        assert response.body["status"] == "ok"

    def test_readyz(self, served):
        response = get(served.host, served.port, "/readyz")
        assert response.status == 200
        assert response.body["status"] == "ok"
        assert response.body["healing"]["quarantined_shards"] == 0

    def test_systems(self, served, small_trace):
        response = get(served.host, served.port, "/v1/systems")
        assert response.status == 200
        data = response.body["data"]
        assert data["row_count"] == len(small_trace.records)
        assert {entry["system"] for entry in data["systems"]} == {
            record.system_id for record in small_trace.records
        }
        assert response.meta()["status"] == "ok"

    def test_summary_byte_identical_to_store_analyze(
        self, served, store_root
    ):
        response = get(served.host, served.port, "/v1/summary")
        assert response.status == 200
        expected = summarize_store(ColumnarStore(store_root)).to_dict()
        assert dumps(response.body["data"]) == dumps(expected)
        meta = response.meta()
        assert meta["status"] in ("ok",) or meta["cache"] == "hit"
        assert meta["degraded"] is False
        assert meta["stale"] is False
        assert meta["coverage"] == 1.0
        assert meta["generation"]

    def test_analyze_filter_byte_identical(self, served, store_root):
        response = get(
            served.host, served.port, "/v1/analyze?system=13&t_min=0"
        )
        assert response.status == 200
        expected = summarize_store(
            ColumnarStore(store_root),
            predicate=Predicate.build(systems=[13], t_min=0.0),
        ).to_dict()
        assert dumps(response.body["data"]) == dumps(expected)

    def test_analyze_cache_hit_on_repeat(self, served):
        path = "/v1/analyze?system=2"
        first = get(served.host, served.port, path)
        second = get(served.host, served.port, path)
        assert first.status == second.status == 200
        assert second.meta()["cache"] == "hit"
        assert dumps(second.body["data"]) == dumps(first.body["data"])

    def test_deadline_override_reflected(self, served):
        response = get(
            served.host, served.port, "/v1/summary?deadline_ms=30000"
        )
        assert response.status == 200
        meta = response.meta()
        assert meta["deadline_ms"] == pytest.approx(30000.0)
        # Small store: the scan finishes well inside the budget.
        assert meta["status"] in ("ok",)

    def test_stats(self, served):
        response = get(served.host, served.port, "/v1/stats")
        assert response.status == 200
        stats = response.body
        assert stats["requests"] >= 1
        assert stats["admission"]["max_concurrency"] == 2
        assert stats["gateway"]["breaker"] == "closed"
        assert "cache" in stats["gateway"]
        assert stats["draining"] is False

    def test_unknown_endpoint_404(self, served):
        response = get(served.host, served.port, "/v2/summary")
        assert response.status == 404
        assert "/v1/summary" in response.body["routes"]

    def test_unknown_parameter_400(self, served):
        response = get(served.host, served.port, "/v1/analyze?sytem=3")
        assert response.status == 400
        assert "sytem" in response.body["error"]

    def test_post_method_405(self, served):
        connection = http.client.HTTPConnection(
            served.host, served.port, timeout=10
        )
        try:
            connection.request("POST", "/v1/summary")
            raw = connection.getresponse()
            assert raw.status == 405
        finally:
            connection.close()


class TestOverload:
    def test_full_queue_sheds_with_429(self, store_root, tmp_path):
        from repro.faults.fsfaults import FsFaults, fsfaults_env

        config = ServeConfig(port=0, max_concurrency=1, max_queue=0)
        spec = FsFaults(
            operator="slow-io",
            times=1000,
            sites=("store.read.column",),
            state_dir=str(tmp_path / "faults"),
            slow_seconds=0.2,
        )
        with ServerThread(store_root, config) as served:
            with fsfaults_env(spec):
                slow = {}

                def hold():
                    slow["response"] = get(
                        served.host, served.port, "/v1/summary", timeout=60
                    )

                holder = threading.Thread(target=hold)
                holder.start()
                time.sleep(0.3)  # the slow scan is now holding the slot
                shed = get(served.host, served.port, "/v1/summary")
                holder.join()
            assert shed.status == 429
            assert shed.body["retry_after"] == 1
            assert slow["response"].status == 200
            stats = get(served.host, served.port, "/v1/stats").body
            assert stats["admission"]["shed"] >= 1


class TestDrainAwareShedding:
    """Regression: a 429 during drain must not advertise a retry.

    The instance is going away, so ``Retry-After: 1`` would steer
    clients straight back into a dead endpoint.  While serving
    normally the hint stays (the overload is transient).
    """

    @staticmethod
    def _shedding_server(store_root, draining: bool) -> AnalyticsServer:
        server = AnalyticsServer(store_root, ServeConfig(port=0))
        server._drain = asyncio.Event()
        if draining:
            server._drain.set()

        class _AlwaysShed:
            @contextlib.asynccontextmanager
            async def slot(self):
                raise AdmissionShed("admission queue full")
                yield  # pragma: no cover

        server.admission = _AlwaysShed()
        return server

    def test_shed_body_hints_retry_only_while_serving(self, store_root):
        route = resolve("GET", "/v1/summary")

        async def shed(draining):
            server = self._shedding_server(store_root, draining)
            return await server._query(route, time.monotonic())

        status, body = asyncio.run(shed(draining=False))
        assert status == 429
        assert body["retry_after"] == 1
        status, body = asyncio.run(shed(draining=True))
        assert status == 429
        assert "retry_after" not in body
        assert body["draining"] is True

    def test_retry_after_header_dropped_while_draining(self, store_root):
        class _Writer:
            def __init__(self):
                self.data = b""

            def write(self, chunk):
                self.data += chunk

            async def drain(self):
                pass

        async def respond(draining):
            server = AnalyticsServer(store_root, ServeConfig(port=0))
            server._drain = asyncio.Event()
            if draining:
                server._drain.set()
            writer = _Writer()
            await server._respond(writer, 429, {"error": "overloaded"})
            return writer.data.decode()

        assert "Retry-After: 1" in asyncio.run(respond(draining=False))
        assert "Retry-After" not in asyncio.run(respond(draining=True))


class TestDrain:
    def test_drain_finishes_inflight_then_refuses(
        self, store_root, tmp_path
    ):
        from repro.faults.fsfaults import FsFaults, fsfaults_env

        config = ServeConfig(port=0, max_concurrency=1, max_queue=0)
        spec = FsFaults(
            operator="slow-io",
            times=1000,
            sites=("store.read.column",),
            state_dir=str(tmp_path / "faults"),
            slow_seconds=0.1,
        )
        served = ServerThread(store_root, config)
        with served:
            with fsfaults_env(spec):
                slow = {}

                def hold():
                    slow["response"] = get(
                        served.host, served.port, "/v1/summary", timeout=60
                    )

                holder = threading.Thread(target=hold)
                holder.start()
                time.sleep(0.2)
                host, port = served.host, served.port
                served.stop()  # graceful drain while the scan is in flight
                holder.join()
        # The in-flight request was answered, not dropped.
        assert slow["response"].status == 200
        # New connections are refused after the drain.
        with pytest.raises(OSError):
            get(host, port, "/healthz", timeout=5)

    def test_drain_flushes_metrics(self, store_root, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        config = ServeConfig(port=0, metrics_path=metrics_path)
        with obs.observing(metrics_registry=obs.MetricsRegistry()):
            with ServerThread(store_root, config) as served:
                get(served.host, served.port, "/healthz")
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["gauge"]["serve.requests_total"] == 1
        assert snapshot["counter"]["serve.requests"] == 1


class TestConfigValidation:
    def test_bad_deadlines_rejected(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            ServeConfig(deadline_seconds=0)
        with pytest.raises(ValueError, match="max_deadline_seconds"):
            ServeConfig(deadline_seconds=10.0, max_deadline_seconds=5.0)
