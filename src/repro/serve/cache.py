"""Generation-keyed result cache with a last-good stale fallback.

Entries are keyed by ``(generation, query_key)`` where *generation* is
a digest over **both** the store manifest bytes and the quarantine
ledger bytes.  ``store append``/``merge`` republish the manifest and
``store repair``/``scrub`` rewrite the ledger, so either mutation
changes the generation and silently invalidates every cached result —
no explicit flush protocol to get wrong.

Only *complete* results (not degraded, not deadline-partial) are
cached; a degraded scan's answer is a property of which shards
happened to be damaged, not of the query.  Separately, the most recent
complete result per query is retained as ``last_good`` regardless of
generation: it is the end of the serving degradation ladder, returned
with ``stale: true`` when the store cannot answer at all.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """An immutable cached payload plus the generation that produced it."""

    payload: dict
    generation: str


class ResultCache:
    """Thread-safe LRU over ``(generation, query_key)`` pairs.

    Query threads in the serve executor share one instance; every
    public method takes the internal lock.  Payloads are returned
    as-is — callers must not mutate them.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], CachedResult]" = OrderedDict()
        self._last_good: Dict[str, CachedResult] = {}
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0

    def get(self, generation: str, query_key: str) -> Optional[CachedResult]:
        """Fresh lookup: same query against the same store generation."""
        with self._lock:
            entry = self._entries.get((generation, query_key))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((generation, query_key))
            self.hits += 1
            return entry

    def put(self, generation: str, query_key: str, payload: dict) -> None:
        """Store a *complete* result and refresh ``last_good``.

        Callers are responsible for never passing degraded or partial
        payloads here (see module docstring).
        """
        entry = CachedResult(payload=payload, generation=generation)
        with self._lock:
            self._entries[(generation, query_key)] = entry
            self._entries.move_to_end((generation, query_key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._last_good[query_key] = entry

    def last_good(self, query_key: str) -> Optional[CachedResult]:
        """Stale fallback: newest complete result for this query, any generation."""
        with self._lock:
            entry = self._last_good.get(query_key)
            if entry is not None:
                self.stale_hits += 1
            return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._last_good.clear()

    def to_dict(self) -> dict:
        """Counters for ``/v1/stats``."""
        with self._lock:
            return {
                "max_entries": self.max_entries,
                "entries": len(self._entries),
                "last_good_entries": len(self._last_good),
                "hits": self.hits,
                "misses": self.misses,
                "stale_hits": self.stale_hits,
                "evictions": self.evictions,
            }
