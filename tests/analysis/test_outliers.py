"""Tests for node outlier detection."""

import numpy as np
import pytest

from repro.analysis.outliers import find_node_outliers
from repro.records.record import FailureRecord, RootCause
from repro.records.trace import FailureTrace


def build_trace(counts, system=20):
    """counts: node_id -> failure count."""
    records = []
    t = 1.0e8
    for node, n in counts.items():
        for _ in range(n):
            records.append(
                FailureRecord(
                    start_time=t, end_time=t + 60.0, system_id=system,
                    node_id=node, root_cause=RootCause.HARDWARE,
                )
            )
            t += 1000.0
    return FailureTrace(records)


class TestConstructed:
    def test_clear_outlier_found(self):
        generator = np.random.Generator(np.random.PCG64(0))
        counts = {node: int(c) for node, c in
                  enumerate(generator.poisson(50, 40) + 1)}
        counts[40] = 500  # one node fails 10x the bulk
        outliers, bulk = find_node_outliers(build_trace(counts), 20)
        assert [o.node_id for o in outliers] == [40]
        assert outliers[0].excess_ratio > 5
        assert outliers[0].tail_probability < 1e-6

    def test_homogeneous_population_clean(self):
        generator = np.random.Generator(np.random.PCG64(1))
        counts = {node: int(c) for node, c in
                  enumerate(generator.poisson(80, 45) + 1)}
        outliers, _bulk = find_node_outliers(build_trace(counts), 20)
        assert outliers == []

    def test_outliers_do_not_contaminate_the_fit(self):
        # Robust fit: even 5 huge outliers leave the bulk median intact.
        generator = np.random.Generator(np.random.PCG64(2))
        counts = {node: int(c) for node, c in
                  enumerate(generator.poisson(50, 40) + 1)}
        for node in range(40, 45):
            counts[node] = 2000
        outliers, bulk = find_node_outliers(build_trace(counts), 20)
        assert {o.node_id for o in outliers} == {40, 41, 42, 43, 44}
        assert bulk.median == pytest.approx(50, rel=0.25)

    def test_min_nodes_enforced(self):
        with pytest.raises(ValueError):
            find_node_outliers(build_trace({0: 5, 1: 6}), 20)

    def test_threshold_validated(self):
        counts = {node: 10 for node in range(20)}
        with pytest.raises(ValueError):
            find_node_outliers(build_trace(counts), 20, threshold=0.3)


class TestOnSyntheticTrace:
    def test_finds_the_graphics_nodes(self, system20_trace):
        # The paper's discovery, automated: nodes 21-23 stick out.
        outliers, _bulk = find_node_outliers(system20_trace, 20, threshold=0.995)
        flagged = {outlier.node_id for outlier in outliers}
        assert flagged & {21, 22, 23}, f"flagged {flagged}"
        # And the flagged set is small — not half the machine.
        assert len(flagged) <= 6
