"""Statistical-equivalence suite: engines and worker counts agree.

The vectorized hot path earns its keep only if it is *exactly* the
reference model: for a fixed seed, the vectorized and scalar engines —
and serial vs. process-parallel execution — must produce
record-for-record identical traces.  Timestamps are compared via
``repr()``, i.e. exact IEEE-754 float equality, not a tolerance.
"""

from __future__ import annotations

import pytest

from repro.synth import TraceGenerator
from repro.synth.config import GeneratorConfig


def assert_traces_identical(a, b) -> None:
    """Record-for-record identity, with exact-float timestamps."""
    assert len(a) == len(b)
    for left, right in zip(a.records, b.records):
        assert repr(left.start_time) == repr(right.start_time)
        assert repr(left.end_time) == repr(right.end_time)
        assert left.record_id == right.record_id
        assert left.system_id == right.system_id
        assert left.node_id == right.node_id
        assert left.root_cause is right.root_cause
        assert left.low_level_cause is right.low_level_cause
        assert left.workload is right.workload


@pytest.mark.parametrize("seed", [0, 1, 7, 123])
def test_engines_identical_single_system(seed):
    generator = TraceGenerator(seed=seed)
    vectorized = generator.generate([20], engine="vectorized")
    scalar = generator.generate([20], engine="scalar")
    assert len(vectorized) > 1000
    assert_traces_identical(vectorized, scalar)


def test_engines_identical_burst_system():
    # System 19 runs the burst-injection adapter on top of the columns.
    generator = TraceGenerator(seed=5)
    assert_traces_identical(
        generator.generate([19], engine="vectorized"),
        generator.generate([19], engine="scalar"),
    )


def test_engines_identical_full_trace():
    """The flagship check: all 22 systems, both engines, exact floats."""
    generator = TraceGenerator(seed=1)
    vectorized = generator.generate(engine="vectorized")
    scalar = generator.generate(engine="scalar")
    assert len(vectorized) > 20_000
    assert_traces_identical(vectorized, scalar)


def test_parallel_identical_to_serial_full_trace():
    """workers=4 must be byte-identical to workers=1 over all systems."""
    generator = TraceGenerator(seed=1)
    serial = generator.generate(workers=1)
    parallel = generator.generate(workers=4)
    assert len(serial) > 20_000
    assert_traces_identical(serial, parallel)


def test_parallel_respects_engine_choice():
    generator = TraceGenerator(seed=2)
    serial = generator.generate([2, 13, 20], engine="scalar", workers=1)
    parallel = generator.generate([2, 13, 20], engine="scalar", workers=3)
    assert_traces_identical(serial, parallel)


def test_subset_generation_is_compositional():
    """A system's records are the same alone or within the full trace."""
    generator = TraceGenerator(seed=3)
    alone = generator.generate([20])
    full = generator.generate()
    full_20 = [r for r in full.records if r.system_id == 20]
    assert len(alone) == len(full_20)
    for left, right in zip(alone.records, full_20):
        assert repr(left.start_time) == repr(right.start_time)
        assert repr(left.end_time) == repr(right.end_time)
        assert left.node_id == right.node_id
        assert left.root_cause is right.root_cause


def test_iter_records_matches_generate():
    generator = TraceGenerator(seed=4)
    streamed = list(generator.iter_records([2, 20]))
    materialized = generator.generate([2, 20]).records
    assert len(streamed) == len(materialized)
    for left, right in zip(streamed, materialized):
        assert repr(left.start_time) == repr(right.start_time)
        assert left.record_id == right.record_id


def test_default_engine_config_knob():
    scalar_default = GeneratorConfig(default_engine="scalar")
    generator = TraceGenerator(seed=6, config=scalar_default)
    assert_traces_identical(
        generator.generate([13]),
        TraceGenerator(seed=6).generate([13], engine="vectorized"),
    )


def test_unknown_engine_rejected():
    generator = TraceGenerator(seed=0)
    with pytest.raises(ValueError, match="engine"):
        generator.generate([13], engine="turbo")
    with pytest.raises(ValueError):
        GeneratorConfig(default_engine="turbo")


def test_invalid_workers_rejected():
    generator = TraceGenerator(seed=0)
    with pytest.raises(ValueError, match="workers"):
        generator.generate([13], workers=0)
