"""Chaos-campaign engine: scenario drills, invariants, determinism."""

from __future__ import annotations

import json

import pytest

from repro.faults.campaign import (
    FAULT_KINDS,
    PRESETS,
    SCORECARD_NAME,
    TIMINGS_NAME,
    WORKFLOWS,
    CampaignResult,
    InvariantCheck,
    Scenario,
    ScenarioOutcome,
    run_campaign,
    run_scenario,
)


class TestScenarioValidation:
    def test_unknown_workflow_rejected(self):
        with pytest.raises(ValueError, match="workflow"):
            Scenario("bad", "compile")

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="fault"):
            Scenario("bad", "generate", fault="cosmic-rays")

    def test_active_fault_needs_operator(self):
        with pytest.raises(ValueError, match="operator"):
            Scenario("bad", "generate", fault="fs")


class TestPresets:
    def test_smoke_is_a_subset_of_full(self):
        smoke = {scenario.name for scenario in PRESETS["smoke"]}
        full = {scenario.name for scenario in PRESETS["full"]}
        assert smoke < full

    def test_scenario_names_unique_per_preset(self):
        for scenarios in PRESETS.values():
            names = [scenario.name for scenario in scenarios]
            assert len(names) == len(set(names))

    def test_presets_cover_the_fault_matrix(self):
        # Every fault kind and every workflow appears somewhere in the
        # full preset — the matrix claim of the campaign docstring.
        full = PRESETS["full"]
        assert {s.fault for s in full} == set(FAULT_KINDS)
        assert {s.workflow for s in full} == set(WORKFLOWS)

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown preset"):
            run_campaign("warp-speed", root=tmp_path)


class TestScenarioDrills:
    def test_clean_baseline_passes(self, tmp_path):
        scenario = Scenario("baseline", "generate")
        from repro.faults.campaign import _reference_csv

        reference = _reference_csv(7, scenario.systems, {}, tmp_path)
        outcome = run_scenario(scenario, 7, tmp_path / "s", reference)
        assert outcome.ok
        assert outcome.injections == 0
        assert outcome.attempts == 1
        names = [check.name for check in outcome.invariants]
        assert "trace-identical" in names
        assert "journal-consistent" in names

    def test_enospc_generate_recovers_identically(self, tmp_path):
        scenario = Scenario(
            "enospc", "generate", fault="fs", operator="enospc",
            sites=("journal.append",),
        )
        from repro.faults.campaign import _reference_csv

        reference = _reference_csv(7, scenario.systems, {}, tmp_path)
        outcome = run_scenario(scenario, 7, tmp_path / "s", reference)
        assert outcome.ok, outcome.failed_invariants() or outcome.error
        assert outcome.injections >= 1
        assert outcome.attempts >= 2  # the fault cost at least one retry

    def test_write_drill_protects_original(self, tmp_path):
        scenario = Scenario(
            "torn-csv", "write-csv", fault="fs", operator="torn-write",
            sites=("atomic.text",),
        )
        from repro.faults.campaign import _reference_csv

        reference = _reference_csv(7, scenario.systems, {}, tmp_path)
        outcome = run_scenario(scenario, 7, tmp_path / "s", reference)
        assert outcome.ok, outcome.failed_invariants() or outcome.error
        checks = {check.name: check for check in outcome.invariants}
        assert checks["original-untouched"].passed
        assert checks["no-partial-artifacts"].passed

    def test_harness_error_is_contained(self, tmp_path, monkeypatch):
        # A bug in a drill must produce a failed outcome, not take down
        # the campaign.
        import repro.faults.campaign as campaign_mod

        def explode(*args, **kwargs):
            raise RuntimeError("drill bug")

        monkeypatch.setattr(campaign_mod, "_run_generate", explode)
        outcome = run_scenario(Scenario("boom", "generate"), 7, tmp_path / "s")
        assert not outcome.ok
        assert "harness error" in outcome.error


class TestOutcomeSemantics:
    def test_ok_requires_completion_and_invariants(self):
        scenario = Scenario("x", "generate")
        good = InvariantCheck("a", True)
        bad = InvariantCheck("b", False, "broke")
        assert ScenarioOutcome(scenario, 1, True, 0, invariants=(good,)).ok
        assert not ScenarioOutcome(scenario, 1, False, 0, invariants=(good,)).ok
        outcome = ScenarioOutcome(scenario, 1, True, 0, invariants=(good, bad))
        assert not outcome.ok
        assert outcome.failed_invariants() == ["b"]

    def test_campaign_ok_rolls_up(self):
        scenario = Scenario("x", "generate")
        ok = ScenarioOutcome(scenario, 1, True, 0)
        failed = ScenarioOutcome(scenario, 1, False, 0, error="nope")
        assert CampaignResult("smoke", 7, (ok,)).ok
        assert not CampaignResult("smoke", 7, (ok, failed)).ok


class TestCampaignRun:
    @pytest.fixture(scope="class")
    def smoke(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("campaign")
        return root, run_campaign("smoke", seed=7, root=root)

    def test_smoke_all_invariants_hold(self, smoke):
        _, result = smoke
        assert result.ok, result.describe()

    def test_scorecard_written_atomically(self, smoke):
        root, result = smoke
        payload = json.loads((root / SCORECARD_NAME).read_text())
        assert payload == result.scorecard()
        assert payload["kind"] == "repro-robustness-scorecard"
        assert payload["summary"]["scenarios"] == len(PRESETS["smoke"])
        assert payload["summary"]["invariants_failed"] == 0
        assert payload["summary"]["total_injections"] >= 1

    def test_timings_sidecar_separate_from_scorecard(self, smoke):
        root, result = smoke
        timings = json.loads((root / TIMINGS_NAME).read_text())
        assert set(timings["wall_times_seconds"]) == {
            outcome.scenario.name for outcome in result.outcomes
        }
        # The deterministic artifact must not contain timings.
        assert "wall_times" not in json.loads((root / SCORECARD_NAME).read_text())

    def test_scorecard_contains_no_campaign_paths(self, smoke):
        root, _ = smoke
        text = (root / SCORECARD_NAME).read_text()
        assert str(root) not in text

    def test_describe_mentions_every_scenario(self, smoke):
        _, result = smoke
        text = result.describe()
        for outcome in result.outcomes:
            assert outcome.scenario.name in text
        assert "ALL INVARIANTS HOLD" in text


class TestDeterminism:
    def test_same_seed_byte_identical_scorecards(self, tmp_path):
        first = run_campaign("smoke", seed=7, root=tmp_path / "a")
        second = run_campaign("smoke", seed=7, root=tmp_path / "b")
        assert (tmp_path / "a" / SCORECARD_NAME).read_bytes() == (
            tmp_path / "b" / SCORECARD_NAME
        ).read_bytes()
        assert first.scorecard() == second.scorecard()
