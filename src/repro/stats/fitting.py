"""Maximum-likelihood fitting, implemented from scratch.

Closed forms where they exist (exponential, lognormal, normal, Poisson)
and profile-likelihood Newton iterations for the Weibull and gamma
shapes.  :func:`fit_all` fits the paper's four continuous candidates
and ranks them by negative log-likelihood — exactly the methodology of
Section 3.

Variance convention
-------------------
Every standard deviation in this package is the **population / MLE
form** (``np.std`` with its default ``ddof=0``), never the
Bessel-corrected ``ddof=1`` sample form.  MLE scale estimates divide
by n, and :class:`~repro.stats.empirical.EmpiricalDistribution`
matches so empirical-vs-fitted comparisons are apples to apples.
``tests/stats/test_ddof_consistency.py`` scans the package source to
keep this from drifting.

Zero handling
-------------
The Weibull, gamma and lognormal likelihoods require strictly positive
observations, but real interarrival data contains exact zeros
(simultaneous failures, Figure 6(c)).  :func:`prepare_positive` makes
the caller's policy explicit: ``"error"`` (default), ``"drop"``, or
``"clamp"`` to a small positive epsilon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Literal, Sequence, Tuple, Union

import numpy as np
from scipy import special

from repro.stats.errors import DegenerateSampleError
from repro.stats.distributions import (
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Weibull,
)
from repro.stats.gof import aic, bic, ks_statistic

__all__ = [
    "FitError",
    "DegenerateFitError",
    "FitResult",
    "FitOutcome",
    "prepare_positive",
    "fit_exponential",
    "fit_weibull",
    "fit_gamma",
    "fit_lognormal",
    "fit_normal",
    "fit_poisson",
    "fit_all",
    "fit_all_discrete",
    "fit_all_safe",
    "fit_all_discrete_safe",
]

ArrayLike = Union[Sequence[float], np.ndarray]
ZeroPolicy = Literal["error", "drop", "clamp"]


class FitError(ValueError):
    """Raised when a sample cannot be fitted."""


class DegenerateFitError(FitError, DegenerateSampleError):
    """The sample is too thin or flat to fit — a data condition, not a bug.

    Raised for too-few observations, all-equal values (zero spread),
    and non-positive sample means.  Being both a :class:`FitError` and
    a :class:`~repro.stats.errors.DegenerateSampleError`, it is caught
    by existing ``except FitError`` handlers while letting the report
    layer and robustness scorecards classify the failure as *degraded*
    (thin data) rather than *failed* (bug).
    """


@dataclass(frozen=True)
class FitResult:
    """A fitted distribution with its goodness-of-fit measures.

    Attributes
    ----------
    distribution:
        The fitted parametric distribution.
    nll:
        Negative log-likelihood of the data (lower is better; the
        paper's ranking criterion).
    aic / bic:
        Information criteria penalizing parameter count.
    ks:
        Kolmogorov-Smirnov statistic, max |ECDF - CDF|.
    n:
        Sample size the fit used.
    """

    distribution: Distribution
    nll: float
    aic: float
    bic: float
    ks: float
    n: int

    @property
    def name(self) -> str:
        """The distribution's short name."""
        return self.distribution.name

    def describe(self) -> str:
        """One-line rendering for fit-comparison tables."""
        return (
            f"{self.distribution.describe():<42} nll={self.nll:12.2f}  "
            f"AIC={self.aic:12.2f}  KS={self.ks:.4f}"
        )


def _as_clean_array(data: ArrayLike, minimum_size: int = 2) -> np.ndarray:
    values = np.asarray(data, dtype=float)
    if values.ndim != 1:
        values = values.ravel()
    if values.size < minimum_size:
        raise DegenerateFitError(
            f"need at least {minimum_size} observations, got {values.size}"
        )
    if not np.all(np.isfinite(values)):
        raise FitError("sample contains non-finite values")
    return values


def prepare_positive(
    data: ArrayLike,
    zero_policy: ZeroPolicy = "error",
    epsilon: float = 1.0,
) -> np.ndarray:
    """Return a strictly positive sample according to ``zero_policy``.

    Parameters
    ----------
    data:
        Raw observations, must be non-negative.
    zero_policy:
        ``"error"`` — raise on any non-positive value;
        ``"drop"`` — remove non-positive values;
        ``"clamp"`` — replace non-positive values with ``epsilon``.
    epsilon:
        The clamp value (default 1.0 — one second, well below the
        decades-of-seconds scale of interarrival data).
    """
    if zero_policy not in ("error", "drop", "clamp"):
        raise FitError(f"unknown zero_policy {zero_policy!r}")
    values = _as_clean_array(data)
    if np.any(values < 0):
        raise FitError("sample contains negative values")
    nonpositive = values <= 0
    if not np.any(nonpositive):
        return values
    if zero_policy == "error":
        raise FitError(
            f"sample contains {int(np.sum(nonpositive))} non-positive values; "
            'pass zero_policy="drop" or "clamp"'
        )
    if zero_policy == "drop":
        remaining = values[~nonpositive]
        if remaining.size < 2:
            raise DegenerateFitError(
                "fewer than 2 positive observations after dropping zeros"
            )
        return remaining
    if zero_policy == "clamp":
        if epsilon <= 0:
            raise FitError(f"epsilon must be positive, got {epsilon}")
        clamped = values.copy()
        clamped[nonpositive] = epsilon
        return clamped
    raise FitError(f"unknown zero_policy {zero_policy!r}")


def _make_result(distribution: Distribution, values: np.ndarray) -> FitResult:
    nll = distribution.nll(values)
    return FitResult(
        distribution=distribution,
        nll=nll,
        aic=aic(nll, distribution.n_params),
        bic=bic(nll, distribution.n_params, values.size),
        ks=ks_statistic(values, distribution),
        n=int(values.size),
    )


# Closed-form fitters ------------------------------------------------------------


def fit_exponential(data: ArrayLike) -> FitResult:
    """MLE exponential fit: scale = sample mean."""
    values = _as_clean_array(data)
    if np.any(values < 0):
        raise FitError("exponential requires non-negative data")
    mean = float(np.mean(values))
    if mean <= 0:
        raise DegenerateFitError("exponential requires positive sample mean")
    return _make_result(Exponential(scale=mean), values)


def fit_lognormal(data: ArrayLike) -> FitResult:
    """MLE lognormal fit: mu, sigma are the mean/std of log data.

    sigma is the population standard deviation (``ddof=0``) — the
    maximum-likelihood estimator, not the Bessel-corrected sample form.
    Every fitter in :mod:`repro.stats` uses this convention.
    """
    values = _as_clean_array(data)
    if np.any(values <= 0):
        raise FitError("lognormal requires strictly positive data (see prepare_positive)")
    logs = np.log(values)
    mu = float(np.mean(logs))
    sigma = float(np.std(logs))  # ddof=0: MLE convention
    if sigma <= 0:
        raise DegenerateFitError("degenerate sample (all values equal)")
    return _make_result(LogNormal(mu=mu, sigma=sigma), values)


def fit_normal(data: ArrayLike) -> FitResult:
    """MLE normal fit: sample mean and population std (``ddof=0``)."""
    values = _as_clean_array(data)
    sigma = float(np.std(values))  # ddof=0: MLE convention
    if sigma <= 0:
        raise DegenerateFitError("degenerate sample (all values equal)")
    return _make_result(Normal(mu=float(np.mean(values)), sigma=sigma), values)


def fit_poisson(data: ArrayLike) -> FitResult:
    """MLE Poisson fit on integer counts: rate = sample mean."""
    values = _as_clean_array(data)
    if np.any(values < 0) or not np.allclose(values, np.round(values)):
        raise FitError("Poisson requires non-negative integer counts")
    rate = float(np.mean(values))
    if rate <= 0:
        raise DegenerateFitError("Poisson requires a positive sample mean")
    return _make_result(Poisson(rate=rate), values)


# Newton fitters ------------------------------------------------------------------


def _weibull_shape_equation(k: float, values: np.ndarray, mean_log: float) -> Tuple[float, float]:
    """Value and derivative of the Weibull profile-likelihood equation.

    The MLE shape k solves  sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0.
    Computed in a numerically stable way by factoring out max(x)^k.
    """
    logs = np.log(values)
    # Stabilize x^k by shifting in log space.
    shifted = np.exp(k * (logs - np.max(logs)))
    s0 = float(np.sum(shifted))
    s1 = float(np.sum(shifted * logs))
    s2 = float(np.sum(shifted * logs**2))
    g = s1 / s0 - 1.0 / k - mean_log
    g_prime = (s2 * s0 - s1**2) / s0**2 + 1.0 / k**2
    return g, g_prime


def fit_weibull(
    data: ArrayLike, tolerance: float = 1e-10, max_iterations: int = 200
) -> FitResult:
    """MLE Weibull fit via Newton iteration on the profile likelihood.

    Starts from the standard moment-style initial guess
    k0 = 1.2 / std(ln x) and falls back to bisection if Newton leaves
    the bracket.  With the shape known, the scale has the closed form
    scale = (mean(x^k))^(1/k).
    """
    values = prepare_positive(data)
    logs = np.log(values)
    mean_log = float(np.mean(logs))
    std_log = float(np.std(logs))  # ddof=0: MLE convention
    if std_log <= 0:
        raise DegenerateFitError("degenerate sample (all values equal)")
    k = 1.2 / std_log

    low, high = 1e-3, 1e3
    for _ in range(max_iterations):
        g, g_prime = _weibull_shape_equation(k, values, mean_log)
        # Maintain the bisection bracket: g is increasing in -1/k term...
        # empirically g(k) is monotone increasing in k for positive data.
        if g > 0:
            high = min(high, k)
        else:
            low = max(low, k)
        step = g / g_prime
        k_next = k - step
        if not (low < k_next < high):
            k_next = 0.5 * (low + high)
        if abs(k_next - k) < tolerance * max(1.0, k):
            k = k_next
            break
        k = k_next
    shape = float(k)
    # Stable scale computation: mean(x^k) via log-space shift.
    max_log = float(np.max(logs))
    mean_pow = float(np.mean(np.exp(shape * (logs - max_log))))
    scale = math.exp(max_log + math.log(mean_pow) / shape)
    return _make_result(Weibull(shape=shape, scale=scale), values)


def fit_gamma(
    data: ArrayLike, tolerance: float = 1e-10, max_iterations: int = 200
) -> FitResult:
    """MLE gamma fit via Newton iteration on the shape equation.

    The MLE shape k solves  ln(k) - digamma(k) = ln(mean x) - mean(ln x),
    started from the Minka/Greenwood-Durand approximation; the scale is
    then mean(x) / k.
    """
    values = prepare_positive(data)
    mean = float(np.mean(values))
    mean_log = float(np.mean(np.log(values)))
    s = math.log(mean) - mean_log
    # s = log E[x] - E[log x] >= 0, zero iff the sample is constant.
    # A near-constant sample leaves s a rounding-noise positive, which
    # sends Minka's initialization to k ~ 1/(2s) and underflows the
    # Newton derivative — treat it as degenerate too.
    if s <= 1e-12:
        raise DegenerateFitError("degenerate sample (zero log-spread)")
    # Minka's initialization.
    k = (3.0 - s + math.sqrt((s - 3.0) ** 2 + 24.0 * s)) / (12.0 * s)
    for _ in range(max_iterations):
        g = math.log(k) - float(special.digamma(k)) - s
        g_prime = 1.0 / k - float(special.polygamma(1, k))
        if g_prime == 0.0 or not math.isfinite(g_prime):
            break
        step = g / g_prime
        k_next = k - step
        if k_next <= 0:
            k_next = k / 2.0
        if abs(k_next - k) < tolerance * max(1.0, k):
            k = k_next
            break
        k = k_next
    shape = float(k)
    return _make_result(Gamma(shape=shape, scale=mean / shape), values)


# Ranked fitting ------------------------------------------------------------------

#: The paper's four candidate distributions for durations.
CONTINUOUS_FITTERS = {
    "exponential": fit_exponential,
    "weibull": fit_weibull,
    "gamma": fit_gamma,
    "lognormal": fit_lognormal,
}

#: Candidates for the per-node failure-count analysis (Figure 3(b)).
COUNT_FITTERS = {
    "poisson": fit_poisson,
    "normal": fit_normal,
    "lognormal": fit_lognormal,
}


def _raise_no_candidate(errors: List[FitError]) -> None:
    """Raise the right "no candidate" error for the collected failures.

    Degenerate only when *every* candidate failed on a degenerate
    sample: one non-degenerate failure means something other than thin
    data went wrong, and that must not be reported as "data too thin".
    """
    if errors and all(
        isinstance(error, DegenerateSampleError) for error in errors
    ):
        raise DegenerateFitError("no candidate distribution could be fitted")
    raise FitError("no candidate distribution could be fitted")


def _fit_ranked(
    fitters: Dict[str, object], values: np.ndarray
) -> List[FitResult]:
    results = []
    errors: List[FitError] = []
    for name, fitter in fitters.items():
        try:
            results.append(fitter(values))
        except FitError as exc:
            # A candidate that cannot be fitted (e.g. lognormal on data
            # with zeros) is simply excluded from the ranking.
            errors.append(exc)
            continue
    if not results:
        _raise_no_candidate(errors)
    results.sort(key=lambda result: result.nll)
    return results


def fit_all(
    data: ArrayLike,
    zero_policy: ZeroPolicy = "error",
    epsilon: float = 1.0,
) -> List[FitResult]:
    """Fit exponential, Weibull, gamma and lognormal; rank by NLL.

    This is the paper's Section 3 methodology in one call.  The best
    fit is ``fit_all(data)[0]``.
    """
    values = prepare_positive(data, zero_policy=zero_policy, epsilon=epsilon)
    return _fit_ranked(CONTINUOUS_FITTERS, values)


def describe_fits(fits: Sequence[FitResult]) -> str:
    """A comparison table of ranked fits, with Akaike weights.

    One line per candidate: parameters, NLL, AIC, KS, and the share of
    Akaike support ("the lognormal carries 97% of the evidence").
    """
    from repro.stats.gof import aic_weights

    if not fits:
        raise FitError("describe_fits requires at least one fit")
    weights = aic_weights([fit.aic for fit in fits])
    lines = [
        f"{'distribution':<42} {'NLL':>12} {'AIC':>12} {'KS':>8} {'weight':>8}"
    ]
    for fit, weight in zip(fits, weights):
        lines.append(
            f"{fit.distribution.describe():<42} {fit.nll:>12.2f} "
            f"{fit.aic:>12.2f} {fit.ks:>8.4f} {weight:>8.3f}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class FitOutcome:
    """The result of a fitting attempt that cannot crash the caller.

    Degenerate samples are the normal case on messy operational data
    (a node with one failure, a slice where every repair time is
    identical).  The ``fit_all*`` functions raise :class:`FitError`
    for such samples; the ``*_safe`` variants return this status object
    instead, so analysis and report code can degrade per-slice rather
    than abort a whole run.

    Attributes
    ----------
    status:
        ``"ok"`` when at least one candidate was fitted;
        ``"degenerate"`` when fitting failed because the sample is too
        thin/flat (:class:`DegenerateFitError` — a data condition, not
        a bug); ``"failed"`` for every other :class:`FitError`.
    fits:
        Ranked fits (empty when not ok).
    error:
        The :class:`FitError` message when not ok, else ``None``.
    """

    status: str
    fits: Tuple[FitResult, ...] = ()
    error: Union[str, None] = None

    @property
    def ok(self) -> bool:
        """True when fitting succeeded."""
        return self.status == "ok"

    @property
    def degenerate(self) -> bool:
        """True when fitting failed because the data is too thin."""
        return self.status == "degenerate"

    @property
    def best(self) -> Union[FitResult, None]:
        """The winning fit, or ``None`` when fitting failed."""
        return self.fits[0] if self.fits else None

    def describe(self) -> str:
        """One line per fit, or the failure reason."""
        if self.degenerate:
            return f"fit failed (degenerate sample): {self.error}"
        if not self.ok:
            return f"fit failed: {self.error}"
        return "\n".join(fit.describe() for fit in self.fits)


def _failed_outcome(exc: FitError) -> FitOutcome:
    status = "degenerate" if isinstance(exc, DegenerateSampleError) else "failed"
    return FitOutcome(status=status, error=str(exc))


def fit_all_safe(
    data: ArrayLike,
    zero_policy: ZeroPolicy = "error",
    epsilon: float = 1.0,
) -> FitOutcome:
    """:func:`fit_all` that reports failure as a status, not a raise."""
    try:
        return FitOutcome(status="ok", fits=tuple(fit_all(data, zero_policy, epsilon)))
    except FitError as exc:
        return _failed_outcome(exc)


def fit_all_discrete_safe(data: ArrayLike) -> FitOutcome:
    """:func:`fit_all_discrete` that reports failure as a status."""
    try:
        return FitOutcome(status="ok", fits=tuple(fit_all_discrete(data)))
    except FitError as exc:
        return _failed_outcome(exc)


def fit_all_discrete(data: ArrayLike) -> List[FitResult]:
    """Fit Poisson, normal and lognormal to counts; rank by NLL.

    The candidate set of Figure 3(b).  Lognormal drops zero counts if
    present (it cannot support them), which matches the figure's use of
    nodes with at least one failure.
    """
    values = _as_clean_array(data)
    results = []
    errors: List[FitError] = []
    for name, fitter in COUNT_FITTERS.items():
        try:
            if name == "lognormal":
                results.append(fitter(prepare_positive(values, zero_policy="drop")))
            else:
                results.append(fitter(values))
        except FitError as exc:
            errors.append(exc)
            continue
    if not results:
        _raise_no_candidate(errors)
    results.sort(key=lambda result: result.nll)
    return results
