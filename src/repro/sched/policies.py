"""Node-placement policies.

A policy picks which free nodes a job runs on.  The interesting
comparison (Section 5.1's suggestion) is random placement versus
placement informed by per-node failure history — possible only because
per-node failure rates are genuinely heterogeneous (Figure 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "PlacementPolicy",
    "RandomPolicy",
    "LeastFailuresPolicy",
    "ReliabilityAwarePolicy",
]


class PlacementPolicy(ABC):
    """Chooses nodes for a job from the free set."""

    #: Short name for result tables.
    name: str = "policy"

    @abstractmethod
    def choose(self, free_nodes: Sequence[int], count: int, now: float) -> List[int]:
        """Pick ``count`` nodes from ``free_nodes`` (len >= count)."""

    def observe_failure(self, node_id: int, when: float) -> None:
        """Hook: a failure happened on ``node_id`` (online policies learn)."""


class RandomPolicy(PlacementPolicy):
    """Uniform random placement — the baseline scheduler."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._generator = np.random.Generator(np.random.PCG64(seed))

    def choose(self, free_nodes: Sequence[int], count: int, now: float) -> List[int]:
        if count > len(free_nodes):
            raise ValueError(f"need {count} nodes, only {len(free_nodes)} free")
        picked = self._generator.choice(len(free_nodes), size=count, replace=False)
        return [free_nodes[int(index)] for index in picked]


class ReliabilityAwarePolicy(PlacementPolicy):
    """Prefer nodes with the lowest *historical* failure rate.

    Rates come from a training window of the trace (supplied at
    construction); ties break by node ID for determinism.
    """

    name = "reliability-aware"

    def __init__(self, trained_rates: Dict[int, float]) -> None:
        if not trained_rates:
            raise ValueError("trained_rates is empty")
        self._rates = dict(trained_rates)

    def choose(self, free_nodes: Sequence[int], count: int, now: float) -> List[int]:
        if count > len(free_nodes):
            raise ValueError(f"need {count} nodes, only {len(free_nodes)} free")
        ranked = sorted(free_nodes, key=lambda node: (self._rates.get(node, 0.0), node))
        return list(ranked[:count])


class LeastFailuresPolicy(PlacementPolicy):
    """Online learner: prefer nodes with the fewest failures seen so far.

    Unlike :class:`ReliabilityAwarePolicy` it needs no training window;
    it accumulates counts from ``observe_failure`` during the run.
    """

    name = "least-failures-online"

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def observe_failure(self, node_id: int, when: float) -> None:
        self._counts[node_id] = self._counts.get(node_id, 0) + 1

    def choose(self, free_nodes: Sequence[int], count: int, now: float) -> List[int]:
        if count > len(free_nodes):
            raise ValueError(f"need {count} nodes, only {len(free_nodes)} free")
        ranked = sorted(free_nodes, key=lambda node: (self._counts.get(node, 0), node))
        return list(ranked[:count])
