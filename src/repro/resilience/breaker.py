"""Per-shard circuit breaker with a degradation ladder.

After ``failure_threshold`` failures in a stage, a shard is *degraded*
to the next stage (for trace generation: ``vectorized`` → ``scalar``)
rather than retried forever; when the last stage is exhausted, the
breaker *opens* and the shard is skipped — recorded as a structured
skip in the :class:`~repro.resilience.report.RunReport` instead of
failing the whole run.  This mirrors the graceful-degradation posture
the paper observes in production HPC tooling: lose a component, not
the job.

Long-running processes additionally need a *path back to closed*: a
batch run can afford to leave a breaker open until exit, but the
analytics service (``repro serve``) would otherwise serve degraded
results forever after one bad spell.  Setting ``cooldown_seconds``
enables **time-based recovery**: once an open breaker's cooldown
elapses, the next :meth:`CircuitBreaker.allow` admits exactly one
*half-open probe*; a success fully closes the breaker (back to stage
0, failure streak cleared), a failure re-opens it and restarts the
cooldown.  The clock is injectable so tests drive the state machine
without sleeping.  With the default ``cooldown_seconds=None`` the
original open-forever semantics are untouched — the generation
supervisor's behavior is byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "CircuitBreaker",
    "CLOSED",
    "OPEN_STATE",
    "HALF_OPEN",
]

#: Failure-handling actions returned by :meth:`CircuitBreaker.record_failure`.
RETRY = "retry"
DEGRADE = "degrade"
OPEN = "open"

#: Breaker states reported by :meth:`CircuitBreaker.state`.
CLOSED = "closed"
OPEN_STATE = "open"
HALF_OPEN = "half-open"


@dataclass
class _ShardState:
    stage_index: int = 0
    failures: int = 0
    opened_at: Optional[float] = None
    half_open: bool = False


@dataclass
class CircuitBreaker:
    """Track per-shard failures and walk the degradation ladder.

    Parameters
    ----------
    stages:
        Ordered degradation ladder; a shard starts in ``stages[0]`` and
        moves right after ``failure_threshold`` failures per stage.
    failure_threshold:
        Failures tolerated in one stage before degrading.
    cooldown_seconds:
        Time-based recovery: how long an open breaker stays open before
        the next :meth:`allow` admits a half-open probe.  ``None``
        (default) disables recovery — open stays open, exactly the
        batch-supervisor semantics.
    clock:
        Monotonic clock used for the cooldown; injectable for tests.
    """

    stages: Tuple[str, ...] = ("primary",)
    failure_threshold: int = 3
    cooldown_seconds: Optional[float] = None
    clock: Callable[[], float] = time.monotonic
    _shards: Dict[str, _ShardState] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.stages = tuple(self.stages)
        if not self.stages:
            raise ValueError("stages must be non-empty")
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_seconds is not None and self.cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown_seconds must be > 0 or None, got "
                f"{self.cooldown_seconds}"
            )

    def _state(self, key: str) -> _ShardState:
        return self._shards.setdefault(key, _ShardState())

    def stage(self, key: str) -> Optional[str]:
        """The shard's current stage, or None when the breaker is open."""
        state = self._state(key)
        if state.stage_index >= len(self.stages):
            return None
        return self.stages[state.stage_index]

    def is_open(self, key: str) -> bool:
        return self.stage(key) is None

    def state(self, key: str) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` for ``key``."""
        state = self._state(key)
        if state.half_open:
            return HALF_OPEN
        return OPEN_STATE if state.stage_index >= len(self.stages) else CLOSED

    def allow(self, key: str) -> bool:
        """Whether a call through this breaker may proceed right now.

        Closed (and half-open, while the probe is in flight) admit;
        open admits only once ``cooldown_seconds`` have elapsed since
        the breaker opened, transitioning to half-open for one probe.
        With ``cooldown_seconds=None`` an open breaker never re-admits.
        """
        state = self._state(key)
        if state.stage_index < len(self.stages) or state.half_open:
            return True
        if self.cooldown_seconds is None or state.opened_at is None:
            return False
        if self.clock() - state.opened_at < self.cooldown_seconds:
            return False
        state.half_open = True
        return True

    def record_success(self, key: str) -> None:
        """A completed attempt closes the shard's failure streak.

        A half-open probe's success fully closes the breaker: back to
        the first ladder stage with a clean failure count.
        """
        state = self._state(key)
        if state.half_open:
            state.stage_index = 0
            state.opened_at = None
            state.half_open = False
        state.failures = 0

    def record_failure(self, key: str) -> str:
        """Count a failure; returns ``"retry"``, ``"degrade"`` or ``"open"``."""
        state = self._state(key)
        if state.stage_index >= len(self.stages):
            # A failed half-open probe re-opens and restarts the cooldown.
            if state.half_open:
                state.half_open = False
                state.opened_at = self.clock()
            return OPEN
        state.failures += 1
        if state.failures < self.failure_threshold:
            return RETRY
        state.stage_index += 1
        state.failures = 0
        if state.stage_index >= len(self.stages):
            state.opened_at = self.clock()
            state.half_open = False
            return OPEN
        return DEGRADE

    def failures(self, key: str) -> int:
        return self._state(key).failures
