"""Root-cause sampling (Figure 1, Section 4).

Each failure gets a high-level cause drawn from the hardware type's
mixture, then a low-level detail drawn from the cause's detail mixture.
Two refinements match the paper:

* **Unknown-cause era** (Section 4): for types D and G — the first
  large SMP cluster and the first NUMA clusters — the fraction of
  failures with unknown root cause started above 90% and dropped below
  10% within ~2 years as administrators learned the systems.  Modeled
  as an age-dependent probability that a failure's diagnosis is lost
  (cause replaced by UNKNOWN).
* **Burst causes**: correlated simultaneous failures share their
  parent's cause (a power outage hits many nodes at once); handled in
  :mod:`repro.synth.correlated`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.records.codes import CAUSE_CODE, DETAIL_CODE, NO_DETAIL
from repro.records.record import LowLevelCause, RootCause
from repro.records.system import HardwareType
from repro.records.timeutils import SECONDS_PER_MONTH
from repro.synth.config import GeneratorConfig

__all__ = ["CauseModel"]


class CauseModel:
    """Samples (root cause, low-level cause) pairs for one system."""

    def __init__(self, config: GeneratorConfig, hardware_type: HardwareType) -> None:
        self._config = config
        self._hardware_type = hardware_type
        mix = config.cause_mix[hardware_type]
        self._causes = tuple(mix.keys())
        self._cause_probs = np.array([mix[cause] for cause in self._causes])
        self._detail_tables: Dict[RootCause, Tuple[Tuple[LowLevelCause, ...], np.ndarray]] = {}
        for cause, table in (
            (RootCause.HARDWARE, config.hardware_detail[hardware_type]),
            (RootCause.SOFTWARE, config.software_detail[hardware_type]),
            (RootCause.NETWORK, config.network_detail),
            (RootCause.ENVIRONMENT, config.environment_detail),
            (RootCause.HUMAN, config.human_detail),
        ):
            details = tuple(table.keys())
            self._detail_tables[cause] = (
                details,
                np.array([table[detail] for detail in details]),
            )
        self._unknown_era = hardware_type in config.unknown_era_types
        self._cause_cdf = np.cumsum(self._cause_probs)
        self._unknown_index = (
            self._causes.index(RootCause.UNKNOWN)
            if RootCause.UNKNOWN in self._causes
            else -1
        )
        self._detail_cdfs: Dict[int, np.ndarray] = {
            self._causes.index(cause): np.cumsum(probs)
            for cause, (details, probs) in self._detail_tables.items()
            if cause in self._causes
        }
        # Canonical-code alphabets: map this model's *internal* batch
        # indices (mixture order) to the stable codes of
        # :mod:`repro.records.codes` (enum definition order).
        self._cause_code_alphabet = np.array(
            [CAUSE_CODE[cause] for cause in self._causes], dtype=np.int8
        )
        self._detail_code_tables: Dict[int, np.ndarray] = {}
        for index in self._detail_cdfs:
            details, _probs = self._detail_tables[self._causes[index]]
            self._detail_code_tables[index] = np.array(
                [DETAIL_CODE[detail] for detail in details], dtype=np.int8
            )

    @property
    def causes(self) -> Tuple[RootCause, ...]:
        """The cause alphabet, in the order batch indices refer to."""
        return self._causes

    def unknown_probability(self, age_seconds: float) -> float:
        """Extra probability that a failure's diagnosis is lost at ``age``.

        Zero for types outside the unknown era; otherwise decays
        exponentially from ``unknown_era_initial`` so the *total*
        unknown fraction starts above 90% and falls under 10% within
        about two years.
        """
        if not self._unknown_era:
            return 0.0
        tau = self._config.unknown_era_decay_months * SECONDS_PER_MONTH
        return self._config.unknown_era_initial * math.exp(-max(age_seconds, 0.0) / tau)

    def sample(
        self, generator: np.random.Generator, age_seconds: float
    ) -> Tuple[RootCause, Optional[LowLevelCause]]:
        """Draw a (root cause, low-level cause) pair for a failure.

        Parameters
        ----------
        generator:
            RNG to draw from.
        age_seconds:
            System age at failure time (drives the unknown-cause era).
        """
        cause = self._causes[int(generator.choice(len(self._causes), p=self._cause_probs))]
        lost = self.unknown_probability(age_seconds)
        if lost > 0.0 and cause is not RootCause.UNKNOWN:
            if generator.random() < lost:
                return RootCause.UNKNOWN, None
        if cause is RootCause.UNKNOWN:
            return cause, None
        details, probs = self._detail_tables[cause]
        detail = details[int(generator.choice(len(details), p=probs))]
        return cause, detail

    # ------------------------------------------------------------------
    # Batched sampling (the trace-generator hot path)
    #
    # Both engines consume the node's "marks" stream in the same fixed
    # block order — u_cause, u_lost, u_detail — so the vectorized and
    # scalar mirrors see identical uniforms.  The mirrors then perform
    # the same IEEE-754 operations per element, batched vs. looped, and
    # therefore return identical index arrays (asserted by the
    # equivalence suite).
    # ------------------------------------------------------------------

    def _unknown_probability_array(self, ages: np.ndarray) -> np.ndarray:
        if not self._unknown_era:
            return np.zeros(len(ages))
        tau = self._config.unknown_era_decay_months * SECONDS_PER_MONTH
        return self._config.unknown_era_initial * np.exp(
            -np.maximum(ages, 0.0) / tau
        )

    def sample_batch(
        self, generator: np.random.Generator, ages: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized cause/detail draws for a node's failures.

        Parameters
        ----------
        generator:
            The node's marks stream.
        ages:
            System age at each failure time.

        Returns
        -------
        (cause_idx, detail_idx):
            Integer arrays indexing :attr:`causes` and the cause's
            detail table; ``detail_idx`` is -1 where the cause is
            UNKNOWN (no low-level detail).
        """
        n = len(ages)
        u_cause = generator.random(n)
        u_lost = generator.random(n)
        u_detail = generator.random(n)
        return self.resolve_batch(u_cause, u_lost, u_detail, ages)

    def resolve_batch(
        self,
        u_cause: np.ndarray,
        u_lost: np.ndarray,
        u_detail: np.ndarray,
        ages: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve pre-drawn mark uniforms to (cause_idx, detail_idx).

        Split from :meth:`sample_batch` so the trace generator can draw
        each node's marks from its own stream but resolve a whole
        system's events in one vectorized pass.
        """
        n = len(ages)
        cause_idx = np.minimum(
            np.searchsorted(self._cause_cdf, u_cause, side="right"),
            len(self._causes) - 1,
        )
        if self._unknown_era and self._unknown_index >= 0:
            lost = self._unknown_probability_array(ages)
            cause_idx = np.where(u_lost < lost, self._unknown_index, cause_idx)
        detail_idx = np.full(n, -1, dtype=np.int64)
        for index, detail_cdf in self._detail_cdfs.items():
            mask = cause_idx == index
            if mask.any():
                detail_idx[mask] = np.minimum(
                    np.searchsorted(detail_cdf, u_detail[mask], side="right"),
                    len(detail_cdf) - 1,
                )
        return cause_idx, detail_idx

    def sample_batch_scalar(
        self, generator: np.random.Generator, ages: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scalar mirror of :meth:`sample_batch` (reference engine).

        Consumes the marks stream identically (same block draws) but
        resolves each event in a Python loop.
        """
        n = len(ages)
        u_cause = generator.random(n)
        u_lost = generator.random(n)
        u_detail = generator.random(n)
        return self.resolve_batch_scalar(u_cause, u_lost, u_detail, ages)

    def resolve_batch_scalar(
        self,
        u_cause: np.ndarray,
        u_lost: np.ndarray,
        u_detail: np.ndarray,
        ages: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scalar mirror of :meth:`resolve_batch` (per-event loop)."""
        n = len(ages)
        cause_idx = np.empty(n, dtype=np.int64)
        detail_idx = np.full(n, -1, dtype=np.int64)
        n_causes = len(self._causes)
        for i in range(n):
            index = min(
                int(np.searchsorted(self._cause_cdf, u_cause[i], side="right")),
                n_causes - 1,
            )
            if self._unknown_era and self._unknown_index >= 0:
                lost = self._unknown_probability_array(ages[i : i + 1])[0]
                if u_lost[i] < lost:
                    index = self._unknown_index
            cause_idx[i] = index
            detail_cdf = self._detail_cdfs.get(index)
            if detail_cdf is not None:
                detail_idx[i] = min(
                    int(np.searchsorted(detail_cdf, u_detail[i], side="right")),
                    len(detail_cdf) - 1,
                )
        return cause_idx, detail_idx

    def resolve_cause_codes(self, cause_idx: np.ndarray) -> np.ndarray:
        """Map a cause-index array to canonical int8 cause codes."""
        return self._cause_code_alphabet[cause_idx]

    def resolve_detail_codes(
        self, cause_idx: np.ndarray, detail_idx: np.ndarray
    ) -> np.ndarray:
        """Map (cause, detail) index arrays to canonical int8 detail codes.

        ``NO_DETAIL`` (-1) where the cause carries no low-level detail.
        """
        out = np.full(len(cause_idx), NO_DETAIL, dtype=np.int8)
        for index, table in self._detail_code_tables.items():
            mask = (cause_idx == index) & (detail_idx >= 0)
            if mask.any():
                out[mask] = table[detail_idx[mask]]
        return out

    def resolve_causes(self, cause_idx: np.ndarray) -> np.ndarray:
        """Map a cause-index array to an object array of RootCause."""
        alphabet = np.array(self._causes, dtype=object)
        return alphabet[cause_idx]

    def resolve_details(
        self, cause_idx: np.ndarray, detail_idx: np.ndarray
    ) -> np.ndarray:
        """Map (cause, detail) index arrays to LowLevelCause (or None)."""
        out = np.full(len(cause_idx), None, dtype=object)
        for index, _ in self._detail_cdfs.items():
            details, _probs = self._detail_tables[self._causes[index]]
            mask = (cause_idx == index) & (detail_idx >= 0)
            if mask.any():
                table = np.array(details, dtype=object)
                out[mask] = table[detail_idx[mask]]
        return out
