"""Tests for markdown rendering."""

import pytest

from repro.report.markdown import markdown_summary, markdown_table


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table(("name", "count"), [("alpha", 3), ("beta", 14)])
        lines = text.splitlines()
        assert lines[0] == "| name | count |"
        assert lines[1] == "| :--- | ---: |"
        assert lines[2] == "| alpha | 3 |"
        assert len(lines) == 4

    def test_pipe_escaping(self):
        text = markdown_table(("a",), [("x|y",)], align="l")
        assert "x\\|y" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            markdown_table((), [])
        with pytest.raises(ValueError):
            markdown_table(("a", "b"), [("only",)])
        with pytest.raises(ValueError):
            markdown_table(("a",), [], align="x")


class TestMarkdownSummary:
    def test_sections_present(self, small_trace):
        text = markdown_summary(small_trace, title="Test run")
        assert text.startswith("# Test run")
        assert "## Failure rates" in text
        assert "## Root causes" in text
        assert "## Repair times" in text
        assert f"**Records:** {len(small_trace)}" in text

    def test_is_valid_markdown_tables(self, small_trace):
        text = markdown_summary(small_trace)
        table_lines = [line for line in text.splitlines() if line.startswith("|")]
        # Every table row has a consistent pipe structure.
        assert table_lines
        for line in table_lines:
            assert line.endswith("|")
