"""Tests for burst injection and monthly jitter."""

import numpy as np
import pytest

from repro.records.inventory import DATA_END, DATA_START, lanl_system
from repro.records.record import FailureRecord, RootCause, Workload
from repro.records.system import HardwareType
from repro.records.timeutils import SECONDS_PER_MONTH
from repro.simulate.rng import RngStream
from repro.synth.config import GeneratorConfig
from repro.synth.correlated import inject_bursts
from repro.synth.jitter import MonthlyJitter
from repro.synth.lifecycle import LifecycleShape
from repro.synth.repair import RepairModel


def generator(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


def build_records(n, start, spacing, system_id=20):
    return [
        FailureRecord(
            start_time=start + i * spacing,
            end_time=start + i * spacing + 600.0,
            system_id=system_id,
            node_id=i % 40,
            root_cause=RootCause.HARDWARE,
        )
        for i in range(n)
    ]


class TestInjectBursts:
    def setup_method(self):
        self.system = lanl_system(20)
        self.nodes = self.system.expand_nodes(DATA_START, DATA_END)
        self.start = self.system.production_window(DATA_START, DATA_END)[0]
        self.workloads = {node.node_id: Workload.COMPUTE for node in self.nodes}
        self.config = GeneratorConfig()
        self.repair = RepairModel(self.config)

    def run_inject(self, records, config=None):
        return inject_bursts(
            records,
            self.nodes,
            self.workloads,
            self.start,
            HardwareType.G,
            config or self.config,
            self.repair,
            generator(1),
        )

    def test_clones_share_timestamp_and_cause(self):
        records = build_records(500, self.start + 1e6, 3600.0)
        output = self.run_inject(records)
        clones = output[len(records):]
        assert len(clones) > 50
        original_times = {record.start_time for record in records}
        for clone in clones:
            assert clone.start_time in original_times
            assert clone.root_cause is RootCause.HARDWARE

    def test_clone_fraction_matches_burst_parameters(self):
        # Expected extra fraction = p * m = 0.32 * 1.8 ~ 0.58.
        records = build_records(3000, self.start + 1e6, 3600.0)
        output = self.run_inject(records)
        extra = (len(output) - len(records)) / len(records)
        assert extra == pytest.approx(0.576, abs=0.1)

    def test_no_bursts_after_era(self):
        era_end = self.start + self.config.burst_era_months * SECONDS_PER_MONTH
        records = build_records(500, era_end + 1e6, 3600.0)
        output = self.run_inject(records)
        assert len(output) == len(records)

    def test_disabled_config(self):
        records = build_records(500, self.start + 1e6, 3600.0)
        config = GeneratorConfig(bursts_enabled=False)
        assert len(self.run_inject(records, config)) == len(records)

    def test_clones_on_other_in_production_nodes(self):
        records = build_records(500, self.start + 1e6, 3600.0)
        output = self.run_inject(records)
        node_by_id = {node.node_id: node for node in self.nodes}
        for clone in output[len(records):]:
            node = node_by_id[clone.node_id]
            assert node.in_production(clone.start_time)

    def test_clones_draw_fresh_repairs(self):
        records = build_records(500, self.start + 1e6, 3600.0)
        output = self.run_inject(records)
        clones = output[len(records):]
        repairs = {clone.repair_time for clone in clones}
        assert len(repairs) > len(clones) // 2  # not copies of 600 s


class TestMonthlyJitter:
    def test_deterministic(self):
        a = MonthlyJitter(RngStream(1).child("j"), 50, LifecycleShape.RAMP_PEAK)
        b = MonthlyJitter(RngStream(1).child("j"), 50, LifecycleShape.RAMP_PEAK)
        assert [a.at_age(i * SECONDS_PER_MONTH) for i in range(50)] == [
            b.at_age(i * SECONDS_PER_MONTH) for i in range(50)
        ]

    def test_disabled_is_flat(self):
        jitter = MonthlyJitter(
            RngStream(1).child("j"), 50, LifecycleShape.RAMP_PEAK, enabled=False
        )
        assert all(jitter.at_age(i * SECONDS_PER_MONTH) == 1.0 for i in range(50))

    def test_unit_mean_late_era(self):
        jitter = MonthlyJitter(
            RngStream(7).child("j"), 5000, LifecycleShape.INFANT_DECAY,
            era_months=0.0, sigma_late=0.18,
        )
        values = [jitter.at_age(i * SECONDS_PER_MONTH) for i in range(5000)]
        assert np.mean(values) == pytest.approx(1.0, abs=0.02)

    def test_early_era_more_turbulent_for_ramp(self):
        stream = RngStream(9).child("j")
        jitter = MonthlyJitter(stream, 120, LifecycleShape.RAMP_PEAK, era_months=40)
        early = [np.log(jitter.at_age(i * SECONDS_PER_MONTH)) for i in range(40)]
        late = [np.log(jitter.at_age(i * SECONDS_PER_MONTH)) for i in range(40, 120)]
        assert np.std(early) > 2 * np.std(late)

    def test_age_clamping(self):
        jitter = MonthlyJitter(RngStream(1).child("j"), 10, LifecycleShape.RAMP_PEAK)
        # Ages beyond the precomputed range reuse the last month.
        assert jitter.at_age(100 * SECONDS_PER_MONTH) == jitter.at_age(9 * SECONDS_PER_MONTH)
        assert jitter.at_age(-5.0) == jitter.at_age(0.0)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            MonthlyJitter(RngStream(1), 0, LifecycleShape.RAMP_PEAK)
