"""Tests for the Table 1 inventory encoding."""

import pytest

from repro.records.inventory import (
    DATA_END,
    DATA_START,
    LANL_SYSTEMS,
    lanl_system,
    total_nodes,
    total_processors,
)
from repro.records.system import HardwareArchitecture, HardwareType


class TestTotals:
    def test_node_total_matches_paper(self):
        # The paper: 4750 nodes across the 22 systems.
        assert total_nodes() == 4750

    def test_processor_total_near_paper(self):
        # The paper: 24101; the encoding's documented deviation is < 0.5%.
        assert abs(total_processors() - 24101) / 24101 < 0.005

    def test_twenty_two_systems(self):
        assert set(LANL_SYSTEMS.keys()) == set(range(1, 23))


class TestPerSystem:
    # (system, hardware type, nodes, procs) from Table 1.
    TABLE1 = [
        (1, "A", 1, 8),
        (2, "B", 1, 32),
        (3, "C", 1, 4),
        (4, "D", 164, 328),
        (5, "E", 256, 1024),
        (6, "E", 128, 512),
        (7, "E", 1024, 4096),
        (8, "E", 1024, 4096),
        (9, "E", 128, 512),
        (10, "E", 128, 512),
        (11, "E", 128, 512),
        (12, "E", 32, 128),
        (13, "F", 128, 256),
        (14, "F", 256, 512),
        (15, "F", 256, 512),
        (16, "F", 256, 512),
        (17, "F", 256, 512),
        (18, "F", 512, 1024),
        (19, "G", 16, 2048),
        (21, "G", 5, 544),
        (22, "H", 1, 256),
    ]

    @pytest.mark.parametrize("system_id,hw,nodes,procs", TABLE1)
    def test_exact_rows(self, system_id, hw, nodes, procs):
        config = lanl_system(system_id)
        assert config.hardware_type is HardwareType(hw)
        assert config.node_count == nodes
        assert config.processor_count == procs

    def test_system20_known_deviation(self):
        # 49 nodes exactly; processors within 1.5% of the published 6152
        # (the Table 1 category rows cannot combine to 6152 exactly).
        config = lanl_system(20)
        assert config.node_count == 49
        assert abs(config.processor_count - 6152) / 6152 < 0.015

    def test_architecture_split(self):
        # Systems 1-18 SMP, 19-22 NUMA.
        for system_id in range(1, 19):
            assert lanl_system(system_id).architecture is HardwareArchitecture.SMP
        for system_id in range(19, 23):
            assert lanl_system(system_id).architecture is HardwareArchitecture.NUMA

    def test_system12_two_memory_categories(self):
        # Table 1 callout: system 12's nodes differ only in memory (4 vs 16 GB).
        memories = sorted(c.memory_gb for c in lanl_system(12).categories)
        assert memories == [4.0, 16.0]

    def test_system20_node0_short_production(self):
        # Footnote 4: node 0 was in production much shorter.
        nodes = lanl_system(20).expand_nodes(DATA_START, DATA_END)
        node0 = nodes[0]
        rest = nodes[1:]
        assert node0.production_seconds < min(n.production_seconds for n in rest) / 5

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            lanl_system(23)

    def test_all_windows_resolve(self):
        for config in LANL_SYSTEMS.values():
            start, end = config.production_window(DATA_START, DATA_END)
            assert DATA_START <= start < end <= DATA_END

    def test_type_e_systems_are_5_through_12(self):
        e_systems = sorted(
            sid for sid, c in LANL_SYSTEMS.items() if c.hardware_type is HardwareType.E
        )
        assert e_systems == [5, 6, 7, 8, 9, 10, 11, 12]

    def test_type_f_systems_are_13_through_18(self):
        f_systems = sorted(
            sid for sid, c in LANL_SYSTEMS.items() if c.hardware_type is HardwareType.F
        )
        assert f_systems == [13, 14, 15, 16, 17, 18]
