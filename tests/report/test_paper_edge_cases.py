"""Edge cases for the paper-artifact renderers."""

import pytest

from repro import report
from repro.records.record import FailureRecord, RootCause
from repro.records.trace import FailureTrace
from repro.synth import TraceGenerator


@pytest.fixture(scope="module")
def partial_trace():
    """A trace with only systems 13 and 20 (system 5 absent)."""
    return TraceGenerator(seed=5).generate([13, 20])


class TestPartialTraces:
    def test_figure4_notes_missing_system(self, partial_trace):
        text = report.render_figure4(partial_trace)  # defaults: systems 5, 19
        assert "no failures in this trace" in text

    def test_figure4_with_present_system(self, partial_trace):
        text = report.render_figure4(partial_trace, system_ids=(20,))
        assert "system 20" in text
        assert "failures/month" in text

    def test_figure3_custom_system(self, partial_trace):
        text = report.render_figure3(partial_trace, system_id=20)
        assert "system 20" in text

    def test_figure2_includes_zero_rate_systems(self, partial_trace):
        text = report.render_figure2(partial_trace)
        # All 22 systems are rendered even when most have zero failures.
        assert "1 (A)" in text
        assert "20 (G)" in text

    def test_table2_on_single_cause_trace(self):
        records = [
            FailureRecord(
                start_time=1e8 + i * 1e4, end_time=1e8 + i * 1e4 + 600.0,
                system_id=20, node_id=0, root_cause=RootCause.NETWORK,
            )
            for i in range(20)
        ]
        text = report.render_table2(FailureTrace(records))
        assert "network" in text
        assert "All" in text
        assert "hardware" not in text  # no hardware rows to render

    def test_figure6_custom_node(self, partial_trace):
        counts = partial_trace.failures_per_node(20)
        busiest = max(counts, key=counts.get)
        text = report.render_figure6(partial_trace, system_id=20, node_id=busiest)
        assert "Figure 6(a)" in text
        assert "Figure 6(d)" in text

    def test_figure5_requires_populated_bins(self):
        records = [
            FailureRecord(
                start_time=1e8 + i, end_time=1e8 + i + 60.0,
                system_id=20, node_id=0, root_cause=RootCause.HARDWARE,
            )
            for i in range(5)
        ]
        with pytest.raises(ValueError):
            report.render_figure5(FailureTrace(records))


class TestRendererPurity:
    def test_renderers_do_not_mutate_trace(self, partial_trace):
        before = len(partial_trace)
        first_record = partial_trace[0]
        report.render_figure1(partial_trace)
        report.render_table2(partial_trace)
        assert len(partial_trace) == before
        assert partial_trace[0] is first_record

    def test_repeated_rendering_is_deterministic(self, partial_trace):
        assert report.render_figure5(partial_trace) == report.render_figure5(partial_trace)
        assert report.render_table2(partial_trace) == report.render_table2(partial_trace)
