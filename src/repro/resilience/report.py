"""Structured account of a supervised run: attempts, retries, skips.

Every supervised generation produces a :class:`RunReport`: one
:class:`ShardOutcome` per shard, each with its full attempt history —
stage (degradation ladder position), outcome, error text, and the
backoff delay the supervisor applied before the next attempt.  The
report is what turns silent retries into auditable behavior, and what
CI uploads when a chaos drill fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.resilience.atomic import atomic_write_json

__all__ = ["ShardAttempt", "ShardOutcome", "RunReport"]

#: Attempt outcomes.
OK = "ok"
CRASH = "crash"          # worker process died (BrokenProcessPool)
TIMEOUT = "timeout"      # no progress within the shard timeout
ERROR = "error"          # the task raised
DEADLINE = "deadline"    # retry deadline exhausted

#: Final shard statuses.
STATUS_OK = "ok"
STATUS_DEGRADED = "ok-degraded"
STATUS_SKIPPED = "skipped"
STATUS_RESUMED = "resumed"
STATUS_PENDING = "pending"


@dataclass
class ShardAttempt:
    """One attempt at one shard."""

    attempt: int
    stage: str
    outcome: str
    error: str = ""
    #: Backoff applied after this (failed) attempt, seconds; None for
    #: successful or final attempts.
    backoff: Optional[float] = None
    #: Wall-clock duration of the attempt, seconds; None when the
    #: supervisor could not time it (e.g. journal-resumed shards).
    wall_s: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "attempt": self.attempt,
            "stage": self.stage,
            "outcome": self.outcome,
        }
        if self.error:
            payload["error"] = self.error
        if self.backoff is not None:
            payload["backoff_s"] = round(self.backoff, 6)
        if self.wall_s is not None:
            payload["wall_s"] = round(self.wall_s, 6)
        return payload


@dataclass
class ShardOutcome:
    """Final status and attempt history of one shard."""

    shard: str
    status: str = STATUS_PENDING
    attempts: List[ShardAttempt] = field(default_factory=list)
    records: Optional[int] = None

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1

    def backoff_schedule(self) -> List[float]:
        """The delays actually applied between this shard's attempts."""
        return [a.backoff for a in self.attempts if a.backoff is not None]

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "shard": self.shard,
            "status": self.status,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
        }
        if self.records is not None:
            payload["records"] = self.records
        return payload


@dataclass
class RunReport:
    """Everything that happened during one supervised run."""

    meta: Dict[str, Any] = field(default_factory=dict)
    shards: Dict[str, ShardOutcome] = field(default_factory=dict)

    # -- recording -----------------------------------------------------

    def _shard(self, key: str) -> ShardOutcome:
        return self.shards.setdefault(key, ShardOutcome(shard=key))

    def record_attempt(
        self,
        key: str,
        stage: str,
        outcome: str,
        error: str = "",
        backoff: Optional[float] = None,
        wall_s: Optional[float] = None,
    ) -> None:
        shard = self._shard(key)
        shard.attempts.append(
            ShardAttempt(
                attempt=len(shard.attempts) + 1,
                stage=stage,
                outcome=outcome,
                error=error,
                backoff=backoff,
                wall_s=wall_s,
            )
        )

    def finish_shard(
        self, key: str, status: str, records: Optional[int] = None
    ) -> None:
        shard = self._shard(key)
        shard.status = status
        shard.records = records

    def mark_resumed(self, key: str, records: Optional[int] = None) -> None:
        self.finish_shard(key, STATUS_RESUMED, records=records)

    # -- queries -------------------------------------------------------

    def _with_status(self, status: str) -> List[ShardOutcome]:
        return [s for s in self.shards.values() if s.status == status]

    @property
    def retried_shards(self) -> List[ShardOutcome]:
        """Shards that needed more than one attempt (chaos survivors)."""
        return [s for s in self.shards.values() if s.retried]

    @property
    def degraded_shards(self) -> List[ShardOutcome]:
        return self._with_status(STATUS_DEGRADED)

    @property
    def skipped_shards(self) -> List[ShardOutcome]:
        return self._with_status(STATUS_SKIPPED)

    @property
    def resumed_shards(self) -> List[ShardOutcome]:
        return self._with_status(STATUS_RESUMED)

    @property
    def ok(self) -> bool:
        """True when every shard completed (possibly degraded/resumed)."""
        return all(
            s.status in (STATUS_OK, STATUS_DEGRADED, STATUS_RESUMED)
            for s in self.shards.values()
        )

    # -- output --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": dict(self.meta),
            "shards": [
                self.shards[key].to_dict() for key in sorted(self.shards)
            ],
            "summary": {
                "total": len(self.shards),
                "ok": len(self._with_status(STATUS_OK)),
                "degraded": len(self.degraded_shards),
                "skipped": len(self.skipped_shards),
                "resumed": len(self.resumed_shards),
                "retried": len(self.retried_shards),
            },
        }

    def write(self, path) -> None:
        """Atomically write the report as JSON."""
        atomic_write_json(path, self.to_dict())

    def describe(self) -> str:
        """Human-readable one-screen summary."""
        summary = self.to_dict()["summary"]
        lines = [
            "run report: {total} shard(s) — {ok} ok, {degraded} degraded, "
            "{skipped} skipped, {resumed} resumed, {retried} retried".format(
                **summary
            )
        ]
        for shard in sorted(self.shards.values(), key=lambda s: s.shard):
            if not shard.retried and shard.status in (STATUS_OK, STATUS_RESUMED):
                continue
            history = " -> ".join(
                f"{a.outcome}@{a.stage}"
                + (f" (backoff {a.backoff:.3f}s)" if a.backoff is not None else "")
                for a in shard.attempts
            )
            lines.append(f"  {shard.shard}: {shard.status}: {history or 'n/a'}")
        return "\n".join(lines)
