"""Shared I/O helpers for the trace formats.

Both the CSV and JSONL formats support transparent gzip compression
(``trace.csv.gz``, ``trace.jsonl.gz``) through :func:`open_text`, and
both route their rows through the same ingest pipeline (see
:mod:`repro.io.policy`).

Writers go through :func:`atomic_open_text` (re-exported from
:mod:`repro.resilience.atomic`): the new file is staged in a temporary
sibling, fsynced, and renamed over the target, so an interrupted write
never leaves a truncated artifact behind.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

from repro.resilience.atomic import atomic_open_text

__all__ = ["PathLike", "open_text", "atomic_open_text"]

PathLike = Union[str, Path]


def open_text(path: PathLike, mode: str):
    """Open a text file, transparently gzipped when the name ends .gz."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", newline="")
    return path.open(mode, newline="")
