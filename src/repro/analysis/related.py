"""Table 3: related failure studies, and literature comparisons.

Table 3 is literature metadata — 13 commonly cited failure studies
with their date, duration, environment, data type and size.  We encode
it as data, and :func:`literature_ranges` records the quantitative
ranges Section 7 cites (software failures 20-50%, hardware 10-30%,
Weibull shapes < 0.5 elsewhere vs 0.7-0.8 here, ...) so benches can
show where a trace's measurements fall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["RelatedStudy", "RELATED_STUDIES", "literature_ranges"]


@dataclass(frozen=True)
class RelatedStudy:
    """One row of Table 3."""

    reference: str
    date: int
    length: str
    environment: str
    data_type: str
    n_failures: Optional[int]
    statistics: str


#: Table 3, in the paper's row order.
RELATED_STUDIES: Tuple[RelatedStudy, ...] = (
    RelatedStudy("[3, 4] Gray", 1990, "3 years", "Tandem systems", "Customer data", 800, "Root cause"),
    RelatedStudy("[7] Kalyanakrishnam et al.", 1999, "6 months", "70 Windows NT mail servers", "Error logs", 1100, "Root cause"),
    RelatedStudy("[16] Oppenheimer et al.", 2003, "3-6 months", "3000 machines in Internet services", "Error logs", 501, "Root cause"),
    RelatedStudy("[13] Murphy & Gent", 1995, "7 years", "VAX systems", "Field data", None, "Root cause"),
    RelatedStudy("[19] Tang et al.", 1990, "8 months", "7 VAX systems", "Error logs", 364, "TBF"),
    RelatedStudy("[9] Lin & Siewiorek", 1990, "22 months", "13 VICE file servers", "Error logs", 300, "TBF"),
    RelatedStudy("[6] Iyer et al.", 1986, "3 years", "2 IBM 370/169 mainframes", "Error logs", 456, "TBF"),
    RelatedStudy("[18] Sahoo et al.", 2004, "1 year", "395 nodes in machine room", "Error logs", 1285, "TBF"),
    RelatedStudy("[5] Heath et al.", 2002, "1-36 months", "70 nodes in university and Internet services", "Error logs", 3200, "TBF"),
    RelatedStudy("[24] Xu et al.", 1999, "4 months", "503 nodes in corporate envr.", "Error logs", 2127, "TBF"),
    RelatedStudy("[15] Nurmi et al.", 2005, "6-8 weeks", "300 university cluster and Condor nodes", "Custom monitoring", None, "TBF"),
    RelatedStudy("[10] Long et al.", 1995, "3 months", "1170 internet hosts", "RPC polling", None, "TBF, TTR"),
    RelatedStudy("[2] Castillo & Siewiorek", 1980, "1 month", "PDP-10 with KL10 processor", "N/A", None, "TBF, Utilization"),
)


def literature_ranges() -> Dict[str, Tuple[float, float]]:
    """Quantitative ranges Section 7 cites from prior work.

    Keys are measurement names; values are (low, high) ranges.
    Fractions are in [0, 1].
    """
    return {
        # Root cause percentages reported in prior studies.
        "software_fraction": (0.20, 0.50),
        "hardware_fraction": (0.10, 0.30),
        "environment_fraction": (0.05, 0.05),
        "network_fraction": (0.20, 0.40),
        "human_fraction": (0.10, 0.30),
        # Weibull shape parameters for TBF in prior studies that found
        # decreasing hazard rates.
        "weibull_shape_elsewhere": (0.20, 0.50),
        # This paper's findings, for contrast.
        "weibull_shape_this_paper": (0.70, 0.80),
        # Sahoo et al.: < 4% of nodes see ~70% of failures; day/night
        # failure ratio ~4.  (We find milder versions of both.)
        "sahoo_node_concentration": (0.04, 0.04),
        "sahoo_day_night_ratio": (4.0, 4.0),
    }
