"""Typed errors for the analysis layer.

The statistical studies have hard sample requirements — a coefficient
of variation needs a nonzero mean, a correlation needs three points, a
dispersion index needs enough events to fill its windows.  On a
degenerate slice (a single-failure system, an empty era) those used to
surface as bare ``ValueError``/``ZeroDivisionError``/NaN leaking into
report tables.  They now raise :class:`DegenerateSampleError`, which

* subclasses ``ValueError``, so existing ``except ValueError`` callers
  (including the report layer's per-section isolation) keep working;
* is catchable *specifically*, so callers can distinguish "this slice
  is too thin to analyze" from a genuine bug.
"""

from __future__ import annotations

__all__ = ["DegenerateSampleError"]


class DegenerateSampleError(ValueError):
    """The input sample is too degenerate for the requested statistic.

    Raised for zero-mean samples (undefined coefficient of variation /
    variance-to-mean ratio), single-observation or otherwise
    too-small samples, and slices where a required participant never
    appears.  The message always states the requirement that failed.
    """
