"""Process-level chaos operators: kill, hang, slow and fail workers.

Where :mod:`repro.faults.operators` damages trace *data*, these
operators damage the *execution* — the failure classes the paper's
systems actually exhibited (node crashes, hangs, transient errors) —
so the supervised generation path can be drilled end to end.

Injection is driven by an environment variable
(:data:`CHAOS_ENV_VAR`) holding a JSON :class:`ProcessChaos` spec.
Worker processes inherit the parent's environment, so arming chaos
before the pool spawns reaches every worker with zero plumbing through
the (picklable) task payloads.  A shared *state directory* coordinates
a global injection budget across processes: each injection first
claims a slot by exclusively creating ``claim-N``; once ``times``
claims exist, the chaos is spent and retried shards succeed — which is
exactly the "fail N times then succeed" shape retry logic must handle.

Operators:

* ``kill-worker``  — ``SIGKILL`` the worker mid-shard (the parent sees
  ``BrokenProcessPool``);
* ``hang-worker``  — sleep far past any shard timeout (the parent's
  hang detector must terminate and respawn the pool);
* ``slow-shard``   — sleep briefly (latency noise; must not fail);
* ``flaky-shard``  — raise :class:`ChaosError` (a clean task failure).
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosError",
    "ProcessChaos",
    "PROCESS_OPERATORS",
    "maybe_inject",
    "chaos_env",
    "make_chaos",
]

CHAOS_ENV_VAR = "REPRO_PROCESS_CHAOS"

PROCESS_OPERATORS = ("kill-worker", "hang-worker", "slow-shard", "flaky-shard")


class ChaosError(RuntimeError):
    """The injected failure raised by the ``flaky-shard`` operator."""


@dataclass(frozen=True)
class ProcessChaos:
    """A process-chaos specification, serializable into the environment.

    Parameters
    ----------
    operator:
        One of :data:`PROCESS_OPERATORS`.
    times:
        Global injection budget across all workers and retries.
    state_dir:
        Directory coordinating the budget (claim files) between
        processes.  Created if missing.
    shards:
        Shard keys to target; empty targets every shard.
    hang_seconds / slow_seconds:
        Sleep durations for the hang/slow operators.
    """

    operator: str
    times: int = 1
    state_dir: str = ""
    shards: Tuple[str, ...] = field(default_factory=tuple)
    hang_seconds: float = 3600.0
    slow_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.operator not in PROCESS_OPERATORS:
            raise ValueError(
                f"operator must be one of {PROCESS_OPERATORS}, "
                f"got {self.operator!r}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if not self.state_dir:
            raise ValueError(
                "state_dir is required (it bounds the injection budget; "
                "without it kill-worker would loop forever)"
            )
        object.__setattr__(self, "shards", tuple(self.shards))

    def to_json(self) -> str:
        return json.dumps(
            {
                "operator": self.operator,
                "times": self.times,
                "state_dir": self.state_dir,
                "shards": list(self.shards),
                "hang_seconds": self.hang_seconds,
                "slow_seconds": self.slow_seconds,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ProcessChaos":
        payload = json.loads(text)
        payload["shards"] = tuple(payload.get("shards", ()))
        return cls(**payload)

    def injections(self) -> int:
        """How many injections have been performed so far."""
        try:
            names = os.listdir(self.state_dir)
        except OSError:
            return 0
        return sum(1 for name in names if name.startswith("claim-"))


def _claim_slot(state_dir: str, times: int) -> bool:
    """Atomically claim one of ``times`` injection slots; False if spent."""
    for n in range(times):
        path = os.path.join(state_dir, f"claim-{n}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        return True
    return False


def maybe_inject(
    shard_key: str, env: Optional[Mapping[str, str]] = None
) -> None:
    """Chaos hook called by worker tasks at the top of each shard.

    No-op unless :data:`CHAOS_ENV_VAR` is set, the shard is targeted,
    and the injection budget is not yet spent.
    """
    environment = os.environ if env is None else env
    spec_text = environment.get(CHAOS_ENV_VAR)
    if not spec_text:
        return
    spec = ProcessChaos.from_json(spec_text)
    if spec.shards and shard_key not in spec.shards:
        return
    if not _claim_slot(spec.state_dir, spec.times):
        return
    if spec.operator == "kill-worker":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.operator == "hang-worker":
        time.sleep(spec.hang_seconds)
    elif spec.operator == "slow-shard":
        time.sleep(spec.slow_seconds)
    elif spec.operator == "flaky-shard":
        raise ChaosError(f"injected failure for shard {shard_key!r}")


@contextlib.contextmanager
def chaos_env(
    spec: Optional[ProcessChaos],
) -> Iterator[Optional[ProcessChaos]]:
    """Arm ``spec`` in ``os.environ`` for the duration of the block.

    Must wrap the code that *spawns* the worker pool: workers inherit
    the environment at spawn time.  ``spec=None`` is a no-op (handy for
    parameterized drills).
    """
    if spec is None:
        yield None
        return
    os.makedirs(spec.state_dir, exist_ok=True)
    previous = os.environ.get(CHAOS_ENV_VAR)
    os.environ[CHAOS_ENV_VAR] = spec.to_json()
    try:
        yield spec
    finally:
        if previous is None:
            os.environ.pop(CHAOS_ENV_VAR, None)
        else:
            os.environ[CHAOS_ENV_VAR] = previous


def make_chaos(
    operator: str,
    times: int = 1,
    state_dir: Optional[str] = None,
    **kwargs,
) -> ProcessChaos:
    """Convenience builder that provisions a state directory if needed."""
    if state_dir is None:
        state_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    return ProcessChaos(
        operator=operator, times=times, state_dir=state_dir, **kwargs
    )
