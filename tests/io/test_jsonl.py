"""Tests for the JSONL trace format."""

import pytest

from repro.io.jsonl_format import read_jsonl, write_jsonl
from repro.io.schema import SchemaError
from repro.records.record import FailureRecord, LowLevelCause, RootCause, Workload
from repro.records.trace import FailureTrace


def sample_records():
    return [
        FailureRecord(
            start_time=1.5e8, end_time=1.5e8 + 3600.0, system_id=20, node_id=22,
            root_cause=RootCause.SOFTWARE,
            low_level_cause=LowLevelCause.PARALLEL_FILESYSTEM,
            workload=Workload.COMPUTE, record_id=7,
        ),
        FailureRecord(
            start_time=1.6e8, end_time=1.6e8 + 60.0, system_id=5, node_id=0,
        ),
    ]


def test_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(sample_records(), path) == 2
    loaded = read_jsonl(path)
    assert len(loaded) == 2
    first = loaded[0]
    assert first.low_level_cause is LowLevelCause.PARALLEL_FILESYSTEM
    assert first.record_id == 7


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(sample_records(), path)
    path.write_text(path.read_text() + "\n\n")
    assert len(read_jsonl(path)) == 2


def test_invalid_json_reports_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    good = '{"system_id": 1, "node_id": 0, "start_time": 1.0, "end_time": 2.0}'
    path.write_text(good + "\nnot json\n")
    with pytest.raises(SchemaError, match="line 2"):
        read_jsonl(path)


def test_missing_field_reports_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"system_id": 1, "node_id": 0}\n')
    with pytest.raises(SchemaError, match="line 1"):
        read_jsonl(path)


def test_csv_and_jsonl_agree(small_trace, tmp_path):
    from repro.io.csv_format import read_lanl_csv, write_lanl_csv

    csv_path = tmp_path / "t.csv"
    jsonl_path = tmp_path / "t.jsonl"
    write_lanl_csv(small_trace, csv_path)
    write_jsonl(small_trace, jsonl_path)
    from_csv = read_lanl_csv(csv_path)
    from_jsonl = read_jsonl(jsonl_path)
    assert len(from_csv) == len(from_jsonl) == len(small_trace)
    for a, b in zip(from_csv, from_jsonl):
        assert a.start_time == b.start_time
        assert a.root_cause is b.root_cause
        assert a.low_level_cause is b.low_level_cause
