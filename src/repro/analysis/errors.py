"""Typed errors for the analysis layer.

The statistical studies have hard sample requirements — a coefficient
of variation needs a nonzero mean, a correlation needs three points, a
dispersion index needs enough events to fill its windows.  On a
degenerate slice (a single-failure system, an empty era) those used to
surface as bare ``ValueError``/``ZeroDivisionError``/NaN leaking into
report tables.  They now raise :class:`DegenerateSampleError`.

The class itself lives in :mod:`repro.stats.errors` (the lowest layer
that raises it — the fitters classify degenerate samples too); this
module re-exports it so analysis-layer imports keep working and both
spellings name the same class.
"""

from __future__ import annotations

from repro.stats.errors import DegenerateSampleError

__all__ = ["DegenerateSampleError"]
