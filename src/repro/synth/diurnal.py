"""Diurnal and weekly rate modulation (Figure 5).

The paper observes the failure rate during peak daytime hours is about
twice the overnight rate, and weekday rates are nearly twice weekend
rates — interpreted as correlation with workload intensity/variety.

We model the combined modulation W(t) as the product of

* a daily sinusoid ``1 + a * cos(2*pi*(h - peak)/24)`` with amplitude
  ``a`` (peak/trough ratio ``(1+a)/(1-a)``; the default a = 1/3 gives
  the paper's factor of 2), and
* a weekday/weekend step, normalized so the *weekly mean of W is
  exactly 1* — modulation redistributes failures within the week
  without changing a system's total failure count.

:class:`WeeklyProfile` precomputes the cumulative integral of W over
one week on an hourly grid.  The arrival sampler uses it to map
operational time to wall-clock time in O(log 168) per event
(:mod:`repro.synth.arrivals`).
"""

from __future__ import annotations

import math
import numpy as np

from repro.records.timeutils import SECONDS_PER_HOUR, SECONDS_PER_WEEK

__all__ = ["diurnal_multiplier", "weekly_multiplier", "WeeklyProfile"]

HOURS_PER_WEEK = 168


def diurnal_multiplier(
    hour: float, amplitude: float = 1.0 / 3.0, peak_hour: float = 14.0
) -> float:
    """Daily modulation at a (possibly fractional) hour of day.

    Mean over a day is exactly 1; peak/trough ratio is
    ``(1 + amplitude) / (1 - amplitude)``.
    """
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    return 1.0 + amplitude * math.cos(2.0 * math.pi * (hour - peak_hour) / 24.0)


def weekly_multiplier(weekday: int, weekend_factor: float = 0.55) -> float:
    """Weekday/weekend modulation, normalized to weekly mean 1.

    Parameters
    ----------
    weekday:
        Monday=0 ... Sunday=6.
    weekend_factor:
        Raw weekend/weekday ratio before normalization.
    """
    if not 0 <= weekday <= 6:
        raise ValueError(f"weekday must be in 0..6, got {weekday}")
    mean = (5.0 + 2.0 * weekend_factor) / 7.0
    raw = weekend_factor if weekday >= 5 else 1.0
    return raw / mean


class WeeklyProfile:
    """Hourly modulation profile over one week with cumulative integral.

    The profile is periodic with period one week, anchored at the
    toolkit epoch (1996-01-01, a Monday).  ``cumulative[i]`` is the
    integral of W over the first ``i`` hours of the week in *effective
    seconds* (so ``cumulative[-1] == 604800`` exactly, because W has
    weekly mean 1).

    Parameters
    ----------
    amplitude / peak_hour / weekend_factor:
        See :func:`diurnal_multiplier` / :func:`weekly_multiplier`.
    enabled:
        When False the profile is identically 1 (ablation switch).
    """

    def __init__(
        self,
        amplitude: float = 1.0 / 3.0,
        peak_hour: float = 14.0,
        weekend_factor: float = 0.55,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        if not enabled:
            hourly = np.ones(HOURS_PER_WEEK)
        else:
            hourly = np.empty(HOURS_PER_WEEK)
            for hour_index in range(HOURS_PER_WEEK):
                weekday = hour_index // 24
                hour_mid = (hour_index % 24) + 0.5
                hourly[hour_index] = diurnal_multiplier(
                    hour_mid, amplitude, peak_hour
                ) * weekly_multiplier(weekday, weekend_factor)
            # Force the weekly mean to exactly 1 (the hourly midpoint rule
            # is already within 0.1%, but exactness simplifies reasoning).
            hourly /= hourly.mean()
        self._hourly = hourly
        cumulative = np.concatenate(
            ([0.0], np.cumsum(hourly) * SECONDS_PER_HOUR)
        )
        self._cumulative = cumulative

    @property
    def hourly(self) -> np.ndarray:
        """The 168 hourly multipliers (weekly mean exactly 1)."""
        return self._hourly

    @property
    def total(self) -> float:
        """Integral of W over one week = 604800 effective seconds."""
        return float(self._cumulative[-1])

    def value_at(self, timestamp: float) -> float:
        """The modulation multiplier at an absolute timestamp."""
        position = float(timestamp) % SECONDS_PER_WEEK
        hour_index = int(position // SECONDS_PER_HOUR)
        return float(self._hourly[min(hour_index, HOURS_PER_WEEK - 1)])

    def cumulative_at(self, position_in_week: float) -> float:
        """Integral of W over ``[week start, position_in_week)``.

        Piecewise linear between hour boundaries (W is constant within
        an hour).
        """
        if not 0 <= position_in_week <= SECONDS_PER_WEEK:
            raise ValueError(
                f"position must be within one week, got {position_in_week}"
            )
        hour_index = min(int(position_in_week // SECONDS_PER_HOUR), HOURS_PER_WEEK - 1)
        within = position_in_week - hour_index * SECONDS_PER_HOUR
        return float(self._cumulative[hour_index] + self._hourly[hour_index] * within)

    def invert(self, effective_target: float) -> float:
        """Position in the week at which the cumulative reaches ``target``.

        Inverse of :meth:`cumulative_at`; ``target`` must lie in
        ``[0, total]``.
        """
        if not 0 <= effective_target <= self.total * (1 + 1e-12):
            raise ValueError(
                f"target {effective_target} outside [0, {self.total}]"
            )
        effective_target = min(effective_target, self.total)
        hour_index = int(np.searchsorted(self._cumulative, effective_target, side="right")) - 1
        hour_index = min(max(hour_index, 0), HOURS_PER_WEEK - 1)
        remainder = effective_target - self._cumulative[hour_index]
        return hour_index * SECONDS_PER_HOUR + remainder / self._hourly[hour_index]

    def invert_array(self, effective_targets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`invert`.

        Performs exactly the same floating-point operations per element
        as the scalar method, so ``invert_array(x)[i]`` is bit-identical
        to ``invert(x[i])`` — the property the trace-equivalence suite
        relies on.
        """
        targets = np.asarray(effective_targets, dtype=float)
        if targets.size == 0:
            return np.empty(0, dtype=float)
        if targets.min() < 0 or targets.max() > self.total * (1 + 1e-12):
            raise ValueError(
                f"targets outside [0, {self.total}]: "
                f"[{targets.min()}, {targets.max()}]"
            )
        targets = np.minimum(targets, self.total)
        hour_index = np.searchsorted(self._cumulative, targets, side="right") - 1
        hour_index = np.clip(hour_index, 0, HOURS_PER_WEEK - 1)
        remainder = targets - self._cumulative[hour_index]
        return hour_index * SECONDS_PER_HOUR + remainder / self._hourly[hour_index]
