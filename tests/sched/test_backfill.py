"""Tests for EASY backfilling."""

import datetime as dt

import pytest

from repro.records.record import FailureRecord, RootCause
from repro.records.timeutils import SECONDS_PER_DAY, from_datetime
from repro.records.trace import FailureTrace
from repro.sched.backfill import (
    BackfillSchedulerSimulation,
    earliest_start,
    pick_backfill_job,
)
from repro.sched.cluster import ClusterTimeline
from repro.sched.jobs import Job, JobGenerator
from repro.sched.policies import RandomPolicy
from repro.sched.simulator import SchedulerSimulation

T0 = from_datetime(dt.datetime(2002, 1, 1))


class TestEarliestStart:
    def test_fits_now(self):
        assert earliest_start(4, 5, [], now=10.0) == 10.0

    def test_waits_for_one_release(self):
        assert earliest_start(6, 4, [(100.0, 3)], now=10.0) == 100.0

    def test_accumulates_releases_in_time_order(self):
        releases = [(200.0, 4), (100.0, 2)]
        # needs 4 + free 1: after t=100 has 3, after t=200 has 7.
        assert earliest_start(4, 1, releases, now=0.0) == 200.0
        assert earliest_start(3, 1, releases, now=0.0) == 100.0

    def test_impossible_request(self):
        with pytest.raises(ValueError):
            earliest_start(100, 5, [(50.0, 10)], now=0.0)


class TestPickBackfillJob:
    def make_queue(self):
        return [
            Job(job_id=0, arrival=0.0, nodes=40, duration=1000.0),   # head
            Job(job_id=1, arrival=1.0, nodes=10, duration=500.0),
            Job(job_id=2, arrival=2.0, nodes=2, duration=50.0),
        ]

    def test_short_job_backfills(self):
        # Reservation at t=100; job 2 (50 s) finishes before it.
        index = pick_backfill_job(
            self.make_queue(), free_now=5, reservation_time=100.0,
            reserved_nodes=40, now=0.0,
        )
        assert index == 2

    def test_long_small_job_blocked_when_it_would_delay_head(self):
        # Job 1 needs 10 > 5 free; job 2's 50 s > reservation at 10.
        index = pick_backfill_job(
            self.make_queue(), free_now=5, reservation_time=10.0,
            reserved_nodes=40, now=0.0,
        )
        assert index is None

    def test_job_that_leaves_reservation_intact(self):
        # 45 free, head reserves 40: job 1 (10 nodes) would leave only
        # 35 — blocked unless it ends in time; job 2 (2 nodes) leaves
        # 43 >= 40, so it backfills regardless of duration.
        queue = self.make_queue()
        index = pick_backfill_job(
            queue, free_now=45, reservation_time=0.0, reserved_nodes=40, now=0.0,
        )
        assert index == 2

    def test_first_eligible_wins(self):
        queue = self.make_queue()
        index = pick_backfill_job(
            queue, free_now=20, reservation_time=1e9, reserved_nodes=40, now=0.0,
        )
        assert index == 1  # job 1 fits and finishes before the far reservation


class TestBackfillSimulation:
    def make_timeline(self, records=()):
        return ClusterTimeline(FailureTrace(list(records)), 20)

    def test_backfill_reduces_makespan(self):
        # Head job needs the whole machine; a tiny job behind it can
        # run during the wait under EASY but not under FCFS.
        timeline = self.make_timeline()
        big_running = Job(job_id=0, arrival=T0, nodes=48, duration=10_000.0)
        full_machine = Job(job_id=1, arrival=T0 + 1.0, nodes=49, duration=100.0)
        tiny = Job(job_id=2, arrival=T0 + 2.0, nodes=1, duration=5_000.0)
        jobs = [big_running, full_machine, tiny]
        window = (T0, T0 + 30 * SECONDS_PER_DAY)

        fcfs = SchedulerSimulation(timeline, RandomPolicy(seed=0), window).run(jobs)
        easy = BackfillSchedulerSimulation(
            timeline, RandomPolicy(seed=0), window
        ).run(jobs)
        assert fcfs.jobs_completed == easy.jobs_completed == 3
        # The tiny job's wait shrinks dramatically under backfilling,
        # pulling the mean wait down.
        assert easy.mean_wait < 0.6 * fcfs.mean_wait
        # The full-machine job is not delayed: slowdowns comparable.
        assert easy.mean_slowdown <= fcfs.mean_slowdown + 1e-9

    def test_backfill_not_worse_on_realistic_workload(self, system20_trace):
        timeline = ClusterTimeline(system20_trace, 20)
        t0 = from_datetime(dt.datetime(2002, 1, 1))
        t1 = from_datetime(dt.datetime(2002, 7, 1))
        jobs = JobGenerator(seed=11, max_nodes=32).generate(t0, t1 - 20 * SECONDS_PER_DAY)
        fcfs = SchedulerSimulation(timeline, RandomPolicy(seed=0), (t0, t1)).run(jobs)
        easy = BackfillSchedulerSimulation(
            timeline, RandomPolicy(seed=0), (t0, t1)
        ).run(jobs)
        assert easy.jobs_completed >= fcfs.jobs_completed
        assert easy.mean_wait <= fcfs.mean_wait * 1.05

    def test_oversized_head_does_not_wedge_queue(self):
        timeline = self.make_timeline()
        impossible = Job(job_id=0, arrival=T0, nodes=100, duration=100.0)
        normal = Job(job_id=1, arrival=T0 + 1.0, nodes=2, duration=100.0)
        window = (T0, T0 + SECONDS_PER_DAY)
        result = BackfillSchedulerSimulation(
            timeline, RandomPolicy(seed=0), window
        ).run([impossible, normal])
        assert result.jobs_completed == 1  # the normal job ran
