#!/usr/bin/env python3
"""Deep dive: hazard rates, censoring, and node outliers.

Three questions an operator asks after reading the paper, answered on
the synthetic trace with the toolkit's extended statistics:

1. *Is the decreasing hazard statistically real, or a fitting artifact?*
   — likelihood-ratio test of exponential (constant hazard) nested in
   Weibull, plus the empirical life-table hazard.
2. *Do my sparse nodes bias the per-node MTBF estimates?* — compare the
   naive Weibull fit against the right-censored fit that accounts for
   the unobserved gap after each node's last failure.
3. *Which nodes are statistically anomalous?* — robust outlier
   detection on per-node counts (the analysis that uncovered system
   20's visualization nodes).

Usage::

    python examples/hazard_deep_dive.py
"""

import datetime as dt

import numpy as np

from repro import generate_lanl_trace
from repro.analysis import find_node_outliers, hazard_study
from repro.records.timeutils import from_datetime
from repro.stats import fit_weibull, fit_weibull_censored


def main() -> int:
    print("Generating system 20 ...")
    trace = generate_lanl_trace(seed=1).filter_systems([20])
    late = trace.between(from_datetime(dt.datetime(2000, 1, 1)), trace.data_end)

    # 1. Hazard study -------------------------------------------------------
    study = hazard_study(late)
    print("\n== Is the decreasing hazard real? ==")
    print(study.describe())
    print("\n  time-since-failure   empirical h   Weibull h")
    for mid, emp, fit in list(zip(study.bin_midpoints, study.empirical, study.fitted))[2:-2]:
        print(f"  {mid / 3600:12.1f} h      {emp:.3e}    {fit:.3e}")

    # 2. Censoring ----------------------------------------------------------
    print("\n== Censored vs naive per-node fits ==")
    observed = []
    censored = []
    for (sid, node), sub in late.by_node().items():
        starts = sub.start_times()
        gaps = np.diff(starts)
        observed.extend(gaps[gaps > 0].tolist())
        # The time from each node's last failure to the window end is
        # a right-censored gap.
        censored.append(late.data_end - float(starts[-1]))
    naive = fit_weibull(observed)
    corrected = fit_weibull_censored(observed, censored)
    print(f"  naive:    {naive.distribution.describe()}")
    print(f"  censored: {corrected.distribution.describe()}")
    naive_mean = naive.distribution.mean / 3600
    corrected_mean = corrected.distribution.mean / 3600
    print(
        f"  node-level MTBF estimate: {naive_mean:.1f} h naive vs "
        f"{corrected_mean:.1f} h censoring-corrected "
        f"(+{100 * (corrected_mean / naive_mean - 1):.0f}%)"
    )

    # 3. Outliers -----------------------------------------------------------
    print("\n== Node outliers (system 20, lifetime) ==")
    outliers, bulk = find_node_outliers(trace, 20, threshold=0.995)
    print(f"  bulk model: {bulk.describe()} (median {bulk.median:.0f} failures)")
    for outlier in outliers:
        print(
            f"  node {outlier.node_id:>2}: {outlier.count} failures "
            f"({outlier.excess_ratio:.1f}x the bulk median, "
            f"tail p = {outlier.tail_probability:.1e})"
        )
    print("  (the paper identified nodes 21-23 as the visualization nodes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
