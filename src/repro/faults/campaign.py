"""Deterministic chaos campaigns: compose every fault class, verify recovery.

A *campaign* runs a matrix of scenarios — {process chaos x data
corruption x filesystem faults} x {workflows: generate, resumable
generate, trace write, columnar-store write, store scrub/repair,
store merge, ingest, report, live serving} — each in a fresh
directory, and verifies
**recovery invariants** after every drill:

* the recovered trace is byte-identical to an unfaulted serial run
  (the RNG-stream contract survives retries, resumes and degradation);
* no partial/temporary artifacts remain on disk;
* the shard journal's meta/journal/payload consistency holds;
* report sections degrade (never crash) under corrupted input.

Results aggregate into a ``robustness_scorecard.json`` artifact written
atomically.  The scorecard is a pure function of ``(preset, seed)``:
wall-clock timings go to a separate ``campaign_timings.json`` sidecar
and every recorded error message is scrubbed of filesystem paths, so
two runs of the same campaign produce byte-identical scorecards — the
file can be committed, diffed, and gated on in CI.

This is the standing harness new storage/serving subsystems must pass:
add a scenario per new write path and the invariants come for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.faults.chaos import chaos_roundtrip
from repro.faults.fsfaults import FsFaults, fsfaults_env
from repro.faults.process_ops import ProcessChaos, chaos_env
from repro.io.csv_format import write_lanl_csv
from repro.io.jsonl_format import write_jsonl
from repro.records.trace import FailureTrace
from repro.resilience.atomic import atomic_write_json
from repro.resilience.journal import ShardJournal
from repro.synth.generator import SupervisionConfig, TraceGenerator

__all__ = [
    "Scenario",
    "InvariantCheck",
    "ScenarioOutcome",
    "CampaignResult",
    "PRESETS",
    "run_campaign",
]

SCORECARD_NAME = "robustness_scorecard.json"
TIMINGS_NAME = "campaign_timings.json"

#: Workflows a scenario can drill.
WORKFLOWS = (
    "generate", "write-csv", "write-jsonl", "write-store",
    "scrub-store", "merge-store", "ingest", "report", "serve",
)

#: Fault classes a scenario can arm (``none`` = clean baseline).
FAULT_KINDS = ("none", "fs", "process", "corruption")

#: Ceiling on generate attempts (first try + resumes) per scenario.
MAX_ATTEMPTS = 4


@dataclass(frozen=True)
class Scenario:
    """One cell of the campaign matrix.

    Parameters
    ----------
    name:
        Stable identifier; keys the scorecard and names the scenario's
        directory.
    workflow:
        One of :data:`WORKFLOWS`.
    fault:
        One of :data:`FAULT_KINDS`.
    operator:
        The fault operator (an fsfaults operator for ``fault="fs"``, a
        process operator for ``fault="process"``; unused otherwise).
    sites / path_contains / times / skip:
        Forwarded to :class:`~repro.faults.fsfaults.FsFaults`.
    rate:
        Corruption rate for ``fault="corruption"`` scenarios.
    mode:
        Ingest mode for corruption scenarios; for ``serve`` scenarios
        the mid-traffic drill phase (``quarantine`` damages and scrubs
        a shard while the service is live, ``repair`` additionally
        heals it; anything else serves a clean store).
    systems:
        System IDs the workflow generates (small ones keep drills fast).
    workers:
        Worker processes for the generate workflow.
    supervised:
        Run generation under :class:`SupervisionConfig` (retry ladder);
        required for process-chaos scenarios, whose injected failures
        must be absorbed rather than propagated.
    """

    name: str
    workflow: str
    fault: str = "none"
    operator: str = ""
    sites: Tuple[str, ...] = field(default_factory=tuple)
    path_contains: str = ""
    times: int = 1
    skip: int = 0
    rate: float = 0.05
    mode: str = "lenient"
    systems: Tuple[int, ...] = (2, 13)
    workers: int = 1
    supervised: bool = False

    def __post_init__(self) -> None:
        if self.workflow not in WORKFLOWS:
            raise ValueError(
                f"workflow must be one of {WORKFLOWS}, got {self.workflow!r}"
            )
        if self.fault not in FAULT_KINDS:
            raise ValueError(
                f"fault must be one of {FAULT_KINDS}, got {self.fault!r}"
            )
        if self.fault in ("fs", "process") and not self.operator:
            raise ValueError(f"scenario {self.name}: fault {self.fault} needs an operator")
        object.__setattr__(self, "sites", tuple(self.sites))
        object.__setattr__(self, "systems", tuple(self.systems))


@dataclass(frozen=True)
class InvariantCheck:
    """One recovery invariant's verdict for one scenario."""

    name: str
    passed: bool
    detail: str = ""


@dataclass(frozen=True)
class ScenarioOutcome:
    """What happened when one scenario was drilled."""

    scenario: Scenario
    attempts: int
    completed: bool
    injections: int
    error: str = ""
    invariants: Tuple[InvariantCheck, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.completed and all(check.passed for check in self.invariants)

    def failed_invariants(self) -> List[str]:
        return [check.name for check in self.invariants if not check.passed]


@dataclass(frozen=True)
class CampaignResult:
    """A full campaign run: per-scenario outcomes plus rollups."""

    preset: str
    seed: int
    outcomes: Tuple[ScenarioOutcome, ...]
    wall_times: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def scorecard(self) -> dict:
        """The deterministic scorecard payload (no paths, no timings)."""
        scenarios = []
        for outcome in self.outcomes:
            scenario = outcome.scenario
            scenarios.append(
                {
                    "name": scenario.name,
                    "workflow": scenario.workflow,
                    "fault": scenario.fault,
                    "operator": scenario.operator,
                    "systems": list(scenario.systems),
                    "attempts": outcome.attempts,
                    "completed": outcome.completed,
                    "injections": outcome.injections,
                    "error": outcome.error,
                    "ok": outcome.ok,
                    "invariants": [
                        {
                            "name": check.name,
                            "passed": check.passed,
                            "detail": check.detail,
                        }
                        for check in outcome.invariants
                    ],
                }
            )
        checks = [c for o in self.outcomes for c in o.invariants]
        return {
            "kind": "repro-robustness-scorecard",
            "preset": self.preset,
            "seed": self.seed,
            "ok": self.ok,
            "scenarios": scenarios,
            "summary": {
                "scenarios": len(self.outcomes),
                "scenarios_ok": sum(1 for o in self.outcomes if o.ok),
                "invariants": len(checks),
                "invariants_failed": sum(1 for c in checks if not c.passed),
                "total_injections": sum(o.injections for o in self.outcomes),
            },
        }

    def describe(self) -> str:
        """Human-readable campaign summary (one line per scenario)."""
        lines = [
            f"chaos campaign '{self.preset}' (seed {self.seed}): "
            f"{sum(1 for o in self.outcomes if o.ok)}/{len(self.outcomes)} "
            "scenarios ok"
        ]
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else "FAILED"
            detail = ""
            if not outcome.ok:
                failed = outcome.failed_invariants()
                detail = (
                    f" [{', '.join(failed)}]" if failed else f" [{outcome.error}]"
                )
            lines.append(
                f"  {outcome.scenario.name:<24} {status:<6} "
                f"attempts={outcome.attempts} injections={outcome.injections}"
                + detail
            )
        lines.append("ALL INVARIANTS HOLD" if self.ok else "INVARIANT FAILURES")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

_SMOKE = (
    Scenario("baseline-clean", "generate"),
    Scenario(
        "fs-enospc-journal", "generate", fault="fs", operator="enospc",
        sites=("journal.append",),
    ),
    Scenario(
        "fs-torn-payload", "generate", fault="fs", operator="torn-write",
        sites=("atomic.bytes",), path_contains=".pkl",
    ),
    Scenario(
        "fs-fsync-payload", "generate", fault="fs", operator="fsync-fail",
        sites=("atomic.fsync",), path_contains=".pkl",
    ),
    Scenario(
        "proc-flaky-shard", "generate", fault="process",
        operator="flaky-shard", supervised=True,
    ),
    Scenario(
        "fs-enospc-csv", "write-csv", fault="fs", operator="enospc",
        sites=("io.csv",),
    ),
    Scenario(
        "fs-torn-csv", "write-csv", fault="fs", operator="torn-write",
        sites=("atomic.text",),
    ),
    Scenario(
        "fs-slow-jsonl", "write-jsonl", fault="fs", operator="slow-io",
        sites=("io.jsonl",),
    ),
    Scenario(
        "fs-enospc-store-column", "write-store", fault="fs",
        operator="enospc", sites=("store.column",),
    ),
    Scenario(
        "fs-torn-store-manifest", "write-store", fault="fs",
        operator="torn-write", sites=("atomic.text",),
        path_contains="manifest.json",
    ),
    Scenario(
        "scrub-enospc-ledger", "scrub-store", fault="fs", operator="enospc",
        sites=("store.scrub.ledger",),
    ),
    Scenario(
        "merge-enospc-manifest", "merge-store", fault="fs",
        operator="enospc", sites=("store.merge.manifest",),
    ),
    Scenario("corrupt-ingest", "ingest", fault="corruption", rate=0.05),
    Scenario("corrupt-report", "report", fault="corruption", rate=0.10),
    Scenario("serve-baseline", "serve"),
    Scenario(
        "serve-slow-reads", "serve", fault="fs", operator="slow-io",
        sites=("store.read.column",), times=6,
    ),
    Scenario("serve-quarantine-midflight", "serve", mode="quarantine"),
)

_FULL = _SMOKE + (
    Scenario(
        "fs-enospc-meta", "generate", fault="fs", operator="enospc",
        sites=("atomic.text",), path_contains="meta.json",
    ),
    Scenario(
        "fs-torn-journal", "generate", fault="fs", operator="torn-write",
        sites=("journal.append",),
    ),
    Scenario(
        "fs-enospc-second-shard", "generate", fault="fs", operator="enospc",
        sites=("atomic.bytes",), path_contains=".pkl", skip=1,
    ),
    Scenario(
        "fs-double-enospc", "generate", fault="fs", operator="enospc",
        sites=("journal.append", "atomic.bytes"), times=2,
    ),
    Scenario(
        "proc-kill-worker", "generate", fault="process",
        operator="kill-worker", workers=2, supervised=True,
        systems=(2, 13, 20),
    ),
    Scenario(
        "fs-enospc-jsonl", "write-jsonl", fault="fs", operator="enospc",
        sites=("io.jsonl",),
    ),
    Scenario(
        "fs-fsync-store-column", "write-store", fault="fs",
        operator="fsync-fail", sites=("atomic.fsync",), path_contains=".npy",
    ),
    Scenario(
        "fs-enospc-store-manifest", "write-store", fault="fs",
        operator="enospc", sites=("store.manifest",),
    ),
    Scenario(
        "scrub-torn-ledger", "scrub-store", fault="fs",
        operator="torn-write", sites=("atomic.text",),
        path_contains="ledger.jsonl",
    ),
    Scenario(
        "merge-enospc-column", "merge-store", fault="fs",
        operator="enospc", sites=("store.column",),
    ),
    Scenario(
        "corrupt-repair-heavy", "report", fault="corruption", rate=0.20,
        mode="repair",
    ),
    Scenario(
        "serve-enospc-reads", "serve", fault="fs", operator="enospc",
        sites=("store.read.column",), times=2, mode="quarantine",
    ),
    Scenario("serve-repair-under-traffic", "serve", mode="repair"),
)

PRESETS: Dict[str, Tuple[Scenario, ...]] = {
    "smoke": _SMOKE,
    "full": _FULL,
}


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


def _scrub(text: str, root: Path) -> str:
    """Make an error message path-free so scorecards stay deterministic."""
    return text.replace(str(root), "<campaign>")


def _no_partials(directory: Path) -> InvariantCheck:
    """No staged temp files may survive a drill, failed writes included."""
    leftovers = sorted(
        str(p.relative_to(directory)) for p in directory.rglob("*.tmp")
    )
    return InvariantCheck(
        "no-partial-artifacts",
        not leftovers,
        "" if not leftovers else f"leftover temp files: {', '.join(leftovers)}",
    )


def _reference_csv(
    seed: int, systems: Tuple[int, ...], cache: Dict[Tuple[int, ...], bytes],
    workdir: Path,
) -> bytes:
    """Unfaulted serial reference trace as CSV bytes (cached per inventory)."""
    if systems not in cache:
        trace = TraceGenerator(seed=seed).generate(list(systems))
        path = workdir / f"reference-{'-'.join(map(str, systems))}.csv"
        write_lanl_csv(trace, path)
        cache[systems] = path.read_bytes()
    return cache[systems]


def _make_fs_spec(scenario: Scenario, seed: int, state_dir: Path) -> FsFaults:
    return FsFaults(
        operator=scenario.operator,
        times=scenario.times,
        state_dir=str(state_dir),
        sites=scenario.sites,
        path_contains=scenario.path_contains,
        skip=scenario.skip,
        seed=seed,
        slow_seconds=0.01,
    )


def _run_generate(
    scenario: Scenario, seed: int, scenario_dir: Path, reference: bytes
) -> ScenarioOutcome:
    """Drill a journaled generate run: fault, crash, resume, verify."""
    run_dir = scenario_dir / "run"
    state_dir = scenario_dir / "fault-state"
    generator = TraceGenerator(seed=seed)
    meta = generator.journal_meta()
    supervision = SupervisionConfig() if scenario.supervised else None

    fs_spec = process_spec = None
    if scenario.fault == "fs":
        fs_spec = _make_fs_spec(scenario, seed, state_dir)
    elif scenario.fault == "process":
        process_spec = ProcessChaos(
            operator=scenario.operator,
            times=scenario.times,
            state_dir=str(state_dir),
        )

    trace: Optional[FailureTrace] = None
    errors: List[str] = []
    attempts = 0
    with fsfaults_env(fs_spec), chaos_env(process_spec):
        while trace is None and attempts < MAX_ATTEMPTS:
            attempts += 1
            resume = (run_dir / "meta.json").exists()
            try:
                journal = ShardJournal(run_dir, meta=meta, resume=resume)
                trace = generator.generate(
                    list(scenario.systems),
                    workers=scenario.workers,
                    supervision=supervision,
                    journal=journal,
                )
            except Exception as exc:
                errors.append(
                    _scrub(f"{type(exc).__name__}: {exc}", scenario_dir)
                )

    injections = 0
    if fs_spec is not None:
        injections = fs_spec.injections()
    elif process_spec is not None:
        injections = process_spec.injections()

    invariants = [_no_partials(scenario_dir)]
    if scenario.fault != "none":
        invariants.append(
            InvariantCheck(
                "fault-injected",
                injections >= 1,
                "" if injections else "armed fault never fired",
            )
        )
    journal_problems: List[str] = []
    try:
        journal_problems = ShardJournal(run_dir, meta=meta, resume=True).verify()
    except Exception as exc:
        journal_problems = [
            _scrub(f"{type(exc).__name__}: {exc}", scenario_dir)
        ]
    invariants.append(
        InvariantCheck(
            "journal-consistent",
            not journal_problems,
            "; ".join(journal_problems),
        )
    )
    if trace is not None:
        # The armed env is restored by now, so this write cannot fault.
        trace_path = scenario_dir / "trace.csv"
        write_lanl_csv(trace, trace_path)
        identical = trace_path.read_bytes() == reference
        invariants.append(
            InvariantCheck(
                "trace-identical",
                identical,
                "" if identical else "recovered trace differs from "
                "unfaulted serial reference",
            )
        )
    return ScenarioOutcome(
        scenario=scenario,
        attempts=attempts,
        completed=trace is not None,
        injections=injections,
        error="" if trace is not None else "; ".join(errors),
        invariants=tuple(invariants),
    )


def _run_write(
    scenario: Scenario, seed: int, scenario_dir: Path, reference: bytes
) -> ScenarioOutcome:
    """Drill a trace-writer overwrite: the original must survive a fault."""
    trace = TraceGenerator(seed=seed).generate(list(scenario.systems))
    write = write_lanl_csv if scenario.workflow == "write-csv" else write_jsonl
    target = scenario_dir / (
        "trace.csv" if scenario.workflow == "write-csv" else "trace.jsonl"
    )
    write(trace, target)  # pre-existing artifact the fault must not damage
    original = target.read_bytes()

    state_dir = scenario_dir / "fault-state"
    fs_spec = _make_fs_spec(scenario, seed, state_dir)
    attempts = 0
    errors: List[str] = []
    completed = False
    original_survived = True
    with fsfaults_env(fs_spec):
        while not completed and attempts < MAX_ATTEMPTS:
            attempts += 1
            try:
                write(trace, target)
                completed = True
            except Exception as exc:
                errors.append(
                    _scrub(f"{type(exc).__name__}: {exc}", scenario_dir)
                )
                if target.read_bytes() != original:
                    original_survived = False

    injections = fs_spec.injections()
    invariants = [
        _no_partials(scenario_dir),
        InvariantCheck(
            "fault-injected",
            injections >= 1,
            "" if injections else "armed fault never fired",
        ),
        InvariantCheck(
            "original-untouched",
            original_survived,
            "" if original_survived else "a failed write damaged the "
            "pre-existing artifact",
        ),
    ]
    if completed:
        identical = target.read_bytes() == (
            original if scenario.workflow == "write-jsonl" else reference
        )
        invariants.append(
            InvariantCheck(
                "trace-identical",
                identical,
                "" if identical else "rewritten artifact differs from the "
                "unfaulted write",
            )
        )
    return ScenarioOutcome(
        scenario=scenario,
        attempts=attempts,
        completed=completed,
        injections=injections,
        error="" if completed else "; ".join(errors),
        invariants=tuple(invariants),
    )


def _run_write_store(
    scenario: Scenario, seed: int, scenario_dir: Path, reference: bytes
) -> ScenarioOutcome:
    """Drill a journaled columnar-store write: fault, resume, verify.

    The recovery invariants are the store's crash-safety contract: a
    faulted write never publishes a manifest over missing shards
    (``store verify`` comes back clean after recovery), and the
    resumed store exports byte-identically to an unfaulted serial run.
    """
    from repro.store import ColumnarStore, export_store, verify_store

    run_dir = scenario_dir / "run"
    store_dir = scenario_dir / "store"
    state_dir = scenario_dir / "fault-state"
    generator = TraceGenerator(seed=seed)
    meta = generator.journal_meta()
    supervision = SupervisionConfig() if scenario.supervised else None

    fs_spec = process_spec = None
    if scenario.fault == "fs":
        fs_spec = _make_fs_spec(scenario, seed, state_dir)
    elif scenario.fault == "process":
        process_spec = ProcessChaos(
            operator=scenario.operator,
            times=scenario.times,
            state_dir=str(state_dir),
        )

    manifest = None
    errors: List[str] = []
    attempts = 0
    with fsfaults_env(fs_spec), chaos_env(process_spec):
        while manifest is None and attempts < MAX_ATTEMPTS:
            attempts += 1
            resume = (run_dir / "meta.json").exists()
            try:
                journal = ShardJournal(run_dir, meta=meta, resume=resume)
                manifest = generator.generate_store(
                    store_dir,
                    list(scenario.systems),
                    workers=scenario.workers,
                    supervision=supervision,
                    journal=journal,
                )
            except Exception as exc:
                errors.append(
                    _scrub(f"{type(exc).__name__}: {exc}", scenario_dir)
                )
                # A faulted attempt must never present a complete store:
                # either no manifest was published, or — when the fault
                # hit a column file of an already-manifested directory —
                # verification must catch the damage.
                problems = verify_store(store_dir, deep=True)
                if not problems:
                    errors.append(
                        "faulted store verified clean before recovery"
                    )
                    break

    injections = 0
    if fs_spec is not None:
        injections = fs_spec.injections()
    elif process_spec is not None:
        injections = process_spec.injections()

    invariants = [_no_partials(scenario_dir)]
    if scenario.fault != "none":
        invariants.append(
            InvariantCheck(
                "fault-injected",
                injections >= 1,
                "" if injections else "armed fault never fired",
            )
        )
    journal_problems: List[str] = []
    try:
        journal_problems = ShardJournal(run_dir, meta=meta, resume=True).verify()
    except Exception as exc:
        journal_problems = [
            _scrub(f"{type(exc).__name__}: {exc}", scenario_dir)
        ]
    invariants.append(
        InvariantCheck(
            "journal-consistent",
            not journal_problems,
            "; ".join(journal_problems),
        )
    )
    if manifest is not None:
        problems = verify_store(store_dir, deep=True)
        invariants.append(
            InvariantCheck(
                "store-verifies",
                not problems,
                "; ".join(_scrub(p, scenario_dir) for p in problems),
            )
        )
        # The armed env is restored by now, so this export cannot fault.
        export_path = scenario_dir / "trace.csv"
        export_store(ColumnarStore(store_dir), export_path)
        identical = export_path.read_bytes() == reference
        invariants.append(
            InvariantCheck(
                "trace-identical",
                identical,
                "" if identical else "recovered store exports differently "
                "from the unfaulted serial reference",
            )
        )
    return ScenarioOutcome(
        scenario=scenario,
        attempts=attempts,
        completed=manifest is not None,
        injections=injections,
        error="" if manifest is not None else "; ".join(errors),
        invariants=tuple(invariants),
    )


def _run_scrub_store(
    scenario: Scenario, seed: int, scenario_dir: Path, reference: bytes
) -> ScenarioOutcome:
    """Drill the self-healing loop under filesystem faults.

    Build a store, damage two shards deterministically (deleted column
    file + bit flip), scrub under the armed fault until the quarantine
    ledger lands, then assert the contract: a degraded read completes
    with exact skipped-row accounting even mid-heal, and repair from
    the source trace restores the store to a byte-identical,
    deep-verifying state.
    """
    from repro.store import (
        ColumnarStore,
        export_store,
        repair_store,
        scrub_store,
        store_from_trace,
        summarize_store,
        verify_store,
    )

    trace = TraceGenerator(seed=seed).generate(list(scenario.systems))
    store_dir = scenario_dir / "store"
    store_from_trace(trace, store_dir, shard_rows=100)
    shards = sorted(
        p.name for p in (store_dir / "shards").glob("*-start_time.npy")
    )
    first = shards[0].split("-")[0]
    second = shards[1].split("-")[0] if len(shards) > 1 else first
    (store_dir / "shards" / f"{first}-node_id.npy").unlink()
    victim = store_dir / "shards" / f"{second}-root_cause.npy"
    payload = bytearray(victim.read_bytes())
    payload[-1] ^= 0x01
    victim.write_bytes(bytes(payload))
    damaged = sorted({first, second})

    state_dir = scenario_dir / "fault-state"
    fs_spec = _make_fs_spec(scenario, seed, state_dir)
    attempts = 0
    errors: List[str] = []
    scrub_report = None
    with fsfaults_env(fs_spec):
        while scrub_report is None and attempts < MAX_ATTEMPTS:
            attempts += 1
            try:
                scrub_report = scrub_store(store_dir)
            except Exception as exc:
                errors.append(
                    _scrub(f"{type(exc).__name__}: {exc}", scenario_dir)
                )

    injections = fs_spec.injections()
    invariants = [_no_partials(scenario_dir)]
    if scenario.fault != "none":
        invariants.append(
            InvariantCheck(
                "fault-injected",
                injections >= 1,
                "" if injections else "armed fault never fired",
            )
        )
    # Even between a crashed scrub and its retry, a degraded read must
    # complete and account for exactly the rows it could not reach.
    degraded_ok = False
    degraded_detail = ""
    try:
        handle = ColumnarStore(store_dir, on_damage="skip")
        summary = summarize_store(handle)
        degraded_ok = (
            summary.rows + handle.degraded.rows_skipped
            == handle.manifest.row_count
        )
        if not degraded_ok:
            degraded_detail = (
                f"rows {summary.rows} + skipped "
                f"{handle.degraded.rows_skipped} != manifest "
                f"{handle.manifest.row_count}"
            )
    except Exception as exc:
        degraded_detail = _scrub(
            f"{type(exc).__name__}: {exc}", scenario_dir
        )
    invariants.append(
        InvariantCheck("degraded-read-completes", degraded_ok, degraded_detail)
    )
    if scrub_report is not None:
        quarantined_ok = sorted(scrub_report.quarantined) == damaged
        invariants.append(
            InvariantCheck(
                "damage-quarantined",
                quarantined_ok,
                "" if quarantined_ok else (
                    f"expected shards {damaged} quarantined, got "
                    f"{sorted(scrub_report.quarantined)}"
                ),
            )
        )
        roundtrip_ok = False
        roundtrip_detail = ""
        try:
            repair = repair_store(store_dir, trace)
            if not repair.ok:
                roundtrip_detail = "repair left shards quarantined"
            else:
                problems = verify_store(store_dir, deep=True)
                if problems:
                    roundtrip_detail = "; ".join(
                        _scrub(p, scenario_dir) for p in problems
                    )
                else:
                    export_path = scenario_dir / "trace.csv"
                    export_store(ColumnarStore(store_dir), export_path)
                    roundtrip_ok = export_path.read_bytes() == reference
                    if not roundtrip_ok:
                        roundtrip_detail = (
                            "repaired store exports differently from the "
                            "unfaulted serial reference"
                        )
        except Exception as exc:
            roundtrip_detail = _scrub(
                f"{type(exc).__name__}: {exc}", scenario_dir
            )
        invariants.append(
            InvariantCheck(
                "quarantine-repair-roundtrip", roundtrip_ok, roundtrip_detail
            )
        )
    return ScenarioOutcome(
        scenario=scenario,
        attempts=attempts,
        completed=scrub_report is not None,
        injections=injections,
        error="" if scrub_report is not None else "; ".join(errors),
        invariants=tuple(invariants),
    )


def _run_merge_store(
    scenario: Scenario, seed: int, scenario_dir: Path, reference: bytes
) -> ScenarioOutcome:
    """Drill a federated merge under filesystem faults.

    Two single-system source stores merge into a new one while faults
    tear column writes or the manifest publish.  The publish invariant
    is checked after every failed attempt: if a manifest exists at all,
    it must not reference missing shard files.  After recovery the
    merged store must deep-verify and export byte-identically to the
    unfaulted serial reference of the combined inventory.
    """
    from repro.store import (
        ColumnarStore,
        export_store,
        merge_stores,
        store_from_trace,
        verify_store,
    )

    trace = TraceGenerator(seed=seed).generate(list(scenario.systems))
    sources = []
    for index, system_id in enumerate(scenario.systems):
        source_dir = scenario_dir / f"source-{index}"
        store_from_trace(
            trace.filter_systems([system_id]), source_dir, shard_rows=100
        )
        sources.append(source_dir)
    merged_dir = scenario_dir / "merged"

    state_dir = scenario_dir / "fault-state"
    fs_spec = _make_fs_spec(scenario, seed, state_dir)
    attempts = 0
    errors: List[str] = []
    manifest = None
    publish_ok = True
    publish_detail = ""
    with fsfaults_env(fs_spec):
        while manifest is None and attempts < MAX_ATTEMPTS:
            attempts += 1
            try:
                manifest = merge_stores(merged_dir, sources, shard_rows=100)
            except Exception as exc:
                errors.append(
                    _scrub(f"{type(exc).__name__}: {exc}", scenario_dir)
                )
                if (merged_dir / "manifest.json").exists():
                    missing = [
                        p
                        for p in verify_store(merged_dir, deep=False)
                        if "missing" in p
                    ]
                    if missing:
                        publish_ok = False
                        publish_detail = "; ".join(
                            _scrub(p, scenario_dir) for p in missing
                        )

    injections = fs_spec.injections()
    invariants = [
        _no_partials(scenario_dir),
        InvariantCheck(
            "fault-injected",
            injections >= 1,
            "" if injections else "armed fault never fired",
        ),
        InvariantCheck(
            "publish-never-references-missing", publish_ok, publish_detail
        ),
    ]
    if manifest is not None:
        problems = verify_store(merged_dir, deep=True)
        invariants.append(
            InvariantCheck(
                "store-verifies",
                not problems,
                "; ".join(_scrub(p, scenario_dir) for p in problems),
            )
        )
        export_path = scenario_dir / "trace.csv"
        export_store(ColumnarStore(merged_dir), export_path)
        identical = export_path.read_bytes() == reference
        invariants.append(
            InvariantCheck(
                "trace-identical",
                identical,
                "" if identical else "merged store exports differently "
                "from the unfaulted serial reference",
            )
        )
    return ScenarioOutcome(
        scenario=scenario,
        attempts=attempts,
        completed=manifest is not None,
        injections=injections,
        error="" if manifest is not None else "; ".join(errors),
        invariants=tuple(invariants),
    )


def _run_serve(
    scenario: Scenario, seed: int, scenario_dir: Path
) -> ScenarioOutcome:
    """Drill the analytics service under live traffic.

    Boots a real :class:`~repro.serve.server.ServerThread` over a
    freshly built store and issues **sequential** HTTP requests (the
    scorecard is byte-compared in CI, so every invariant must be a
    deterministic boolean).  The serving contract under test:

    * no request ever gets a 5xx or a hung connection — damage and
      injected faults surface as degraded/stale answers or honest 429s;
    * responses on an undamaged store are byte-identical to the
      equivalent ``repro store analyze --json`` output;
    * quarantining a shard mid-traffic (``mode="quarantine"``)
      invalidates the result cache and flips responses to
      degraded-with-coverage, never errors;
    * repairing the store mid-traffic (``mode="repair"``) restores
      complete, byte-identical answers;
    * the SIGTERM-equivalent drain completes with in-flight work done.
    """
    import json as _json

    from repro.serve import ServeConfig, ServerThread
    from repro.serve.client import get
    from repro.store import (
        ColumnarStore,
        Predicate,
        repair_store,
        scrub_store,
        store_from_trace,
        summarize_store,
    )

    trace = TraceGenerator(seed=seed).generate(list(scenario.systems))
    store_dir = scenario_dir / "store"
    store_from_trace(trace, store_dir, shard_rows=100)

    def dump(payload: dict) -> str:
        return _json.dumps(payload, indent=2, sort_keys=True)

    # References computed on the pristine store, before any damage.
    reference_full = dump(summarize_store(ColumnarStore(store_dir)).to_dict())
    reference_by_system = {
        system: dump(
            summarize_store(
                ColumnarStore(store_dir),
                predicate=Predicate.build(systems=[system]),
            ).to_dict()
        )
        for system in scenario.systems
    }

    fs_spec = None
    if scenario.fault == "fs":
        fs_spec = _make_fs_spec(scenario, seed, scenario_dir / "fault-state")

    # A long breaker cooldown keeps half-open probes (wall-clock
    # dependent) out of the drill window, so the rung each request
    # lands on is a pure function of the request sequence.
    config = ServeConfig(
        port=0, max_concurrency=2, max_queue=8, breaker_cooldown=600.0
    )

    statuses: List[int] = []
    hung: List[str] = []
    wellformed = True
    baseline_identical = True
    degraded_with_coverage = False
    stale_seen = False
    cache_invalidated = True
    repaired_identical = True
    drain_clean = True

    def query_paths() -> List[Tuple[str, str]]:
        """(path, reference) pairs covering the full and per-system views."""
        pairs = [("/v1/summary", reference_full)]
        pairs.extend(
            (f"/v1/analyze?system={system}", reference_by_system[system])
            for system in scenario.systems
        )
        return pairs

    try:
        with ServerThread(store_dir, config) as handle:
            def request(path: str):
                try:
                    response = get(handle.host, handle.port, path, timeout=60.0)
                except OSError as exc:
                    hung.append(
                        _scrub(f"{type(exc).__name__}: {exc}", scenario_dir)
                    )
                    return None
                statuses.append(response.status)
                return response

            def check_meta(response) -> None:
                nonlocal wellformed, degraded_with_coverage, stale_seen
                meta = response.meta()
                if not all(
                    key in meta for key in ("degraded", "stale", "coverage")
                ):
                    wellformed = False
                    return
                if meta["stale"]:
                    stale_seen = True
                if meta["degraded"] and isinstance(meta["coverage"], dict):
                    if any(value < 1.0 for value in meta["coverage"].values()):
                        degraded_with_coverage = True

            # Phase A: clean traffic; warms the cache and the last-good
            # stale fallback, and proves byte-identity with the batch path.
            request("/healthz")
            request("/readyz")
            for path, reference in query_paths():
                response = request(path)
                if response is None or response.status != 200:
                    baseline_identical = False
                    continue
                check_meta(response)
                if dump(response.body.get("data", {})) != reference:
                    baseline_identical = False

            # Mid-traffic damage: quarantine the first shard while the
            # service keeps answering.
            if scenario.mode in ("quarantine", "repair"):
                victim = sorted(
                    (store_dir / "shards").glob("*-node_id.npy")
                )[0]
                victim.unlink()
                scrub_store(store_dir)

            # Phase B: drilled traffic (fault armed if the scenario has
            # one).  Two passes over the query mix exercise the ladder
            # past the breaker threshold.
            def drilled_paths(pass_index: int) -> List[str]:
                if scenario.mode in ("quarantine", "repair"):
                    # Re-issue the warmed queries: the rewritten ledger
                    # must invalidate them, and the stale fallback needs
                    # matching keys.
                    return [path for path, _ in query_paths()]
                # Clean store, unchanged generation: bust the cache with
                # an all-admitting time window that varies per pass, so
                # every request really scans (and hits the armed fault).
                window = f"t_min={-1.0 - pass_index:g}"
                return [f"/v1/analyze?{window}"] + [
                    f"/v1/analyze?system={system}&{window}"
                    for system in scenario.systems
                ]

            def drilled_traffic() -> None:
                nonlocal cache_invalidated
                first = True
                for pass_index in range(2):
                    for path in drilled_paths(pass_index):
                        response = request(path)
                        if response is None or response.status not in (200, 429):
                            continue
                        if response.status == 200:
                            check_meta(response)
                            if (
                                first
                                and scenario.mode in ("quarantine", "repair")
                                and response.meta().get("cache") == "hit"
                            ):
                                # Quarantine rewrote the ledger, so the
                                # pre-damage cache entry must not serve.
                                cache_invalidated = False
                        first = False

            if fs_spec is not None:
                with fsfaults_env(fs_spec):
                    drilled_traffic()
            else:
                drilled_traffic()

            # Phase C: heal under live traffic, then answers must be
            # complete and byte-identical again.
            if scenario.mode == "repair":
                repair_store(store_dir, trace)
                for path, reference in query_paths():
                    response = request(path)
                    if response is None or response.status != 200:
                        repaired_identical = False
                        continue
                    meta = response.meta()
                    if meta.get("degraded") or meta.get("stale"):
                        repaired_identical = False
                    elif dump(response.body.get("data", {})) != reference:
                        repaired_identical = False
            request("/v1/stats")
    except Exception as exc:
        drain_clean = False
        hung.append(_scrub(f"{type(exc).__name__}: {exc}", scenario_dir))

    injections = fs_spec.injections() if fs_spec is not None else 0
    bad_statuses = sorted({s for s in statuses if s not in (200, 429)})
    invariants = [
        _no_partials(scenario_dir),
        InvariantCheck(
            "no-5xx-no-hangs",
            not bad_statuses and not hung,
            "" if not bad_statuses and not hung else (
                f"statuses {bad_statuses}; connection errors: "
                f"{'; '.join(hung)}"
            ),
        ),
        InvariantCheck(
            "responses-well-formed",
            wellformed,
            "" if wellformed else "a 200 response lacked degraded/stale/"
            "coverage metadata",
        ),
        InvariantCheck(
            "baseline-identical",
            baseline_identical,
            "" if baseline_identical else "pristine-store responses differ "
            "from the batch analyze output",
        ),
        InvariantCheck(
            "drain-clean",
            drain_clean,
            "" if drain_clean else "graceful drain failed: "
            + "; ".join(hung[-1:]),
        ),
    ]
    if scenario.fault != "none":
        invariants.append(
            InvariantCheck(
                "fault-injected",
                injections >= 1,
                "" if injections else "armed fault never fired",
            )
        )
    if scenario.mode in ("quarantine", "repair"):
        invariants.append(
            InvariantCheck(
                "degraded-metadata",
                degraded_with_coverage or stale_seen,
                "" if degraded_with_coverage or stale_seen else (
                    "no response carried degraded coverage or stale "
                    "metadata after mid-traffic quarantine"
                ),
            )
        )
        invariants.append(
            InvariantCheck(
                "cache-invalidated",
                cache_invalidated,
                "" if cache_invalidated else "a pre-quarantine cache entry "
                "served after the ledger changed",
            )
        )
    if scenario.mode == "repair":
        invariants.append(
            InvariantCheck(
                "repaired-identical",
                repaired_identical,
                "" if repaired_identical else "post-repair responses are "
                "not complete and byte-identical",
            )
        )
    completed = drain_clean and not hung
    return ScenarioOutcome(
        scenario=scenario,
        attempts=1,
        completed=completed,
        injections=injections,
        error="" if completed else "; ".join(hung),
        invariants=tuple(invariants),
    )


def _run_corruption(
    scenario: Scenario, seed: int, scenario_dir: Path
) -> ScenarioOutcome:
    """Drill corrupt -> ingest (-> report): degrade, never crash."""
    trace = TraceGenerator(seed=seed).generate(list(scenario.systems))
    run_report = scenario.workflow == "report"
    try:
        report = chaos_roundtrip(
            trace,
            seed=seed,
            rate=scenario.rate,
            mode=scenario.mode,
            workdir=scenario_dir / "roundtrip",
            run_report=run_report,
        )
    except Exception as exc:
        return ScenarioOutcome(
            scenario=scenario,
            attempts=1,
            completed=False,
            injections=0,
            error=_scrub(f"{type(exc).__name__}: {exc}", scenario_dir),
            invariants=(_no_partials(scenario_dir),),
        )

    invariants = [
        _no_partials(scenario_dir),
        InvariantCheck(
            "fault-injected",
            report.corruption.n_corrupted >= 1,
            "" if report.corruption.n_corrupted else "injector corrupted "
            "zero rows",
        ),
        InvariantCheck(
            "ingest-survives",
            report.survived,
            "" if report.survived else "ingest blew its error budget",
        ),
    ]
    if run_report:
        paper = report.paper
        crashed = [] if paper is None else [
            section.name for section in paper.sections
            if section.status == "failed"
        ]
        invariants.append(
            InvariantCheck(
                "report-degrades",
                paper is not None and not crashed,
                "paper report did not run" if paper is None
                else ("" if not crashed else f"sections crashed: {', '.join(crashed)}"),
            )
        )
    return ScenarioOutcome(
        scenario=scenario,
        attempts=1,
        completed=report.survived,
        injections=report.corruption.n_corrupted,
        error="",
        invariants=tuple(invariants),
    )


def run_scenario(
    scenario: Scenario,
    seed: int,
    scenario_dir: Path,
    reference: bytes = b"",
) -> ScenarioOutcome:
    """Drill one scenario under ``scenario_dir``; never raises."""
    scenario_dir.mkdir(parents=True, exist_ok=True)
    with obs.span(
        "campaign.scenario",
        scenario=scenario.name,
        workflow=scenario.workflow,
        fault=scenario.fault,
    ) as span:
        try:
            if scenario.workflow == "generate":
                outcome = _run_generate(scenario, seed, scenario_dir, reference)
            elif scenario.workflow in ("write-csv", "write-jsonl"):
                outcome = _run_write(scenario, seed, scenario_dir, reference)
            elif scenario.workflow == "write-store":
                outcome = _run_write_store(
                    scenario, seed, scenario_dir, reference
                )
            elif scenario.workflow == "scrub-store":
                outcome = _run_scrub_store(
                    scenario, seed, scenario_dir, reference
                )
            elif scenario.workflow == "merge-store":
                outcome = _run_merge_store(
                    scenario, seed, scenario_dir, reference
                )
            elif scenario.workflow == "serve":
                outcome = _run_serve(scenario, seed, scenario_dir)
            else:
                outcome = _run_corruption(scenario, seed, scenario_dir)
        except Exception as exc:  # a drill must never take down the campaign
            outcome = ScenarioOutcome(
                scenario=scenario,
                attempts=1,
                completed=False,
                injections=0,
                error=_scrub(
                    f"harness error: {type(exc).__name__}: {exc}", scenario_dir
                ),
                invariants=(
                    InvariantCheck("harness", False, "scenario harness raised"),
                ),
            )
        span.add("ok", outcome.ok)
        span.add("attempts", outcome.attempts)
    return outcome


def run_campaign(
    preset: str = "smoke",
    seed: int = 7,
    root: Optional[Path] = None,
    scorecard_path: Optional[Path] = None,
) -> CampaignResult:
    """Run a named campaign preset; write the scorecard atomically.

    Parameters
    ----------
    preset:
        A key of :data:`PRESETS` (``smoke`` or ``full``).
    seed:
        Root seed for generation, corruption, and torn-write fractions;
        the scorecard is byte-identical for identical ``(preset, seed)``.
    root:
        Campaign working directory (one subdirectory per scenario); a
        temporary directory when omitted.
    scorecard_path:
        Where to write ``robustness_scorecard.json``; defaults to
        ``<root>/robustness_scorecard.json``.  A ``campaign_timings.json``
        sidecar (wall-clock per scenario; *not* deterministic) is
        written next to it.
    """
    if preset not in PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
        )
    import tempfile

    if root is None:
        root = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    scenarios = PRESETS[preset]

    outcomes: List[ScenarioOutcome] = []
    wall_times: Dict[str, float] = {}
    reference_cache: Dict[Tuple[int, ...], bytes] = {}
    registry = obs.metrics()
    with obs.span(
        "campaign", preset=preset, seed=seed, scenarios=len(scenarios)
    ) as span:
        for scenario in scenarios:
            begin = time.perf_counter()
            reference = b""
            if scenario.workflow in (
                "generate", "write-csv", "write-store",
                "scrub-store", "merge-store",
            ):
                reference = _reference_csv(
                    seed, scenario.systems, reference_cache, root
                )
            outcome = run_scenario(
                scenario, seed, root / scenario.name, reference
            )
            wall_times[scenario.name] = time.perf_counter() - begin
            outcomes.append(outcome)
            registry.counter("campaign.scenarios").add(1)
            if not outcome.ok:
                registry.counter("campaign.failures").add(1)
            registry.counter("campaign.injections").add(outcome.injections)
        result = CampaignResult(
            preset=preset,
            seed=seed,
            outcomes=tuple(outcomes),
            wall_times=dict(wall_times),
        )
        span.add("ok", result.ok)

    if scorecard_path is None:
        scorecard_path = root / SCORECARD_NAME
    scorecard_path = Path(scorecard_path)
    atomic_write_json(scorecard_path, result.scorecard())
    atomic_write_json(
        scorecard_path.parent / TIMINGS_NAME,
        {
            "preset": preset,
            "seed": seed,
            "wall_times_seconds": {
                name: round(seconds, 3)
                for name, seconds in sorted(wall_times.items())
            },
            "total_seconds": round(sum(wall_times.values()), 3),
        },
    )
    return result
