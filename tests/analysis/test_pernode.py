"""Tests for per-node analyses (Figure 3)."""

import pytest

from repro.analysis.pernode import failures_per_node, node_count_study, node_share
from repro.records.record import FailureRecord, RootCause, Workload
from repro.records.trace import FailureTrace


def record(start, node, system=20, workload=Workload.COMPUTE):
    return FailureRecord(
        start_time=start, end_time=start + 60.0, system_id=system, node_id=node,
        root_cause=RootCause.HARDWARE, workload=workload,
    )


class TestCountsSmall:
    def test_counts_with_zeros(self):
        trace = FailureTrace([record(3e8, 1), record(3.1e8, 1), record(3.2e8, 5)])
        counts = failures_per_node(trace, 20)
        assert counts[1] == 2
        assert counts[5] == 1
        assert counts[0] == 0

    def test_node_share(self):
        trace = FailureTrace([record(3e8, 1), record(3.1e8, 1), record(3.2e8, 5)])
        assert node_share(trace, 20, [1]) == pytest.approx(2 / 3)

    def test_node_share_empty_system(self):
        trace = FailureTrace([record(3e8, 1)])
        with pytest.raises(ValueError):
            node_share(trace, 19, [0])


class TestStudyOnSynthetic:
    def test_graphics_nodes_concentrate_failures(self, system20_trace):
        # Paper: nodes 21-23 are 6% of nodes but ~20% of failures.
        share = node_share(system20_trace, 20, [21, 22, 23])
        assert 0.10 < share < 0.30

    def test_poisson_is_poor(self, system20_trace):
        study = node_count_study(system20_trace, 20)
        assert study.poisson_is_poor
        assert study.best.name in ("normal", "lognormal")

    def test_overdispersion_above_one(self, system20_trace):
        study = node_count_study(system20_trace, 20)
        assert study.overdispersion > 2.0

    def test_excludes_graphics_and_short_nodes(self, system20_trace):
        study = node_count_study(system20_trace, 20)
        # 49 nodes - 3 graphics - node 0 (short production) = 45.
        assert len(study.counts) == 45

    def test_explicit_exclusions(self, system20_trace):
        study = node_count_study(system20_trace, 20, exclude_nodes=range(24, 49))
        assert len(study.counts) == 20  # 24 low nodes - 3 graphics - node 0

    def test_too_few_nodes_rejected(self, system20_trace):
        with pytest.raises(ValueError):
            node_count_study(system20_trace, 20, exclude_nodes=range(46))
