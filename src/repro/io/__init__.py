"""Trace I/O: LANL/CFDR-style CSV and JSONL formats.

The Computer Failure Data Repository (CFDR) released the LANL data as a
CSV of per-failure rows.  :func:`read_lanl_csv` accepts that layout (a
documented subset of its columns) so the toolkit's analyses run
unchanged on the real data when available; :func:`write_lanl_csv`
round-trips synthetic traces through the same schema.

Dirty real-world exports are handled by the policy layer
(:mod:`repro.io.policy`): every reader accepts an
:class:`IngestPolicy` selecting strict, lenient (quarantine) or repair
behavior, and :func:`ingest_trace` returns the loaded trace together
with a structured :class:`IngestReport`.
"""

from repro.io.common import open_text
from repro.io.csv_format import read_lanl_csv, write_lanl_csv
from repro.io.ingest import IngestResult, detect_format, ingest_trace
from repro.io.jsonl_format import read_jsonl, write_jsonl
from repro.io.mapped import ColumnMapping, read_mapped_csv
from repro.io.policy import (
    IngestPolicy,
    IngestReport,
    QuarantineWriter,
    RowPipeline,
)
from repro.io.schema import CSV_COLUMNS, SchemaError, describe_schema

__all__ = [
    "read_lanl_csv",
    "write_lanl_csv",
    "read_jsonl",
    "write_jsonl",
    "ColumnMapping",
    "read_mapped_csv",
    "CSV_COLUMNS",
    "SchemaError",
    "describe_schema",
    "open_text",
    "IngestPolicy",
    "IngestReport",
    "IngestResult",
    "QuarantineWriter",
    "RowPipeline",
    "detect_format",
    "ingest_trace",
]
