"""Figure 7: repair-time distribution and per-system repair times.

Paper shape claims asserted:

* (a) lognormal is the best of the four standard fits; Weibull and
  gamma are weaker but far better than the exponential (worst);
* (b, c) mean repair varies from under an hour to more than a day
  across systems; systems of the same hardware type look alike
  (type effect) while type E's 128-1024-node systems look alike
  (size insensitivity).
"""

from repro.analysis.repair import repair_by_system, repair_fit_study
from repro.report import render_figure7


def test_figure7(benchmark, trace):
    fits = benchmark(repair_fit_study, trace)
    print("\n" + render_figure7(trace))

    # Panel (a): fit ranking lognormal > {weibull, gamma} > exponential.
    assert fits[0].name == "lognormal"
    assert fits[-1].name == "exponential"
    assert {fits[1].name, fits[2].name} == {"weibull", "gamma"}
    # The exponential is *very* poor: KS several times the lognormal's.
    exponential = fits[-1]
    assert exponential.ks > 3 * fits[0].ks

    # Panels (b, c): per-system means span < 1 hour to > 1 day.
    per_system = repair_by_system(trace)
    means = {sid: row.mean for sid, row in per_system.items()}
    assert min(means.values()) < 150       # well under 2.5 hours
    assert max(means.values()) > 1440      # more than a day

    # Type effect: type F systems (13-18) all faster than type G (19-21).
    assert max(means[s] for s in range(13, 19)) < min(means[s] for s in (19, 20, 21))
    # Size insensitivity: type E systems range 128-1024 nodes with
    # similar medians; the largest (7-8) are NOT the slowest.
    medians = {sid: row.median for sid, row in per_system.items()}
    e_systems = list(range(5, 12))
    assert max(medians[s] for s in e_systems) / min(medians[s] for s in e_systems) < 3
    assert medians[7] < 1.5 * min(medians[s] for s in e_systems)
