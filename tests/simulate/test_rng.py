"""Tests for repro.simulate.rng."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simulate.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_label(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_path_not_flattened(self):
        # ("ab", "c") must differ from ("a", "bc"): the separator matters.
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_negative_root_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(-1, "a")

    def test_range(self):
        seed = derive_seed(12345, "x", "y", "z")
        assert 0 <= seed < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_stable_under_hypothesis(self, root, label):
        assert derive_seed(root, label) == derive_seed(root, label)


class TestRngStream:
    def test_child_reproducible(self):
        a = RngStream(7).child("system", "3")
        b = RngStream(7).child("system", "3")
        assert a.seed == b.seed
        assert a.generator.random() == b.generator.random()

    def test_children_independent(self):
        root = RngStream(7)
        values = {root.child("node", str(i)).generator.random() for i in range(50)}
        assert len(values) == 50  # no collisions among 50 children

    def test_child_requires_label(self):
        with pytest.raises(ValueError):
            RngStream(0).child()

    def test_path_accumulates(self):
        stream = RngStream(0).child("a").child("b", "c")
        assert stream.path == ("a", "b", "c")

    def test_nested_equals_flat(self):
        nested = RngStream(9).child("a").child("b")
        flat = RngStream(9).child("a", "b")
        assert nested.seed == flat.seed

    def test_sibling_consumption_isolated(self):
        # Drawing from one child must not affect another child's draws.
        root = RngStream(11)
        first = root.child("x")
        _ = [first.random() for _ in range(100)]
        fresh = RngStream(11).child("y")
        used = root.child("y")
        assert fresh.generator.random() == used.generator.random()

    def test_convenience_draws_in_range(self):
        stream = RngStream(3)
        assert 0 <= stream.random() < 1
        assert 2 <= stream.uniform(2, 5) < 5
        assert stream.exponential(10.0) >= 0
        assert stream.weibull(0.7, 100.0) >= 0
        assert stream.lognormal(0.0, 1.0) > 0

    def test_choice_index(self):
        stream = RngStream(4)
        probabilities = np.array([0.0, 1.0, 0.0])
        assert stream.choice_index(probabilities) == 1

    def test_generator_cached(self):
        stream = RngStream(5)
        assert stream.generator is stream.generator
