"""CLI tests for the resilience surface: ingest, chaos, report --artifact all."""

import json

import pytest

from repro.cli import main
from repro.io import read_lanl_csv, write_lanl_csv
from repro.records.record import FailureRecord, RootCause, Workload

HEADER = "record_id,system_id,node_id,start_time,end_time,workload,root_cause,low_level_cause\n"
GOOD_ROWS = (
    "0,20,1,150000000.0,150003600.0,compute,hardware,memory\n"
    "1,20,2,160000000.0,160000060.0,compute,software,\n"
    "2,5,0,170000000.0,170001000.0,fe,unknown,\n"
)
BAD_ROW = "3,20,4,not-a-number,1.9e8,compute,unknown,\n"


@pytest.fixture()
def dirty_csv(tmp_path):
    path = tmp_path / "dirty.csv"
    path.write_text(HEADER + GOOD_ROWS + BAD_ROW)
    return str(path)


@pytest.fixture(scope="module")
def clean_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("resilience") / "clean.csv"
    records = [
        FailureRecord(
            start_time=150000000.0 + 1000.0 * i,
            end_time=150000000.0 + 1000.0 * i + 600.0,
            system_id=20,
            node_id=i % 40,
            workload=Workload.COMPUTE,
            root_cause=RootCause.HARDWARE,
            record_id=i,
        )
        for i in range(40)
    ]
    write_lanl_csv(records, path)
    return str(path)


class TestIngestCommand:
    def test_lenient_quarantines_and_exits_zero(self, dirty_csv, tmp_path, capsys):
        dead = tmp_path / "dead.jsonl"
        code = main(
            ["ingest", dirty_csv, "--mode", "lenient",
             "--max-error-rate", "0.5", "--quarantine", str(dead)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rows quarantined: 1" in out
        assert dead.exists()
        entry = json.loads(dead.read_text().splitlines()[0])
        assert entry["error_class"] == "malformed-value"

    def test_strict_fails_with_error(self, dirty_csv, capsys):
        code = main(["ingest", dirty_csv, "--mode", "strict"])
        assert code == 1
        assert "error:" in capsys.readouterr().out

    def test_error_budget_fails_loudly(self, dirty_csv, capsys):
        code = main(
            ["ingest", dirty_csv, "--mode", "lenient", "--max-error-rate", "0.1"]
        )
        assert code == 1
        assert "error budget exceeded" in capsys.readouterr().out

    def test_json_report(self, dirty_csv, capsys):
        code = main(
            ["ingest", dirty_csv, "--max-error-rate", "0.5", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows_read"] == 4
        assert payload["rows_quarantined"] == 1

    def test_out_writes_survivors(self, dirty_csv, tmp_path, capsys):
        out = tmp_path / "survivors.csv"
        code = main(
            ["ingest", dirty_csv, "--max-error-rate", "0.5", "--out", str(out)]
        )
        assert code == 0
        assert "wrote 3 surviving records" in capsys.readouterr().out
        assert len(read_lanl_csv(out)) == 3

    def test_repair_mode(self, tmp_path, capsys):
        path = tmp_path / "swapped.csv"
        path.write_text(
            HEADER + "0,20,1,150003600.0,150000000.0,compute,hardware,memory\n"
        )
        code = main(["ingest", str(path), "--mode", "repair"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows repaired" in out
        assert "swapped-start-end" in out


class TestChaosCommand:
    def test_file_roundtrip_survives(self, clean_csv, capsys):
        code = main(
            ["chaos", clean_csv, "--rate", "0.1", "--no-report"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SURVIVED" in out
        assert "corrupted" in out

    def test_repair_mode_roundtrip(self, clean_csv, capsys):
        code = main(
            ["chaos", clean_csv, "--rate", "0.1", "--mode", "repair", "--no-report"]
        )
        assert code == 0
        assert "SURVIVED" in capsys.readouterr().out

    def test_chaos_seed_is_deterministic(self, clean_csv, capsys):
        import re

        def normalized():
            # The scratch directory name is the only varying part.
            return re.sub(r"repro-chaos-\w+", "repro-chaos-X",
                          capsys.readouterr().out)

        main(["chaos", clean_csv, "--chaos-seed", "4", "--no-report"])
        first = normalized()
        main(["chaos", clean_csv, "--chaos-seed", "4", "--no-report"])
        assert normalized() == first

    def test_requires_trace_or_synthetic(self):
        with pytest.raises(SystemExit):
            main(["chaos"])

    def test_synthetic_with_report(self, capsys):
        # The CI smoke path: corrupt a small synthetic trace at 5% and
        # require ingest plus the (degraded) paper report to complete.
        code = main(
            ["chaos", "--synthetic", "--seed", "5", "--systems", "2,13",
             "--rate", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "paper report:" in out
        assert "SURVIVED" in out


class TestReportAll:
    def test_artifact_all_degrades_per_section(self, clean_csv, capsys):
        # A system-20-only trace lacks eras for some figures; the "all"
        # artifact must still complete with per-section diagnostics.
        code = main(["report", clean_csv, "--artifact", "all"])
        out = capsys.readouterr().out
        assert "table1" in out
        assert code in (0, 1)
        if code == 1:
            assert "FAILED" in out or "DEGRADED" in out

    def test_artifact_all_without_system20(self, tmp_path, capsys):
        from repro.synth import TraceGenerator

        path = tmp_path / "no20.csv"
        write_lanl_csv(TraceGenerator(seed=5).generate([2, 13]), path)
        code = main(["report", str(path), "--artifact", "all"])
        out = capsys.readouterr().out
        # fig6 needs system 20, absent here: thin data, not a bug —
        # the diagnostics classify it DEGRADED, exit 1.
        assert code == 1
        assert "fig6" in out
        assert "DEGRADED" in out
        assert "unavailable on this trace" in out
