"""Cross-backend equivalence: store-backed analysis == list-backed.

The contract the whole PR hangs on: for every one of the 22 LANL
systems, generating into a columnar store and reading it back is
*indistinguishable* — record-for-record ``repr``-identical, CSV
byte-identical, paper report text-identical — from the classic
list-backed path, serially and with a worker pool.
"""

from __future__ import annotations

import warnings

import pytest

from repro.io import write_lanl_csv
from repro.store import ColumnarStore, Predicate, store_from_trace
from repro.synth import TraceGenerator

SEED = 1


@pytest.fixture(scope="module")
def full_store(tmp_path_factory):
    """All 22 systems, seed 1, generated straight into a store."""
    root = tmp_path_factory.mktemp("equiv") / "store"
    TraceGenerator(seed=SEED).generate_store(root)
    return ColumnarStore(root)


class TestFullInventoryEquivalence:
    def test_records_repr_identical_all_systems(self, full_store, full_trace):
        got = list(full_store.iter_records())
        assert len(got) == len(full_trace.records)
        for decoded, original in zip(got, full_trace.records):
            assert repr(decoded) == repr(original)

    def test_csv_byte_identical(self, full_store, full_trace, tmp_path):
        a = tmp_path / "list.csv"
        b = tmp_path / "store.csv"
        write_lanl_csv(full_trace, a)
        write_lanl_csv(full_store.to_trace(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_per_system_slices_identical(self, full_store, full_trace):
        for system_id in sorted(full_trace.systems):
            expected = [
                r for r in full_trace.records if r.system_id == system_id
            ]
            got = list(
                full_store.iter_records(Predicate.build(systems=[system_id]))
            )
            assert len(got) == len(expected), f"system {system_id}"
            for decoded, original in zip(got, expected):
                # IDs are None under filtering (implicit store); every
                # other field must match exactly.
                assert decoded.record_id is None
                assert repr(decoded.start_time) == repr(original.start_time)
                assert decoded.end_time == original.end_time
                assert decoded.node_id == original.node_id
                assert decoded.root_cause is original.root_cause
                assert decoded.low_level_cause is original.low_level_cause
                assert decoded.workload is original.workload

    def test_workers_store_identical_to_serial_store(
        self, full_store, tmp_path
    ):
        root = tmp_path / "parallel-store"
        with warnings.catch_warnings():
            # this container may have fewer CPUs than requested workers
            warnings.simplefilter("ignore", RuntimeWarning)
            TraceGenerator(seed=SEED).generate_store(root, workers=4)
        parallel = ColumnarStore(root)
        assert parallel.manifest.to_dict() == full_store.manifest.to_dict()
        serial_records = (repr(r) for r in full_store.iter_records())
        parallel_records = (repr(r) for r in parallel.iter_records())
        assert all(a == b for a, b in zip(serial_records, parallel_records))

    def test_import_roundtrip_identical(self, full_trace, tmp_path):
        root = tmp_path / "imported"
        store_from_trace(full_trace, root)
        got = list(ColumnarStore(root).iter_records())
        for decoded, original in zip(got, full_trace.records):
            assert repr(decoded) == repr(original)


class TestPaperReportEquivalence:
    def test_paper_report_text_identical(self, full_store, full_trace):
        from repro.report import run_paper_report

        list_backed = run_paper_report(full_trace)
        store_backed = run_paper_report(full_store.to_trace())
        assert store_backed.render() == list_backed.render()
        assert store_backed.ok == list_backed.ok

    def test_summary_identical(self, full_store, full_trace):
        from repro.analysis import summarize

        a = summarize(full_trace)
        b = summarize(full_store.to_trace())
        assert a.n_records == b.n_records
        assert a.rate_range == b.rate_range
        assert a.repair_system_range == b.repair_system_range
        assert a.lifecycle_shapes == b.lifecycle_shapes
        assert [f.name for f in a.repair_fits] == [
            f.name for f in b.repair_fits
        ]
