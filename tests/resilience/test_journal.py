"""ShardJournal: crash-safe recording and identity-checked resume."""

from __future__ import annotations

import json

import pytest

from repro.resilience import JournalError, ShardJournal

META = {"kind": "trace", "seed": 7, "engine": "vectorized"}


class TestRecordAndLoad:
    def test_round_trip(self, tmp_path):
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", {"records": [1, 2, 3]}, extra={"records": 3})
        assert journal.has("system-2")
        assert len(journal) == 1
        assert journal.load("system-2") == {"records": [1, 2, 3]}
        entry = journal.completed["system-2"]
        assert entry["records"] == 3
        assert entry["bytes"] > 0

    def test_fresh_run_writes_meta(self, tmp_path):
        run_dir = tmp_path / "run"
        ShardJournal(run_dir, meta=META)
        assert json.loads((run_dir / "meta.json").read_text()) == META

    def test_fresh_run_clears_previous_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        first = ShardJournal(run_dir, meta=META)
        first.record("system-2", [1])
        again = ShardJournal(run_dir, meta=META)  # no resume: start over
        assert len(again) == 0
        assert not (run_dir / "journal.jsonl").exists()
        assert list((run_dir / "shards").glob("*.pkl")) == []

    def test_fresh_run_invalidates_before_writing_identity(
        self, tmp_path, monkeypatch
    ):
        # Crash ordering: if initialization dies while writing the new
        # meta.json, the old journal must already be gone — otherwise a
        # later --resume would splice the previous run's shards into a
        # run with a different identity.
        run_dir = tmp_path / "run"
        first = ShardJournal(run_dir, meta=META)
        first.record("system-2", [1])

        def crash(path, payload):
            raise RuntimeError("simulated crash during meta write")

        monkeypatch.setattr(
            "repro.resilience.journal.atomic_write_json", crash
        )
        with pytest.raises(RuntimeError, match="simulated crash"):
            ShardJournal(run_dir, meta=dict(META, seed=8))
        assert not (run_dir / "journal.jsonl").exists()
        # The directory still resumes consistently (old identity, no
        # journaled shards) rather than cross-splicing.
        resumed = ShardJournal(run_dir, meta=META, resume=True)
        assert len(resumed) == 0

    def test_keys_with_odd_characters_are_sanitized(self, tmp_path):
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("sys/2:a b", "payload")
        assert journal.load("sys/2:a b") == "payload"
        (name,) = [entry["file"] for entry in journal.completed.values()]
        assert "/" not in name and ":" not in name and " " not in name

    def test_colliding_sanitized_keys_get_distinct_payloads(self, tmp_path):
        # "a/b" and "a_b" sanitize identically; the payload files must
        # not overwrite each other.
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("a/b", "slash payload")
        journal.record("a_b", "underscore payload")
        files = {entry["file"] for entry in journal.completed.values()}
        assert len(files) == 2
        assert journal.load("a/b") == "slash payload"
        assert journal.load("a_b") == "underscore payload"


class TestResume:
    def test_resume_sees_completed_shards(self, tmp_path):
        run_dir = tmp_path / "run"
        first = ShardJournal(run_dir, meta=META)
        first.record("system-2", [10, 20])
        first.record("system-13", [30])
        resumed = ShardJournal(run_dir, meta=META, resume=True)
        assert set(resumed.completed) == {"system-2", "system-13"}
        assert resumed.load("system-2") == [10, 20]

    def test_resume_without_meta_json_fails(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            ShardJournal(tmp_path / "never-started", meta=META, resume=True)

    def test_resume_with_changed_identity_fails(self, tmp_path):
        run_dir = tmp_path / "run"
        ShardJournal(run_dir, meta=META)
        changed = dict(META, seed=8)
        with pytest.raises(JournalError, match="seed"):
            ShardJournal(run_dir, meta=changed, resume=True)

    def test_resume_without_meta_accepts_stored(self, tmp_path):
        run_dir = tmp_path / "run"
        ShardJournal(run_dir, meta=META)
        resumed = ShardJournal(run_dir, resume=True)
        assert resumed.meta == META


class TestCrashTolerance:
    def test_truncated_trailing_line_is_ignored(self, tmp_path):
        run_dir = tmp_path / "run"
        journal = ShardJournal(run_dir, meta=META)
        journal.record("system-2", [1])
        with (run_dir / "journal.jsonl").open("a") as handle:
            handle.write('{"shard": "system-13", "fi')  # crash mid-append
        resumed = ShardJournal(run_dir, meta=META, resume=True)
        assert set(resumed.completed) == {"system-2"}

    def test_corrupt_shard_payload_detected(self, tmp_path):
        run_dir = tmp_path / "run"
        journal = ShardJournal(run_dir, meta=META)
        journal.record("system-2", [1, 2])
        payload = run_dir / "shards" / journal.completed["system-2"]["file"]
        payload.write_bytes(b"garbage")
        resumed = ShardJournal(run_dir, meta=META, resume=True)
        with pytest.raises(JournalError, match="corrupt"):
            resumed.load("system-2")

    def test_missing_shard_payload_detected(self, tmp_path):
        run_dir = tmp_path / "run"
        journal = ShardJournal(run_dir, meta=META)
        journal.record("system-2", [1, 2])
        (run_dir / "shards" / journal.completed["system-2"]["file"]).unlink()
        resumed = ShardJournal(run_dir, meta=META, resume=True)
        with pytest.raises(JournalError, match="unreadable"):
            resumed.load("system-2")
