"""repro.obs — zero-dependency observability: spans, metrics, profiling.

The subsystem is **off by default**.  Instrumentation sites scattered
through the toolkit call the module-level helpers here:

``obs.span("synth.arrivals", system=2)``
    Returns a real :class:`~repro.obs.tracer.Span` bound to the active
    tracer, or the shared no-op :data:`~repro.obs.tracer.NULL_SPAN`
    when tracing is disabled — one module-global read, no allocation
    beyond the call's kwargs.  This is the fast path the bench guard
    (``repro bench --obs-guard``) holds to <= 2% overhead.

``obs.metrics()``
    The active :class:`~repro.obs.metrics.MetricsRegistry`, or a
    throwaway registry when disabled so call sites never branch.

Activation is scoped with context managers:

``observing(tracer, metrics, spool=...)``
    Installs a tracer/registry for the duration (the CLI wraps a whole
    ``repro generate`` in this).  Passing ``spool`` arms worker-process
    tracing by exporting :data:`~repro.obs.tracer.SPOOL_ENV_VAR`, which
    pool workers inherit.

``worker_tracing(key)``
    Used inside a worker process around one shard's work.  No-op unless
    the spool env var is armed; otherwise traces into a stream named
    after the shard key and atomically spools the events on exit —
    including on failure, so error spans from crashed attempts survive
    for the supervisor to merge.

Nothing in here may alter generated records: instrumentation never
touches RNG streams, and the PR 2 equivalence suite is the contract.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from repro.obs.metrics import (
    BUCKET_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    NULL_SPAN,
    SCHEMA_VERSION,
    SPOOL_ENV_VAR,
    TRACE_KIND,
    Span,
    Tracer,
    load_spool_events,
    spool_dir,
    spool_path,
    write_spool,
)
from repro.obs.tracer import _NullSpan

__all__ = [
    "BUCKET_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "SPOOL_ENV_VAR",
    "TRACE_KIND",
    "Span",
    "Tracer",
    "active_metrics",
    "active_tracer",
    "enabled",
    "load_spool_events",
    "metrics",
    "observing",
    "span",
    "spool_dir",
    "spool_path",
    "worker_tracing",
    "write_spool",
]

# The globals the fast path reads.  None means disabled.
_ACTIVE_TRACER: Optional[Tracer] = None
_ACTIVE_METRICS: Optional[MetricsRegistry] = None


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _ACTIVE_TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def metrics() -> MetricsRegistry:
    """The active registry, or a throwaway one when disabled.

    The throwaway keeps call sites branch-free; its contents are
    simply discarded.
    """
    registry = _ACTIVE_METRICS
    if registry is None:
        return MetricsRegistry()
    return registry


def enabled() -> bool:
    """True when a tracer or metrics registry is currently installed."""
    return _ACTIVE_TRACER is not None or _ACTIVE_METRICS is not None


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE_TRACER


def active_metrics() -> Optional[MetricsRegistry]:
    return _ACTIVE_METRICS


@contextmanager
def observing(
    tracer: Optional[Tracer] = None,
    metrics_registry: Optional[MetricsRegistry] = None,
    spool: Optional[os.PathLike] = None,
) -> Iterator[None]:
    """Install a tracer/metrics registry for the duration of the block.

    ``spool`` additionally arms worker-process tracing by exporting
    :data:`SPOOL_ENV_VAR`; the previous value (usually unset) is
    restored on exit.  Re-entrant: the previous tracer/registry are
    restored too.
    """
    global _ACTIVE_TRACER, _ACTIVE_METRICS
    previous_tracer = _ACTIVE_TRACER
    previous_metrics = _ACTIVE_METRICS
    previous_spool = os.environ.get(SPOOL_ENV_VAR)
    _ACTIVE_TRACER = tracer
    _ACTIVE_METRICS = metrics_registry
    if spool is not None:
        os.environ[SPOOL_ENV_VAR] = str(spool)
    try:
        yield
    finally:
        _ACTIVE_TRACER = previous_tracer
        _ACTIVE_METRICS = previous_metrics
        if spool is not None:
            if previous_spool is None:
                os.environ.pop(SPOOL_ENV_VAR, None)
            else:
                os.environ[SPOOL_ENV_VAR] = previous_spool


@contextmanager
def worker_tracing(key: str) -> Iterator[Optional[Tracer]]:
    """Trace one shard's work inside a worker process.

    No-op (yields None) unless the parent armed the spool directory.
    Otherwise installs a fresh tracer whose stream is the shard key and
    spools its events on exit — even when the shard raises, so the
    supervisor can still merge the error spans; the exception always
    propagates to the supervision machinery.
    """
    global _ACTIVE_TRACER
    if spool_dir() is None:
        yield None
        return
    tracer = Tracer(stream=key)
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER = previous
        write_spool(tracer, key)
