"""Tests for two-level checkpoint/restart."""

import numpy as np
import pytest

from repro.checkpoint.simulator import CheckpointSimulation
from repro.checkpoint.twolevel import TwoLevelCheckpointSimulation


def make(**overrides):
    defaults = dict(
        work=10_000.0, interval=1000.0, local_cost=10.0, global_cost=200.0,
        global_every=5, local_restart=50.0, global_restart=1000.0,
        correlation_window=1.0,
    )
    defaults.update(overrides)
    return TwoLevelCheckpointSimulation(**defaults)


class TestFailureFree:
    def test_checkpoint_mix(self):
        result = make().run([])
        assert result.completed
        # 10 segments; 9 intermediate checkpoints: every 5th global.
        assert result.local_checkpoints + result.global_checkpoints == 9
        assert result.global_checkpoints == 1  # the 5th; the 10th is final
        assert result.makespan == pytest.approx(10_000.0 + 8 * 10.0 + 200.0)

    def test_global_every_one_is_all_global(self):
        result = make(global_every=1).run([])
        assert result.local_checkpoints == 0
        assert result.global_checkpoints == 9


class TestSingleFailureRecovery:
    def test_local_recovery_rolls_back_one_segment(self):
        # Failure at t=1500: 1 checkpoint banked at 1010; 490 s of
        # segment 2 lost; local restart 50 s.
        result = make().run([1500.0])
        assert result.completed
        assert result.local_recoveries == 1
        assert result.global_recoveries == 0
        assert result.lost_work == pytest.approx(490.0)

    def test_correlated_failure_forces_global_rollback(self):
        # Two failures 0.5 s apart at ~t=6600: by then the global
        # checkpoint at segment 5 protects 5000; local checkpoints
        # protect 6000.  Correlated => roll back to 5000.
        result = make().run([6600.0, 6600.5])
        assert result.completed
        assert result.global_recoveries == 1
        # Lost: partial segment (6600 - segment start) + (6000 - 5000).
        assert result.lost_work > 1000.0

    def test_simultaneous_failures_one_recovery(self):
        result = make().run([6600.0, 6600.0])
        assert result.global_recoveries == 1
        assert result.local_recoveries == 0
        assert result.completed


class TestVsSingleLevel:
    def run_pair(self, failure_times, horizon):
        """Two-level vs single-level-global with matched costs."""
        two = make(work=40 * 86400.0, interval=3600.0, local_cost=30.0,
                   global_cost=600.0, global_every=10,
                   local_restart=120.0, global_restart=1800.0)
        single = CheckpointSimulation(
            work=40 * 86400.0, interval=3600.0, checkpoint_cost=600.0,
            restart_cost=1800.0,
        )
        return (
            two.run(failure_times, horizon=horizon),
            single.run(failure_times, horizon=horizon),
        )

    def test_two_level_wins_under_independent_failures(self):
        generator = np.random.Generator(np.random.PCG64(0))
        failures = np.cumsum(generator.exponential(40_000.0, 400))
        two, single = self.run_pair(failures, horizon=float(failures[-1]))
        assert two.completed and single.completed
        # Cheap local checkpoints + cheap local recovery beat paying
        # the global cost everywhere.
        assert two.efficiency > single.efficiency

    def test_two_level_survives_correlated_bursts(self):
        generator = np.random.Generator(np.random.PCG64(1))
        independent = np.cumsum(generator.exponential(60_000.0, 300))
        # Make a third of them bursts (duplicate timestamps).
        bursts = independent[::3]
        failures = np.sort(np.concatenate([independent, bursts]))
        two, single = self.run_pair(failures, horizon=float(failures[-1]))
        assert two.completed
        assert two.global_recoveries > 0
        assert two.local_recoveries > 0
        # Even with forced global rollbacks, still at least competitive.
        assert two.efficiency > 0.8 * single.efficiency


class TestOnSyntheticTrace:
    def test_early_system20_exercises_both_recovery_paths(self, system20_trace):
        starts = system20_trace.start_times()
        offsets = starts - starts[0]
        sim = make(work=30 * 86400.0, interval=7200.0, local_cost=60.0,
                   global_cost=600.0)
        result = sim.run(offsets[:4000], horizon=float(offsets[3999]))
        # The early burst era produces real correlated failures.
        assert result.global_recoveries > 10
        assert result.local_recoveries > 10


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"work": 0.0},
            {"interval": -1.0},
            {"local_cost": -1.0},
            {"global_cost": 1.0, "local_cost": 10.0},
            {"global_every": 0},
            {"local_restart": -1.0},
            {"correlation_window": -1.0},
        ],
    )
    def test_bad_parameters(self, overrides):
        with pytest.raises(ValueError):
            make(**overrides)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            make().run([], horizon=0.0)

    def test_incomplete_at_horizon(self):
        result = make().run([], horizon=500.0)
        assert not result.completed
        assert result.useful_work == 0.0
