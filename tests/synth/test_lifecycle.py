"""Tests for lifecycle rate shapes."""

import pytest

from repro.records.system import HardwareType
from repro.records.timeutils import SECONDS_PER_MONTH
from repro.synth.lifecycle import (
    LifecycleShape,
    infant_decay,
    lifecycle_multiplier,
    lifecycle_shape_for,
    ramp_peak,
)


class TestInfantDecay:
    def test_starts_high(self):
        assert infant_decay(0.0) == pytest.approx(3.5)  # 1 + 2.5

    def test_decays_to_one(self):
        assert infant_decay(36 * SECONDS_PER_MONTH) == pytest.approx(1.0, abs=1e-4)

    def test_monotone_decreasing(self):
        ages = [i * SECONDS_PER_MONTH for i in range(12)]
        values = [infant_decay(a) for a in ages]
        assert values == sorted(values, reverse=True)

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            infant_decay(-1.0)


class TestRampPeak:
    def test_starts_at_floor(self):
        assert ramp_peak(0.0) == pytest.approx(0.25)

    def test_peaks_at_twenty_months(self):
        # Figure 4(b): the rate grows for ~20 months before dropping.
        peak_age = 20 * SECONDS_PER_MONTH
        assert ramp_peak(peak_age) == pytest.approx(2.0)
        assert ramp_peak(peak_age) > ramp_peak(peak_age * 0.5)
        assert ramp_peak(peak_age) > ramp_peak(peak_age * 2.0)

    def test_rises_before_peak(self):
        ages = [i * SECONDS_PER_MONTH for i in range(0, 20, 2)]
        values = [ramp_peak(a) for a in ages]
        assert values == sorted(values)

    def test_declines_after_peak(self):
        ages = [i * SECONDS_PER_MONTH for i in range(20, 80, 10)]
        values = [ramp_peak(a) for a in ages]
        assert values == sorted(values, reverse=True)

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            ramp_peak(-5.0)


class TestShapeSelection:
    def test_types_d_and_g_ramp(self):
        assert lifecycle_shape_for(HardwareType.D, 4) is LifecycleShape.RAMP_PEAK
        assert lifecycle_shape_for(HardwareType.G, 19) is LifecycleShape.RAMP_PEAK
        assert lifecycle_shape_for(HardwareType.G, 20) is LifecycleShape.RAMP_PEAK

    def test_types_e_and_f_decay(self):
        assert lifecycle_shape_for(HardwareType.E, 5) is LifecycleShape.INFANT_DECAY
        assert lifecycle_shape_for(HardwareType.F, 13) is LifecycleShape.INFANT_DECAY

    def test_system_21_exempt(self):
        # Section 5.2: system 21 came two years later and behaves like
        # Figure 4(a) despite being type G.
        assert lifecycle_shape_for(HardwareType.G, 21) is LifecycleShape.INFANT_DECAY

    def test_multiplier_dispatch(self):
        age = 5 * SECONDS_PER_MONTH
        assert lifecycle_multiplier(LifecycleShape.INFANT_DECAY, age) == infant_decay(age)
        assert lifecycle_multiplier(LifecycleShape.RAMP_PEAK, age) == ramp_peak(age)
